"""Supervised worker pool: heartbeats, hang detection, poison quarantine.

The campaign engine cannot trust its workers: a shard can crash its
process outright, wedge it without exiting (the failure mode a timeout
alone never distinguishes from "slow"), or poison every worker that
touches it.  This supervisor owns that distrust so the engine can stay
a simple journal-driven scheduler:

* every worker runs a **heartbeat thread** beating over its pipe at a
  fixed interval; a worker whose beats stop for ``hang_timeout_s`` is
  declared *hung* — killed and replaced even though its process is
  still technically alive and its timeout has not expired;
* a worker **death** (exit, signal, torn pipe) is a *crash*; crashes
  and hangs requeue the shard on a fresh worker with only the
  **remaining** time budget (a shard that burned most of its budget
  before killing its worker must not win a fresh full allowance);
* a shard that kills ``quarantine_after`` workers in a row is **poison**
  and is quarantined — surfaced as a terminal outcome, never silently
  dropped and never retried again (not even by a resumed campaign);
* a shard that exhausts its budget is a *timeout* — also terminal.

Worker deaths are infrastructure verdicts; tool-level failures come
back as ordinary ``error`` payloads from
:func:`~repro.campaign.shard.execute_shard` and are never retried
(they are deterministic, so a retry would only burn budget).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Callable

from repro.campaign.shard import execute_shard

__all__ = ["Supervisor", "ShardOutcome", "WORKER_CRASH_EXIT",
           "DEFAULT_HEARTBEAT_INTERVAL_S", "DEFAULT_HANG_TIMEOUT_S",
           "DEFAULT_SHARD_TIMEOUT_S", "DEFAULT_QUARANTINE_AFTER",
           "FAULT_WORKER_CRASH", "FAULT_WORKER_HANG"]

DEFAULT_HEARTBEAT_INTERVAL_S = 0.05
DEFAULT_HANG_TIMEOUT_S = 2.0
DEFAULT_SHARD_TIMEOUT_S = 120.0
DEFAULT_QUARANTINE_AFTER = 3

#: Exit code a self-chaos crash fault dies with (distinctive in ps).
WORKER_CRASH_EXIT = 73

#: Minimum leftover budget (seconds) worth restarting a shard with.
RESTART_BUDGET_FLOOR_S = 0.05

#: Self-chaos fault vocabulary understood by the worker loop.  The
#: values reuse the :mod:`repro.faults` worker-fault kinds so chaos
#: plans can drive the engine's own workers.
FAULT_WORKER_CRASH = "runner-worker-crash"
FAULT_WORKER_HANG = "runner-worker-hang"

#: How long a hang fault sleeps — far past any hang timeout; the
#: supervisor kills the worker long before this expires.
_HANG_SLEEP_S = 3600.0


def _worker_main(parent_conn: Connection, conn: Connection) -> None:
    """The worker loop: receive a shard envelope, beat, execute, reply.

    Runs in a child process.  Closes the inherited parent-side pipe end
    immediately so that if the scheduling process dies (even SIGKILL),
    this worker's blocking ``recv`` sees EOF and exits instead of
    leaking as an orphan.
    """
    parent_conn.close()
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread guard
        pass
    send_lock = threading.Lock()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if not isinstance(message, dict) or message.get("type") != "run":
            return
        fault = message.get("fault")
        if fault == FAULT_WORKER_CRASH:
            os._exit(WORKER_CRASH_EXIT)
        if fault == FAULT_WORKER_HANG:
            # Wedge without exiting: no heartbeats, no result, process
            # alive — exactly what hang detection must catch.
            time.sleep(_HANG_SLEEP_S)
            return
        stop = threading.Event()
        interval = float(message["heartbeatIntervalS"])

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    with send_lock:
                        conn.send({"type": "beat"})
                except OSError:
                    return

        beater = threading.Thread(target=beat, daemon=True)
        beater.start()
        payload = execute_shard(message["shard"])
        stop.set()
        beater.join()
        try:
            with send_lock:
                conn.send({"type": "result", "payload": payload})
        except OSError:
            return


@dataclass
class ShardOutcome:
    """The supervisor's terminal verdict for one shard."""

    shard_id: str
    status: str                    # ok | error | timeout | quarantined
    payload: dict | None = None    # worker payload for ok/error
    attempts: int = 1
    duration_s: float = 0.0
    error: str = ""
    failures: list[str] = field(default_factory=list)


@dataclass
class _WorkItem:
    shard_id: str
    shard: dict
    budget_s: float
    attempt: int = 0
    failures: list[str] = field(default_factory=list)


class _Worker:
    """One supervised child process and its scheduling state."""

    def __init__(self, context: multiprocessing.context.BaseContext) -> None:
        self.conn: Connection
        child_conn: Connection
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main, args=(self.conn, child_conn), daemon=True)
        self.process.start()
        child_conn.close()
        self.item: _WorkItem | None = None
        self.started_at = 0.0
        self.last_beat = 0.0

    @property
    def busy(self) -> bool:
        return self.item is not None

    def assign(self, item: _WorkItem, *, fault: str | None,
               heartbeat_interval_s: float) -> None:
        now = time.monotonic()
        self.item = item
        self.started_at = now
        self.last_beat = now
        self.conn.send({"type": "run", "shard": item.shard, "fault": fault,
                        "heartbeatIntervalS": heartbeat_interval_s})

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.kill()
                self.process.join(timeout=2.0)
        self.conn.close()

    def stop(self) -> None:
        """Graceful shutdown for an idle worker."""
        try:
            self.conn.send({"type": "stop"})
        except OSError:
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.kill()
        else:
            self.conn.close()


class Supervisor:
    """Schedule shards across supervised workers; never trust a worker.

    ``worker_faults`` maps ``shard_id -> {attempt_index: fault_kind}``
    (:data:`FAULT_WORKER_CRASH` / :data:`FAULT_WORKER_HANG`) and is the
    self-chaos injection point: the fault ships to the worker with the
    envelope and fires *inside* it, so the supervision machinery under
    test is exactly the machinery in production.
    """

    def __init__(self, *, jobs: int = 1,
                 heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
                 hang_timeout_s: float = DEFAULT_HANG_TIMEOUT_S,
                 shard_timeout_s: float = DEFAULT_SHARD_TIMEOUT_S,
                 quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
                 worker_faults: dict[str, dict[int, str]] | None = None,
                 on_start: Callable[[str, int], None] | None = None,
                 on_outcome: Callable[[ShardOutcome], None] | None = None,
                 should_stop: Callable[[], bool] | None = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if heartbeat_interval_s <= 0 or hang_timeout_s <= 0:
            raise ValueError("heartbeat/hang intervals must be positive")
        if hang_timeout_s <= heartbeat_interval_s:
            raise ValueError("hang_timeout_s must exceed the heartbeat "
                             "interval or every shard looks hung")
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.jobs = jobs
        self.heartbeat_interval_s = heartbeat_interval_s
        self.hang_timeout_s = hang_timeout_s
        self.shard_timeout_s = shard_timeout_s
        self.quarantine_after = quarantine_after
        self.worker_faults = worker_faults or {}
        self.on_start = on_start
        self.on_outcome = on_outcome
        self.should_stop = should_stop

    # -- helpers -------------------------------------------------------------

    def _fault_for(self, item: _WorkItem) -> str | None:
        return self.worker_faults.get(item.shard_id, {}).get(item.attempt)

    def _settle(self, outcomes: dict[str, ShardOutcome],
                outcome: ShardOutcome) -> None:
        outcomes[outcome.shard_id] = outcome
        if self.on_outcome is not None:
            self.on_outcome(outcome)

    def _worker_failed(self, worker: _Worker, reason: str,
                       queue: deque[_WorkItem],
                       outcomes: dict[str, ShardOutcome]) -> None:
        """A busy worker died or hung: kill, account, requeue or retire."""
        item = worker.item
        assert item is not None
        consumed = time.monotonic() - worker.started_at
        worker.kill()
        worker.item = None
        item.failures.append(reason)
        item.attempt += 1
        remaining = item.budget_s - consumed
        if len(item.failures) >= self.quarantine_after:
            self._settle(outcomes, ShardOutcome(
                shard_id=item.shard_id, status="quarantined",
                attempts=item.attempt, duration_s=consumed,
                error=(f"quarantined after {len(item.failures)} worker "
                       f"failure(s): {item.failures[-1]}"),
                failures=list(item.failures)))
        elif remaining <= RESTART_BUDGET_FLOOR_S:
            self._settle(outcomes, ShardOutcome(
                shard_id=item.shard_id, status="timeout",
                attempts=item.attempt, duration_s=consumed,
                error=f"budget exhausted after {reason}",
                failures=list(item.failures)))
        else:
            item.budget_s = remaining
            queue.append(item)

    # -- the scheduling loop -------------------------------------------------

    def run(self, shards: list[dict]) -> tuple[dict[str, ShardOutcome], bool]:
        """Execute every shard dict; returns ``(outcomes, interrupted)``.

        ``outcomes`` maps shard id to its terminal verdict; on interrupt
        the map holds only the shards that settled before the stop
        request — in-flight and queued shards are simply absent (their
        journal trail is a ``shard-start`` without a ``shard-done``,
        which is exactly what the resume path re-executes).
        """
        queue: deque[_WorkItem] = deque(
            _WorkItem(shard_id=str(shard["id"]), shard=dict(shard),
                      budget_s=self.shard_timeout_s)
            for shard in shards)
        outcomes: dict[str, ShardOutcome] = {}
        if not queue:
            return outcomes, False
        context = multiprocessing.get_context()
        workers = [_Worker(context)
                   for _ in range(min(self.jobs, len(queue)))]
        interrupted = False
        try:
            while queue or any(w.busy for w in workers):
                if self.should_stop is not None and self.should_stop():
                    interrupted = True
                    break
                for worker in workers:
                    if not worker.busy and queue:
                        item = queue.popleft()
                        if self.on_start is not None:
                            self.on_start(item.shard_id, item.attempt)
                        worker.assign(
                            item, fault=self._fault_for(item),
                            heartbeat_interval_s=self.heartbeat_interval_s)
                busy = [w for w in workers if w.busy]
                if not busy:
                    continue
                ready = connection_wait(
                    [w.conn for w in busy],
                    timeout=min(self.heartbeat_interval_s, 0.05))
                for worker in busy:
                    if worker.conn in ready:
                        self._drain(worker, queue, outcomes)
                now = time.monotonic()
                for worker in workers:
                    item = worker.item
                    if item is None:
                        continue
                    if not worker.process.is_alive():
                        code = worker.process.exitcode
                        self._worker_failed(
                            worker, f"worker crashed (exit {code})",
                            queue, outcomes)
                    elif now - worker.started_at > item.budget_s:
                        worker.kill()
                        worker.item = None
                        self._settle(outcomes, ShardOutcome(
                            shard_id=item.shard_id, status="timeout",
                            attempts=item.attempt + 1,
                            duration_s=now - worker.started_at,
                            error=(f"timed out after "
                                   f"{item.budget_s:g}s budget"),
                            failures=list(item.failures)))
                    elif now - worker.last_beat > self.hang_timeout_s:
                        self._worker_failed(
                            worker, "worker hung (heartbeats stopped)",
                            queue, outcomes)
                # replace killed workers while work remains
                workers = [w for w in workers
                           if w.busy or w.process.is_alive()]
                needed = min(self.jobs,
                             len(queue) + sum(1 for w in workers if w.busy))
                while len(workers) < needed:
                    workers.append(_Worker(context))
        finally:
            for worker in workers:
                if worker.busy or not worker.process.is_alive():
                    worker.kill()
                else:
                    worker.stop()
        return outcomes, interrupted

    def _drain(self, worker: _Worker, queue: deque[_WorkItem],
               outcomes: dict[str, ShardOutcome]) -> None:
        """Consume every pending message from one worker's pipe."""
        while True:
            try:
                if not worker.conn.poll(0):
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                # death is handled by the liveness check; the pipe EOF
                # alone must not double-account the failure
                return
            if message.get("type") == "beat":
                worker.last_beat = time.monotonic()
            elif message.get("type") == "result" and worker.item is not None:
                item = worker.item
                worker.item = None
                payload = message["payload"]
                self._settle(outcomes, ShardOutcome(
                    shard_id=item.shard_id,
                    status=str(payload.get("status", "error")),
                    payload=payload,
                    attempts=item.attempt + 1,
                    duration_s=float(payload.get("durationS", 0.0)),
                    error=str(payload.get("error", "")),
                    failures=list(item.failures)))
