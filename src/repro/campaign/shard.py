"""Worker-side execution of one campaign shard.

:func:`execute_shard` is the only campaign code that runs inside a
supervised worker process, so it speaks plain dicts across the process
boundary and never lets a tool exception escape — a deterministic tool
failure must come back as a classified ``error`` payload the supervisor
can journal, not a traceback that kills the worker (worker *deaths* are
the supervisor's signal for retry/quarantine, and they must mean
infrastructure trouble, not tool verdicts).

Each tool executor returns the same JSON document the tool's own CLI
would emit for that ``(scenario, plan, seed)`` cell, which is already
byte-deterministic per the repo's core invariant; :func:`result_digest`
fixes the canonical encoding so the journal, the resume path, and the
report validator all agree on what "the same result" means.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Callable

from repro.campaign.spec import CampaignTool, ShardSpec

__all__ = ["execute_shard", "result_digest", "TOOL_EXECUTORS"]


def result_digest(result: dict) -> str:
    """SHA-256 over the canonical JSON encoding of a result document."""
    material = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode()).hexdigest()


def _run_chaos(spec: ShardSpec) -> dict:
    from repro.faults import get_plan, run_chaos_scenario

    return run_chaos_scenario(spec.scenario, get_plan(spec.plan),
                              base_seed=spec.seed, duration=spec.duration)


def _run_sentinel(spec: ShardSpec) -> dict:
    from repro.faults import get_plan
    from repro.sentinel import run_sentinel_scenario

    return run_sentinel_scenario(spec.scenario, get_plan(spec.plan),
                                 base_seed=spec.seed, duration=spec.duration)


def _run_redteam(spec: ShardSpec) -> dict:
    from repro.redteam import run_redteam_campaign

    document = run_redteam_campaign([spec.scenario], base_seed=spec.seed)
    return document["scenarios"][0]


def _run_flow(spec: ShardSpec) -> dict:
    from repro.flow import flow_linter
    from repro.lint import build_scenario

    linter = flow_linter()
    report = linter.run(build_scenario(spec.scenario))
    return report.to_json_dict(linter.enabled_rules())


def _run_lint(spec: ShardSpec) -> dict:
    from repro.lint import Linter, build_scenario

    linter = Linter()
    report = linter.run(build_scenario(spec.scenario))
    return report.to_json_dict(linter.enabled_rules())


TOOL_EXECUTORS: dict[CampaignTool, Callable[[ShardSpec], dict]] = {
    CampaignTool.CHAOS: _run_chaos,
    CampaignTool.SENTINEL: _run_sentinel,
    CampaignTool.REDTEAM: _run_redteam,
    CampaignTool.FLOW: _run_flow,
    CampaignTool.LINT: _run_lint,
}


def execute_shard(spec_dict: dict) -> dict:
    """Run one shard to completion; always returns a payload dict.

    The payload's deterministic core is ``shard``/``status``/``result``/
    ``digest``/``error`` — exactly what the journal persists and the
    final report embeds.  ``durationS`` is wall-clock bookkeeping for
    tables and benches only and never reaches the byte-compared report.
    """
    t0 = time.perf_counter()
    status, result, digest, error = "ok", None, "", ""
    try:
        spec = ShardSpec.from_dict(spec_dict)
        result = TOOL_EXECUTORS[spec.tool](spec)
        digest = result_digest(result)
    except Exception as exc:
        status, result, digest = "error", None, ""
        error = f"{type(exc).__name__}: {exc}"
    return {
        "shard": dict(spec_dict),
        "status": status,
        "result": result,
        "digest": digest,
        "error": error,
        "durationS": time.perf_counter() - t0,
    }
