"""Append-only write-ahead journal for crash-safe campaigns.

The journal is the campaign engine's single source of durable truth:
one JSONL file per campaign (``<journal-root>/<id>/journal.jsonl``)
holding typed records, each flushed *and fsynced* before the engine
acts on it.  The protocol is the classic WAL discipline:

* ``campaign-start`` — the full :class:`~repro.campaign.spec.CampaignSpec`,
  written once before any shard is dispatched (resume rebuilds the
  matrix from this record alone);
* ``shard-start`` — intent to execute an attempt (a start without a
  matching ``shard-done`` means the crash landed mid-shard; resume
  simply re-executes it);
* ``shard-done`` — the shard's terminal outcome, embedding the result
  document and its digest (resume replays these instead of re-running);
* ``shard-quarantined`` — a poison shard retired after repeated worker
  deaths (terminal: resume must *not* retry it, or a resumed report
  would diverge from the uninterrupted one);
* ``interrupt`` — a graceful SIGINT/SIGTERM checkpoint;
* ``campaign-end`` — the campaign completed and the final report was
  assembled.

Every record carries a sequence number and a content checksum.  A
*trailing* record that fails to parse or verify is a torn write from
the crash itself and is dropped; a corrupt record anywhere else means
the file was tampered with or the disk is lying, and replay refuses
with :class:`JournalCorrupt` rather than resuming from fiction.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

__all__ = ["RECORD_TYPES", "Journal", "JournalCorrupt", "JournalState",
           "read_records", "replay"]

RECORD_TYPES = ("campaign-start", "shard-start", "shard-done",
                "shard-quarantined", "interrupt", "campaign-end")

#: Terminal shard-outcome statuses a ``shard-done`` record may carry.
DONE_STATUSES = ("ok", "error", "timeout")


class JournalCorrupt(ValueError):
    """A non-trailing journal record failed to parse or verify."""


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: dict) -> str:
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:16]


class Journal:
    """Append-side handle: fsync-per-record writes plus cost accounting.

    ``fsync=False`` drops the per-record fsync (tests and benchmarks
    that measure everything *but* durability); production keeps it on —
    a record the engine acted on must survive a power cut.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.records_written = 0
        #: Cumulative seconds spent writing + syncing (BENCH-CAMPAIGN
        #: pins this under 5% of shard execution time).
        self.write_s = 0.0
        self._fh: IO[str] | None = None
        self._next_seq = 0

    def open(self) -> "Journal":
        """Open for append, continuing the sequence of prior records."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = read_records(self.path)
        self._next_seq = existing[-1]["seq"] + 1 if existing else 0
        self._fh = open(self.path, "a", encoding="utf-8")
        return self

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self.open()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def append(self, record: dict) -> dict:
        """Durably append one record; returns it with seq + checksum."""
        if self._fh is None:
            raise ValueError("journal is not open")
        if record.get("type") not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type "
                             f"{record.get('type')!r}")
        t0 = time.perf_counter()
        stamped = {**record, "seq": self._next_seq}
        stamped["check"] = _checksum(stamped)
        self._fh.write(_canonical(stamped) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._next_seq += 1
        self.records_written += 1
        self.write_s += time.perf_counter() - t0
        return stamped


def read_records(path: str | Path) -> list[dict]:
    """Replay a journal file into verified records.

    Tolerates exactly one torn trailing record (the crash artifact);
    anything else that fails to parse or verify raises
    :class:`JournalCorrupt`.  A missing file is an empty journal.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return []
    records: list[dict] = []
    for index, line in enumerate(lines):
        trailing = index == len(lines) - 1
        record = _verify_line(line, index, trailing=trailing)
        if record is None:
            break  # torn tail dropped
        records.append(record)
    return records


def _verify_line(line: str, index: int, *, trailing: bool) -> dict | None:
    def bad(reason: str) -> dict | None:
        if trailing:
            return None
        raise JournalCorrupt(f"journal record {index}: {reason}")

    if not line.strip():
        return bad("blank line")
    try:
        record = json.loads(line)
    except ValueError:
        return bad("unparseable JSON")
    if not isinstance(record, dict):
        return bad("record must be an object")
    check = record.pop("check", None)
    if check != _checksum(record):
        return bad("checksum mismatch")
    if record.get("type") not in RECORD_TYPES:
        return bad(f"unknown record type {record.get('type')!r}")
    if record.get("seq") != index:
        return bad(f"sequence gap (expected {index}, "
                   f"found {record.get('seq')!r})")
    return record


@dataclass
class JournalState:
    """What a replayed journal proves about a campaign's progress."""

    #: The recorded campaign spec document (``campaign-start`` payload).
    spec: dict | None = None
    #: shard id -> terminal ``shard-done`` record.
    done: dict[str, dict] = field(default_factory=dict)
    #: shard id -> ``shard-quarantined`` record.
    quarantined: dict[str, dict] = field(default_factory=dict)
    #: shard id -> attempts started (``shard-start`` records seen).
    starts: dict[str, int] = field(default_factory=dict)
    #: graceful-interrupt checkpoints recorded.
    interrupts: int = 0
    #: a ``campaign-end`` record was written.
    ended: bool = False
    #: total records replayed.
    records: int = 0

    @property
    def in_flight(self) -> list[str]:
        """Shards started but never finished (the crash landed on them)."""
        return sorted(shard_id for shard_id in self.starts
                      if shard_id not in self.done
                      and shard_id not in self.quarantined)

    def settled(self, shard_id: str) -> bool:
        """Is the shard terminal (done or quarantined) in the journal?"""
        return shard_id in self.done or shard_id in self.quarantined


def replay(path: str | Path) -> JournalState:
    """Fold a journal file into a :class:`JournalState`."""
    state = JournalState()
    for record in read_records(path):
        state.records += 1
        kind = record["type"]
        if kind == "campaign-start":
            if state.spec is not None:
                raise JournalCorrupt("duplicate campaign-start record")
            state.spec = record["campaign"]
        elif kind == "shard-start":
            shard_id = record["shardId"]
            state.starts[shard_id] = state.starts.get(shard_id, 0) + 1
        elif kind == "shard-done":
            if record.get("status") not in DONE_STATUSES:
                raise JournalCorrupt(
                    f"shard-done with bad status {record.get('status')!r}")
            state.done[record["shardId"]] = record
        elif kind == "shard-quarantined":
            state.quarantined[record["shardId"]] = record
        elif kind == "interrupt":
            state.interrupts += 1
        elif kind == "campaign-end":
            state.ended = True
    if state.records and state.spec is None:
        raise JournalCorrupt("journal has records but no campaign-start")
    return state
