"""The crash-safe, resumable campaign engine.

:class:`CampaignEngine` is the journal-driven scheduler that ties the
package together: it owns one write-ahead journal per campaign
(``<journal-root>/<campaign-id>/journal.jsonl``), dispatches pending
shards to the :class:`~repro.campaign.supervisor.Supervisor`, and
assembles the final :class:`~repro.campaign.report.CampaignReport`
purely from ``(spec, journaled outcome)`` pairs.

The crash-safety contract, end to end:

* every scheduling decision hits the journal *before* the engine acts
  on it (``shard-start`` before dispatch, ``shard-done`` /
  ``shard-quarantined`` the moment an outcome settles), each record
  fsynced, so a SIGKILL at any instant loses at most in-flight work;
* ``run(resume=True)`` replays the journal, trusts every settled
  record (including quarantines — a poison shard must not get a fresh
  chance just because the engine restarted), and re-executes only the
  rest;
* the final report is a pure function of the spec and the settled
  outcomes, so a resumed campaign's report is **byte-identical** to an
  uninterrupted one no matter where the crash landed;
* a graceful SIGINT/SIGTERM checkpoints an ``interrupt`` record, emits
  a partial report marked ``interrupted: true``, and prints the exact
  resume command.

Self-chaos: :func:`plan_worker_faults` turns an ordinary
:class:`~repro.faults.plan.FaultPlan` into worker crash/hang
injections against the engine's *own* workers, using the same
deterministic per-target streams the simulated vehicles get — the
harness is subject to the paper's graceful-degradation discipline,
not just the systems it tests.
"""

from __future__ import annotations

import signal
import time
from dataclasses import replace
from pathlib import Path
from types import FrameType

from repro.campaign.journal import Journal, JournalCorrupt, JournalState, replay
from repro.campaign.report import CampaignReport, ShardEntry
from repro.campaign.spec import CampaignSpec
from repro.campaign.supervisor import (
    DEFAULT_HANG_TIMEOUT_S,
    DEFAULT_HEARTBEAT_INTERVAL_S,
    DEFAULT_QUARANTINE_AFTER,
    DEFAULT_SHARD_TIMEOUT_S,
    ShardOutcome,
    Supervisor,
)
from repro.core.layers import Layer
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.obs.events import EventKind, EventLog
from repro.obs.runtime import OBS

__all__ = ["CampaignEngine", "CampaignError", "default_journal_root",
           "load_campaign", "list_campaigns", "plan_worker_faults"]


class CampaignError(ValueError):
    """A campaign cannot run as requested (bad state, spec mismatch)."""


def default_journal_root() -> Path:
    """The repo-local journal root (``.repro-cache/campaigns``)."""
    from repro.experiments import benchmarks_dir

    return benchmarks_dir().parent / ".repro-cache" / "campaigns"


def journal_path(campaign_id: str, journal_root: str | Path | None) -> Path:
    root = Path(journal_root) if journal_root is not None \
        else default_journal_root()
    return root / campaign_id / "journal.jsonl"


def load_campaign(campaign_id: str,
                  journal_root: str | Path | None = None) -> CampaignSpec:
    """Rebuild a campaign's spec from its journal (the resume entry)."""
    path = journal_path(campaign_id, journal_root)
    state = replay(path)
    if state.spec is None:
        raise CampaignError(f"no journal for campaign {campaign_id!r} "
                            f"under {path.parent.parent}")
    return CampaignSpec.from_dict(state.spec)


def list_campaigns(journal_root: str | Path | None = None) -> list[dict]:
    """Summarise every journaled campaign (sorted by id)."""
    root = Path(journal_root) if journal_root is not None \
        else default_journal_root()
    summaries: list[dict] = []
    if not root.is_dir():
        return summaries
    for entry in sorted(root.iterdir()):
        path = entry / "journal.jsonl"
        if not path.is_file():
            continue
        try:
            state = replay(path)
            spec = CampaignSpec.from_dict(state.spec) \
                if state.spec is not None else None
        except (JournalCorrupt, ValueError, KeyError):
            summaries.append({"id": entry.name, "status": "corrupt",
                              "shards": 0, "settled": 0})
            continue
        if spec is None:
            continue
        settled = sum(1 for shard in spec.shards
                      if state.settled(shard.shard_id))
        status = "complete" if state.ended else (
            "interrupted" if state.interrupts else "incomplete")
        summaries.append({"id": entry.name, "status": status,
                          "shards": len(spec), "settled": settled})
    return summaries


def plan_worker_faults(spec: CampaignSpec, plan: FaultPlan, *,
                       base_seed: int | None = None,
                       max_attempts: int = DEFAULT_QUARANTINE_AFTER,
                       ) -> dict[str, dict[int, str]]:
    """Derive self-chaos worker faults for a campaign from a fault plan.

    Consults the plan's ``runner-worker-crash`` / ``runner-worker-hang``
    specs once per ``(shard, attempt)`` opportunity — the shard id is
    the fault target and the attempt index the virtual instant, exactly
    the convention :meth:`FaultInjector.worker_crash_hook` established
    for sweep workers.  The plan's worker-fault specs are re-targeted
    onto every shard id first (built-in plans aim them at the generic
    ``sweep-worker`` target), so each shard draws from its own labelled
    stream.  Determinism of the injector streams makes the derived
    fault map a pure function of ``(spec, plan, base_seed)``.
    """
    worker_kinds = (FaultKind.RUNNER_WORKER_CRASH,
                    FaultKind.RUNNER_WORKER_HANG)
    retargeted = tuple(
        replace(fault_spec, target=shard.shard_id)
        for fault_spec in plan.specs if fault_spec.kind in worker_kinds
        for shard in spec.shards)
    if not retargeted:
        return {}
    injector = FaultInjector(FaultPlan(name=plan.name, specs=retargeted),
                             base_seed=base_seed)
    faults: dict[str, dict[int, str]] = {}
    for shard in spec.shards:
        per_attempt: dict[int, str] = {}
        for attempt in range(max_attempts):
            t = float(attempt)
            if injector.fires(FaultKind.RUNNER_WORKER_CRASH,
                              shard.shard_id, t):
                per_attempt[attempt] = FaultKind.RUNNER_WORKER_CRASH.value
            elif injector.fires(FaultKind.RUNNER_WORKER_HANG,
                                shard.shard_id, t):
                per_attempt[attempt] = FaultKind.RUNNER_WORKER_HANG.value
        if per_attempt:
            faults[shard.shard_id] = per_attempt
    return faults


class CampaignEngine:
    """Run (or resume) one campaign against its write-ahead journal."""

    def __init__(self, spec: CampaignSpec, *, jobs: int = 1,
                 journal_root: str | Path | None = None,
                 shard_timeout_s: float = DEFAULT_SHARD_TIMEOUT_S,
                 hang_timeout_s: float = DEFAULT_HANG_TIMEOUT_S,
                 heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
                 quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
                 worker_faults: dict[str, dict[int, str]] | None = None,
                 fsync: bool = True,
                 install_signal_handlers: bool = False) -> None:
        self.spec = spec
        self.jobs = jobs
        self.journal_root = journal_root
        self.shard_timeout_s = shard_timeout_s
        self.hang_timeout_s = hang_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.quarantine_after = quarantine_after
        self.worker_faults = worker_faults or {}
        self.fsync = fsync
        self.install_signal_handlers = install_signal_handlers
        self.events = EventLog()
        self._stop_requested = False
        self._t0 = 0.0

    # -- public knobs --------------------------------------------------------

    @property
    def campaign_id(self) -> str:
        return self.spec.campaign_id

    @property
    def journal_file(self) -> Path:
        return journal_path(self.campaign_id, self.journal_root)

    @property
    def resume_command(self) -> str:
        return f"python -m repro campaign resume {self.campaign_id}"

    def request_stop(self) -> None:
        """Ask the engine to checkpoint and stop at the next boundary."""
        self._stop_requested = True

    # -- observability -------------------------------------------------------

    def _emit(self, kind: EventKind, shard_id: str, message: str,
              **fields: str | int | float | bool) -> None:
        t = time.perf_counter() - self._t0
        self.events.emit(kind, Layer.SYSTEM_OF_SYSTEMS, shard_id, message,
                         t=t, **fields)
        if OBS.enabled:
            OBS.emit(kind, Layer.SYSTEM_OF_SYSTEMS, shard_id, message,
                     t=t, **fields)

    # -- journal bridging ----------------------------------------------------

    @staticmethod
    def _entry_from_done(shard: dict, record: dict) -> ShardEntry:
        return ShardEntry(
            shard=shard, status=str(record["status"]),
            result=record.get("result"), digest=str(record.get("digest", "")),
            error=str(record.get("error", "")),
            attempts=int(record.get("attempts", 0)),
            duration_s=float(record.get("durationS", 0.0)))

    @staticmethod
    def _entry_from_quarantine(shard: dict, record: dict) -> ShardEntry:
        return ShardEntry(
            shard=shard, status="quarantined", result=None, digest="",
            error=str(record.get("error", "")),
            attempts=int(record.get("attempts", 0)),
            duration_s=float(record.get("durationS", 0.0)))

    def _outcome_record(self, outcome: ShardOutcome) -> dict:
        if outcome.status == "quarantined":
            return {"type": "shard-quarantined", "shardId": outcome.shard_id,
                    "error": outcome.error, "attempts": outcome.attempts,
                    "durationS": round(outcome.duration_s, 6),
                    "failures": list(outcome.failures)}
        payload = outcome.payload or {}
        return {"type": "shard-done", "shardId": outcome.shard_id,
                "status": outcome.status,
                "result": payload.get("result"),
                "digest": str(payload.get("digest", "")),
                "error": outcome.error, "attempts": outcome.attempts,
                "durationS": round(outcome.duration_s, 6)}

    # -- the run -------------------------------------------------------------

    def run(self, *, resume: bool = False) -> CampaignReport:
        """Execute the campaign; returns the (possibly partial) report.

        Fresh runs refuse to clobber an existing journal — resuming is
        an explicit decision (``resume=True``), not a side effect of
        retyping the run command after a crash.
        """
        self._t0 = time.perf_counter()
        self._stop_requested = False
        path = self.journal_file
        state = replay(path)
        if state.records and not resume:
            raise CampaignError(
                f"campaign {self.campaign_id} already has a journal; "
                f"resume it with: {self.resume_command}")
        if resume and state.spec is not None:
            recorded = CampaignSpec.from_dict(state.spec)
            if recorded.to_dict() != self.spec.to_dict():
                raise CampaignError(
                    f"journal for {self.campaign_id} records a different "
                    f"shard matrix; refusing to resume across spec edits")
        report = CampaignReport(spec=self.spec)
        with OBS.span("campaign.run", campaign=self.campaign_id,
                      jobs=self.jobs, shards=len(self.spec),
                      resume=resume):
            with Journal(path, fsync=self.fsync) as journal:
                self._run_journaled(journal, state, report,
                                    resumed=resume and state.records > 0)
                report.journal_write_s = journal.write_s
                report.journal_records = journal.records_written
            if OBS.enabled:
                OBS.count("campaign.runs")
                if report.interrupted:
                    OBS.count("campaign.interrupted")
        report.wall_s = time.perf_counter() - self._t0
        return report

    def _run_journaled(self, journal: Journal, state: JournalState,
                       report: CampaignReport, *, resumed: bool) -> None:
        if state.spec is None:
            journal.append({"type": "campaign-start",
                            "campaign": self.spec.to_dict()})
        replayed = 0
        for shard in self.spec.shards:
            shard_id = shard.shard_id
            if shard_id in state.done:
                report.entries[shard_id] = self._entry_from_done(
                    shard.to_dict(), state.done[shard_id])
                replayed += 1
            elif shard_id in state.quarantined:
                report.entries[shard_id] = self._entry_from_quarantine(
                    shard.to_dict(), state.quarantined[shard_id])
                replayed += 1
        report.resumed_shards = replayed if resumed else 0
        if resumed:
            self._emit(EventKind.CAMPAIGN_RESUMED, self.campaign_id,
                       f"resumed with {replayed} settled shard(s) "
                       f"replayed from the journal", replayed=replayed)
            if OBS.enabled:
                OBS.count("campaign.resumes")
                OBS.count("campaign.shards.replayed", replayed)
        pending = [shard.to_dict() for shard in self.spec.shards
                   if shard.shard_id not in report.entries]
        if not pending:
            if not state.ended:
                journal.append({"type": "campaign-end",
                                "settled": len(report.entries)})
            return

        def on_start(shard_id: str, attempt: int) -> None:
            journal.append({"type": "shard-start", "shardId": shard_id,
                            "attempt": attempt})
            self._emit(EventKind.SHARD_START, shard_id,
                       f"attempt {attempt}", attempt=attempt)
            if OBS.enabled:
                OBS.count("campaign.shards.scheduled")

        def on_outcome(outcome: ShardOutcome) -> None:
            journal.append(self._outcome_record(outcome))
            shard = self.spec.shard(outcome.shard_id)
            payload = outcome.payload or {}
            report.entries[outcome.shard_id] = ShardEntry(
                shard=shard.to_dict(), status=outcome.status,
                result=payload.get("result"),
                digest=str(payload.get("digest", "")),
                error=outcome.error, attempts=outcome.attempts,
                duration_s=outcome.duration_s)
            self._emit(EventKind.SHARD_DONE, outcome.shard_id,
                       f"{outcome.status} after {outcome.attempts} "
                       f"attempt(s)", status=outcome.status,
                       attempts=outcome.attempts)
            if OBS.enabled:
                OBS.count(f"campaign.shards.{outcome.status}")
                OBS.observe("campaign.shard_s", outcome.duration_s)
                if outcome.attempts > 1:
                    OBS.count("campaign.shards.retried")

        supervisor = Supervisor(
            jobs=self.jobs,
            heartbeat_interval_s=self.heartbeat_interval_s,
            hang_timeout_s=self.hang_timeout_s,
            shard_timeout_s=self.shard_timeout_s,
            quarantine_after=self.quarantine_after,
            worker_faults=self.worker_faults,
            on_start=on_start, on_outcome=on_outcome,
            should_stop=lambda: self._stop_requested)
        previous: dict[int, object] = {}
        if self.install_signal_handlers:
            def handler(signum: int, frame: FrameType | None) -> None:
                self._stop_requested = True
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(signum, handler)
        try:
            _, interrupted = supervisor.run(pending)
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)  # type: ignore[arg-type]
        if interrupted:
            journal.append({"type": "interrupt",
                            "settled": len(report.entries),
                            "pending": len(self.spec)
                            - len(report.entries)})
            report.interrupted = True
        else:
            journal.append({"type": "campaign-end",
                            "settled": len(report.entries)})
