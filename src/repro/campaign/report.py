"""Deterministic campaign reports and their schema validator.

The campaign report is the artifact the whole crash-safety story is
judged against: a campaign killed at any shard boundary and resumed
must produce a report **byte-identical** to the uninterrupted run.
That forces a hard split between the two kinds of data the engine
holds:

* the *deterministic core* — shard specs, statuses, result documents,
  digests, error strings — which is everything :meth:`to_json_dict`
  serialises, sorted by shard id with a stable key order; and
* *wall-clock bookkeeping* — durations, attempt counts, journal cost —
  which differs between an interrupted and an uninterrupted run by
  construction, so it lives only on the :class:`CampaignReport` object
  (``to_table`` shows it; the JSON never contains it).

``interrupted``/``pending`` describe a *partial* report written at a
graceful checkpoint; a completed campaign always reports
``complete: true`` with zero pending shards, whatever its history of
crashes and resumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.campaign.shard import result_digest
from repro.campaign.spec import CampaignSpec

__all__ = ["CAMPAIGN_SCHEMA_VERSION", "CAMPAIGN_TOOL_NAME", "SHARD_STATUSES",
           "ShardEntry", "CampaignReport", "validate_campaign_dict",
           "SchemaError"]

CAMPAIGN_SCHEMA_VERSION = "1.0"
CAMPAIGN_TOOL_NAME = "repro-campaign"

#: Terminal statuses plus ``pending`` (only in interrupted reports).
SHARD_STATUSES = ("ok", "error", "timeout", "quarantined", "pending")


class SchemaError(ValueError):
    """A campaign report document violates the schema."""


@dataclass
class ShardEntry:
    """One shard's contribution to the report.

    ``attempts``/``duration_s`` are wall-clock bookkeeping for tables
    only — see the module docstring for why they stay out of the JSON.
    """

    shard: dict
    status: str = "pending"
    result: dict | None = None
    digest: str = ""
    error: str = ""
    attempts: int = 0
    duration_s: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "id": self.shard["id"],
            "tool": self.shard["tool"],
            "scenario": self.shard["scenario"],
            "plan": self.shard["plan"],
            "seed": self.shard["seed"],
            "duration": self.shard["duration"],
            "status": self.status,
            "digest": self.digest,
            "error": self.error,
            # Canonical key order: a result replayed from the journal
            # (written sorted) and one fresh from an executor must
            # serialize to the same bytes, not just the same values.
            "result": (json.loads(json.dumps(self.result, sort_keys=True))
                       if self.result is not None else None),
        }


@dataclass
class CampaignReport:
    """The assembled verdict over every shard of a campaign."""

    spec: CampaignSpec
    entries: dict[str, ShardEntry] = field(default_factory=dict)
    interrupted: bool = False
    wall_s: float = 0.0
    journal_write_s: float = 0.0
    journal_records: int = 0
    resumed_shards: int = 0

    def _ordered(self) -> list[ShardEntry]:
        return [self.entries.get(shard.shard_id,
                                 ShardEntry(shard=shard.to_dict()))
                for shard in self.spec.shards]

    def counts(self) -> dict[str, int]:
        totals = {status: 0 for status in SHARD_STATUSES}
        for entry in self._ordered():
            totals[entry.status] += 1
        return totals

    def to_json_dict(self) -> dict:
        counts = self.counts()
        return {
            "version": CAMPAIGN_SCHEMA_VERSION,
            "tool": {"name": CAMPAIGN_TOOL_NAME,
                     "version": CAMPAIGN_SCHEMA_VERSION},
            "campaign": {
                "id": self.spec.campaign_id,
                "name": self.spec.name,
                "shardCount": len(self.spec),
            },
            "shards": [entry.to_json_dict() for entry in self._ordered()],
            "summary": {
                "total": len(self.spec),
                "ok": counts["ok"],
                "errors": counts["error"],
                "timeouts": counts["timeout"],
                "quarantined": counts["quarantined"],
                "pending": counts["pending"],
                "complete": counts["pending"] == 0,
                "interrupted": self.interrupted,
            },
        }

    def exit_code(self) -> int:
        """130 when interrupted (signal convention), 1 on any failure."""
        if self.interrupted:
            return 130
        counts = self.counts()
        failed = counts["error"] + counts["timeout"] + counts["quarantined"]
        return 1 if failed or counts["pending"] else 0

    def to_table(self) -> str:
        """Human-readable summary, wall-clock details included."""
        lines = [f"campaign {self.spec.campaign_id} "
                 f"({len(self.spec)} shards)"]
        for entry in self._ordered():
            marker = {"ok": "+", "pending": "."}.get(entry.status, "!")
            detail = f"{entry.duration_s:.3f}s x{entry.attempts}" \
                if entry.attempts else "-"
            suffix = f"  {entry.error}" if entry.error else ""
            lines.append(f"  {marker} {entry.shard['id']:<44} "
                         f"{entry.status:<11} {detail}{suffix}")
        counts = self.counts()
        lines.append(
            f"  = {counts['ok']} ok, {counts['error']} error, "
            f"{counts['timeout']} timeout, {counts['quarantined']} "
            f"quarantined, {counts['pending']} pending in {self.wall_s:.2f}s"
            + (" [interrupted]" if self.interrupted else ""))
        if self.resumed_shards:
            lines.append(f"  = resumed: {self.resumed_shards} shard(s) "
                         f"replayed from the journal")
        return "\n".join(lines)


def _require_keys(section: dict, keys: set[str], where: str) -> None:
    if not isinstance(section, dict):
        raise SchemaError(f"{where} must be an object")
    if set(section) != keys:
        missing = keys - set(section)
        extra = set(section) - keys
        raise SchemaError(f"{where} keys mismatch: "
                          f"missing={sorted(missing)} extra={sorted(extra)}")


_TOP_KEYS = {"version", "tool", "campaign", "shards", "summary"}
_TOOL_KEYS = {"name", "version"}
_CAMPAIGN_KEYS = {"id", "name", "shardCount"}
_SHARD_KEYS = {"id", "tool", "scenario", "plan", "seed", "duration",
               "status", "digest", "error", "result"}
_SUMMARY_KEYS = {"total", "ok", "errors", "timeouts", "quarantined",
                 "pending", "complete", "interrupted"}


def validate_campaign_dict(document: dict) -> None:
    """Validate a campaign report document; raises :class:`SchemaError`.

    Beyond shape checks, this recomputes every ``ok`` shard's digest
    from its embedded result document — a report whose digests do not
    match their results is evidence of journal tampering or an engine
    bug, and must never validate.
    """
    _require_keys(document, _TOP_KEYS, "report")
    if document["version"] != CAMPAIGN_SCHEMA_VERSION:
        raise SchemaError(f"unsupported version {document['version']!r}")
    _require_keys(document["tool"], _TOOL_KEYS, "tool")
    if document["tool"]["name"] != CAMPAIGN_TOOL_NAME:
        raise SchemaError(f"unexpected tool {document['tool']['name']!r}")
    _require_keys(document["campaign"], _CAMPAIGN_KEYS, "campaign")
    shards = document["shards"]
    if not isinstance(shards, list) or not shards:
        raise SchemaError("shards must be a non-empty list")
    if document["campaign"]["shardCount"] != len(shards):
        raise SchemaError("campaign.shardCount does not match shards")
    ids = []
    counts = {status: 0 for status in SHARD_STATUSES}
    for index, entry in enumerate(shards):
        _require_keys(entry, _SHARD_KEYS, f"shards[{index}]")
        ids.append(entry["id"])
        status = entry["status"]
        if status not in SHARD_STATUSES:
            raise SchemaError(f"shards[{index}] has unknown status "
                              f"{status!r}")
        counts[status] += 1
        if status == "ok":
            if not isinstance(entry["result"], dict):
                raise SchemaError(f"shards[{index}] is ok but has no "
                                  f"result document")
            if entry["digest"] != result_digest(entry["result"]):
                raise SchemaError(f"shards[{index}] digest does not match "
                                  f"its result document")
        else:
            if entry["result"] is not None:
                raise SchemaError(f"shards[{index}] is {status} but "
                                  f"carries a result document")
            if entry["digest"] != "":
                raise SchemaError(f"shards[{index}] is {status} but "
                                  f"carries a digest")
    if ids != sorted(ids) or len(set(ids)) != len(ids):
        raise SchemaError("shard ids must be sorted and unique")
    summary = document["summary"]
    _require_keys(summary, _SUMMARY_KEYS, "summary")
    expected = {"total": len(shards), "ok": counts["ok"],
                "errors": counts["error"], "timeouts": counts["timeout"],
                "quarantined": counts["quarantined"],
                "pending": counts["pending"],
                "complete": counts["pending"] == 0,
                "interrupted": bool(summary["interrupted"])}
    for key, value in expected.items():
        if summary[key] != value:
            raise SchemaError(f"summary.{key} is {summary[key]!r}, "
                              f"expected {value!r}")
    if summary["complete"] and summary["interrupted"]:
        raise SchemaError("a complete campaign cannot be interrupted")
