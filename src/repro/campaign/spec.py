"""Shard and campaign specifications for the resumable campaign engine.

A *shard* is the engine's unit of work and of crash recovery: one
``(tool, scenario, plan, seed)`` cell of a campaign matrix, executed to
completion inside a supervised worker process and journaled as a single
write-ahead record.  Everything a worker needs to execute the shard —
and everything the resume path needs to decide whether it already ran —
lives in the :class:`ShardSpec`, so a shard is re-executable from its
spec alone on any attempt, in any process, before or after a crash.

A :class:`CampaignSpec` is an ordered matrix of shards plus a stable
identity: the campaign id is derived from the canonical JSON of the
shard list (or pinned explicitly), so the same matrix always maps to
the same journal directory and ``python -m repro campaign resume <id>``
can find it after the scheduling process died.

Determinism contract: shard ids are total-ordered strings, the matrix
is stored sorted, and nothing in a spec depends on wall-clock state —
the final campaign report is assembled purely from
``(spec, result document)`` pairs, which is what makes a resumed
campaign byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

__all__ = ["CampaignTool", "ShardSpec", "CampaignSpec", "PLAN_TOOLS",
           "DEFAULT_DURATION", "STATIC_PLAN"]

#: Campaign length in virtual-clock ticks for plan-driven tools.
DEFAULT_DURATION = 30

#: The plan slot recorded for tools that do not consume a fault plan.
STATIC_PLAN = "-"


class CampaignTool(str, Enum):
    """The analysis/operations tools a campaign shard can run."""

    CHAOS = "chaos"
    SENTINEL = "sentinel"
    REDTEAM = "redteam"
    FLOW = "flow"
    LINT = "lint"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Tools whose shards consume a fault plan + virtual-clock duration.
PLAN_TOOLS = frozenset({CampaignTool.CHAOS, CampaignTool.SENTINEL})


@dataclass(frozen=True)
class ShardSpec:
    """One campaign matrix cell: what to run, against what, how seeded.

    Attributes:
        tool: which analyzer/campaign tool the shard runs.
        scenario: the shipped scenario name the tool targets.
        plan: fault-plan name for plan-driven tools (:data:`PLAN_TOOLS`);
            pinned to :data:`STATIC_PLAN` for the static analyzers.
        seed: the shard's base seed (threaded into every rng stream the
            tool derives).
        duration: campaign length in virtual-clock ticks for plan-driven
            tools; pinned to 0 for the static analyzers.
    """

    tool: CampaignTool
    scenario: str
    plan: str = STATIC_PLAN
    seed: int = 0
    duration: int = 0

    def __post_init__(self) -> None:
        if not self.scenario:
            raise ValueError("a shard needs a scenario name")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.tool in PLAN_TOOLS:
            if self.plan == STATIC_PLAN or not self.plan:
                raise ValueError(
                    f"{self.tool.value} shards need a fault plan name")
            if self.duration < 1:
                raise ValueError(
                    f"{self.tool.value} shards need a duration >= 1 tick")
        else:
            if self.plan != STATIC_PLAN:
                raise ValueError(
                    f"{self.tool.value} is static; plan must be "
                    f"{STATIC_PLAN!r}")
            if self.duration != 0:
                raise ValueError(
                    f"{self.tool.value} is static; duration must be 0")

    @property
    def shard_id(self) -> str:
        """The total-ordered, human-readable shard identity."""
        return (f"{self.tool.value}/{self.scenario}/{self.plan}"
                f"/s{self.seed}")

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key order)."""
        return {
            "id": self.shard_id,
            "tool": self.tool.value,
            "scenario": self.scenario,
            "plan": self.plan,
            "seed": self.seed,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, entry: dict) -> "ShardSpec":
        """Rebuild a spec from :meth:`to_dict` output (journal replay)."""
        try:
            tool = CampaignTool(entry["tool"])
        except (KeyError, ValueError):
            raise ValueError(f"bad shard tool in {entry!r}") from None
        spec = cls(tool=tool, scenario=str(entry["scenario"]),
                   plan=str(entry["plan"]), seed=int(entry["seed"]),
                   duration=int(entry["duration"]))
        recorded = entry.get("id")
        if recorded is not None and recorded != spec.shard_id:
            raise ValueError(f"shard id {recorded!r} does not match its "
                             f"fields ({spec.shard_id!r})")
        return spec


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CampaignSpec:
    """A named, ordered shard matrix with a content-derived identity."""

    shards: tuple[ShardSpec, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a campaign needs at least one shard")
        ids = [shard.shard_id for shard in self.shards]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate shard id(s): {', '.join(dupes)}")
        if ids != sorted(ids):
            raise ValueError("shards must be sorted by shard id "
                             "(use CampaignSpec.matrix)")

    @property
    def campaign_id(self) -> str:
        """The explicit name, or a digest of the canonical shard list."""
        if self.name:
            return self.name
        material = _canonical([shard.to_dict() for shard in self.shards])
        return hashlib.sha256(material.encode()).hexdigest()[:12]

    def __len__(self) -> int:
        return len(self.shards)

    def shard(self, shard_id: str) -> ShardSpec:
        """Look up a shard by id; raises ``KeyError`` when unknown."""
        for shard in self.shards:
            if shard.shard_id == shard_id:
                return shard
        raise KeyError(f"unknown shard {shard_id!r}")

    def to_dict(self) -> dict:
        return {
            "id": self.campaign_id,
            "name": self.name,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, entry: dict) -> "CampaignSpec":
        """Rebuild a campaign from :meth:`to_dict` output."""
        shards = tuple(ShardSpec.from_dict(s) for s in entry["shards"])
        spec = cls(shards=shards, name=str(entry.get("name", "")))
        recorded = entry.get("id")
        if recorded is not None and recorded != spec.campaign_id:
            raise ValueError(f"campaign id {recorded!r} does not match its "
                             f"shard list ({spec.campaign_id!r})")
        return spec

    @classmethod
    def matrix(cls, *, tools: Iterable[CampaignTool | str],
               scenarios: Sequence[str],
               plans: Sequence[str] = ("baseline",),
               seeds: Sequence[int] = (0,),
               duration: int = DEFAULT_DURATION,
               name: str = "") -> "CampaignSpec":
        """Build the sorted cross product of a campaign matrix.

        Plan-driven tools get one shard per ``(scenario, plan, seed)``;
        static analyzers collapse the plan axis (one shard per
        ``(scenario, seed)``).
        """
        if not scenarios:
            raise ValueError("a campaign matrix needs at least one scenario")
        if not plans:
            raise ValueError("a campaign matrix needs at least one plan")
        if not seeds:
            raise ValueError("a campaign matrix needs at least one seed")
        shards: list[ShardSpec] = []
        for raw in tools:
            tool = CampaignTool(raw)
            for scenario in scenarios:
                for seed in seeds:
                    if tool in PLAN_TOOLS:
                        for plan in plans:
                            shards.append(ShardSpec(
                                tool=tool, scenario=scenario, plan=plan,
                                seed=seed, duration=duration))
                    else:
                        shards.append(ShardSpec(
                            tool=tool, scenario=scenario, seed=seed))
        if not shards:
            raise ValueError("a campaign matrix needs at least one tool")
        shards.sort(key=lambda shard: shard.shard_id)
        return cls(shards=tuple(shards), name=name)
