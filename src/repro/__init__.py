"""autosec-repro: reproduction of "Cybersecurity Challenges of Autonomous
Systems" (Hamad et al., DATE 2025).

The paper surveys cybersecurity challenges of autonomous systems across a
layered architecture, using autonomous vehicles as the running example.
This package operationalizes every layer as executable simulators and
analysis tooling:

* :mod:`repro.core`   -- layered framework, threat catalog, cross-layer analyzer (Fig. 1, SVIII)
* :mod:`repro.crypto` -- pure-Python crypto substrate (AES/CMAC/GCM/Ed25519/X25519)
* :mod:`repro.phy`    -- UWB secure ranging, PKES, sensor attacks (SII, Fig. 2)
* :mod:`repro.ivn`    -- in-vehicle networks + SECOC/MACsec/CANsec/CANAL (SIII, Figs. 3-6, Table I)
* :mod:`repro.ssi`    -- self-sovereign identity, SDV reconfiguration, charging (SIV, Fig. 7)
* :mod:`repro.datalayer` -- cloud telemetry, CARIAD kill chain, privacy (SV, Fig. 8)
* :mod:`repro.sos`    -- MaaS system-of-systems threat analysis (SVI, Fig. 9)
* :mod:`repro.collab` -- collaborative perception and competition (SVII)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
per-figure experiment index.
"""

__version__ = "1.0.0"
