"""repro.audit — plugin-based self-audit of the repo's own invariants.

The repo makes promises its unit tests cannot watch everywhere at once:
byte-identical outputs per ``(seed, scenario)``, <5% disabled-mode
observability overhead, typed fault taxonomies, versioned report
schemas, one-way layering.  ``repro.audit`` enforces them statically —
it parses every module under ``src/repro`` once into a shared
:class:`~repro.audit.context.AuditContext` and runs a registered
catalog of checkers (``AUD001`` …) over it, emitting findings as a
table, schema-validated JSON, or SARIF 2.1.0, with fingerprint
baselines and inline ``# audit: allow`` pragmas for deliberate
exceptions.

Quick use::

    from repro.audit import AuditEngine

    report = AuditEngine().run()       # audits the shipped src/repro tree
    assert report.exit_code() == 0

or from the command line: ``python -m repro audit --gate``.
"""

from __future__ import annotations

from repro.audit.context import AuditContext, ModuleInfo, default_root
from repro.audit.engine import (
    REGISTRY,
    AuditEngine,
    AuditFinding,
    Checker,
    all_checkers,
    register,
)
from repro.audit.report import (
    SCHEMA_VERSION,
    TOOL_NAME,
    AuditReport,
    SchemaError,
    to_sarif_dict,
    validate_audit_dict,
)

__all__ = [
    "AuditContext",
    "ModuleInfo",
    "default_root",
    "AuditEngine",
    "AuditFinding",
    "AuditReport",
    "Checker",
    "REGISTRY",
    "register",
    "all_checkers",
    "SCHEMA_VERSION",
    "TOOL_NAME",
    "SchemaError",
    "to_sarif_dict",
    "validate_audit_dict",
]
