"""AUD002 — RNG streams are constructed in ``core/rng.py``, nowhere else.

``repro.core.rng.derive_seed`` is the single point where the sweep-wide
``REPRO_BASE_SEED`` enters the process; every stream must derive from it
(via :func:`repro.core.rng.numpy_rng` / :func:`python_rng`) so that
``--base-seed`` re-shards *all* randomness without touching call sites.
A ``np.random.default_rng(...)`` constructed anywhere else silently
escapes that contract — it replays under the default seed but ignores
re-sharding, which corrupts sweep results without failing any test.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Severity

from repro.audit.context import AuditContext
from repro.audit.engine import AuditFinding, Checker, register
from repro.audit.visitors import import_aliases, resolve_call_target

#: Fully-resolved call targets that construct or globally seed streams.
_BANNED_TARGETS = {
    "numpy.random.default_rng": "constructs an unmanaged numpy Generator",
    "numpy.random.Generator": "constructs an unmanaged numpy Generator",
    "numpy.random.RandomState": "constructs a legacy numpy RandomState",
    "numpy.random.seed": "seeds numpy's hidden global stream",
    "random.Random": "constructs an unmanaged stdlib Random",
}


@register
class RngStreamHygiene(Checker):
    rule_id = "AUD002"
    title = "RNG stream constructed outside core/rng.py"
    severity = Severity.HIGH
    remediation = ("construct streams via repro.core.rng.numpy_rng / "
                   "python_rng so derive_seed ties them to REPRO_BASE_SEED")

    sanctioned = frozenset({"core/rng.py"})

    def check(self, context: AuditContext) -> Iterator[AuditFinding]:
        for module in context.modules:
            relative = str(module.path.relative_to(context.root))
            if relative in self.sanctioned:
                continue
            aliases = import_aliases(module.nodes)
            for node in module.nodes:
                if not isinstance(node, ast.Call):
                    continue
                target = resolve_call_target(node.func, aliases)
                if target in _BANNED_TARGETS:
                    yield self.finding(
                        module, node,
                        f"{target}() {_BANNED_TARGETS[target]} "
                        "(all streams must derive via derive_seed)")
