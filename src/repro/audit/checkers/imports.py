"""AUD008 — layering: banned cross-package imports at module scope.

The repo's package graph mirrors the paper's Fig. 1 stack: ``core``
and ``crypto`` are foundations, the simulation packages (``ivn``,
``phy``, ``collab``, ``datalayer``, ``ssi``, ``sos``) model the system
under test, and the analyzers (``lint``, ``flow``, ``redteam``,
``runner``, ``faults``, ``sentinel``, ``audit``) observe it.  The
arrows point one way — an analyzer importing another analyzer's
internals or a simulation importing its own watchdog creates the
exact coupling the threat-model layering exists to prevent, and it
tends to arrive as an import cycle six months later.

Policy (banned importer-package -> imported-package pairs):

* ``core`` imports no other repro package; ``crypto`` imports only
  ``core``;
* simulation packages import no analyzer;
* ``lint`` (the base analyzer others build on) imports no downstream
  analyzer (``flow``/``redteam``/``sentinel``/``audit``/``campaign``);
* ``obs`` (the instrumentation facade every hot path touches) imports
  no analyzer.

Function-scope imports and ``if TYPE_CHECKING:`` blocks are exempt —
they express a typing or late-binding dependency, not a load-time one.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Severity

from repro.audit.context import AuditContext
from repro.audit.engine import AuditFinding, Checker, register

_SIM_PACKAGES = ("ivn", "phy", "collab", "datalayer", "ssi", "sos")
_ANALYZERS = ("lint", "flow", "redteam", "runner", "faults", "sentinel",
              "audit", "campaign")
_ALL_PACKAGES = ("core", "crypto", "obs") + _SIM_PACKAGES + _ANALYZERS

#: importer package -> packages it may NOT import at module scope.
_BANNED: dict[str, frozenset[str]] = {
    "core": frozenset(p for p in _ALL_PACKAGES if p != "core"),
    "crypto": frozenset(p for p in _ALL_PACKAGES
                        if p not in ("crypto", "core")),
    "obs": frozenset(_ANALYZERS),
    "lint": frozenset({"flow", "redteam", "sentinel", "audit", "campaign"}),
    **{sim: frozenset(_ANALYZERS) for sim in _SIM_PACKAGES},
}


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _module_scope_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Import statements executed at module load time (skips function
    bodies, class bodies stay in — a class-scope import runs at load)."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt
        elif isinstance(stmt, ast.If):
            if not _is_type_checking_test(stmt.test):
                stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, (ast.Try, ast.With)):
            for _, value in ast.iter_fields(stmt):
                if isinstance(value, list):
                    stack.extend(s for s in value if isinstance(s, ast.stmt))
        elif isinstance(stmt, ast.ClassDef):
            stack.extend(stmt.body)


def _imported_repro_packages(stmt: ast.stmt) -> Iterator[str]:
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                yield parts[1]
    elif isinstance(stmt, ast.ImportFrom) and stmt.level == 0:
        parts = (stmt.module or "").split(".")
        if parts[0] == "repro" and len(parts) > 1:
            yield parts[1]


@register
class ImportLayering(Checker):
    rule_id = "AUD008"
    title = "banned cross-layer import at module scope"
    severity = Severity.HIGH
    remediation = ("invert the dependency (analyzers observe simulations, "
                   "never the reverse) or defer it to function scope / "
                   "`if TYPE_CHECKING:` when only types are needed")

    def check(self, context: AuditContext) -> Iterator[AuditFinding]:
        for module in context.modules:
            banned = _BANNED.get(module.package)
            if not banned:
                continue
            for stmt in _module_scope_imports(module.tree):
                for target in _imported_repro_packages(stmt):
                    if target in banned and target != module.package:
                        yield self.finding(
                            module, stmt,
                            f"package `{module.package}` imports "
                            f"`repro.{target}` at module scope, against "
                            "the layering policy")
