"""AUD005 — typed-taxonomy packages may not swallow or flatten errors.

The packages that model the paper's fault/attack taxonomy
(``datalayer``, ``faults``, ``sentinel``, ``ssi``) each export a typed
exception hierarchy precisely so callers can distinguish, say, a
registry outage from a malformed credential.  A blanket
``except Exception:`` erases that distinction at the catch site, and a
``raise RuntimeError(...)`` erases it at the raise site — both turn a
taxonomy the analyzers depend on back into mush.

Flagged:

* bare ``except:``
* ``except Exception:`` / ``except BaseException:`` (alone or inside a
  tuple of handled types)
* ``raise RuntimeError(...)``

A deliberate catch-all (e.g. a circuit breaker that must observe every
failure before re-raising) carries an inline
``# audit: allow AUD005 <why>`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Severity

from repro.audit.context import AuditContext
from repro.audit.engine import AuditFinding, Checker, register

_TAXONOMY_PACKAGES = ("datalayer", "faults", "sentinel", "ssi")
_BLANKET = {"Exception", "BaseException"}


def _blanket_name(node: ast.expr | None) -> str | None:
    """The blanket type caught by this handler expression, if any."""
    if node is None:
        return ""  # bare except:
    if isinstance(node, ast.Name) and node.id in _BLANKET:
        return node.id
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            if isinstance(element, ast.Name) and element.id in _BLANKET:
                return element.id
    return None


@register
class TypedExceptionDiscipline(Checker):
    rule_id = "AUD005"
    title = "blanket exception handling in a typed-taxonomy package"
    severity = Severity.MEDIUM
    remediation = ("catch/raise the package's typed exceptions so callers "
                   "can tell fault classes apart; a deliberate catch-all "
                   "needs `# audit: allow AUD005 <why>`")

    def check(self, context: AuditContext) -> Iterator[AuditFinding]:
        for module in context.in_package(*_TAXONOMY_PACKAGES):
            for node in module.nodes:
                if isinstance(node, ast.ExceptHandler):
                    caught = _blanket_name(node.type)
                    if caught == "":
                        yield self.finding(module, node,
                                           "bare `except:` swallows every "
                                           "fault class indiscriminately")
                    elif caught is not None:
                        yield self.finding(
                            module, node,
                            f"`except {caught}` flattens the typed fault "
                            "taxonomy at the catch site")
                elif (isinstance(node, ast.Raise)
                      and isinstance(node.exc, ast.Call)
                      and isinstance(node.exc.func, ast.Name)
                      and node.exc.func.id == "RuntimeError"):
                    yield self.finding(
                        module, node,
                        "raise RuntimeError(...) erases the typed fault "
                        "taxonomy at the raise site")
