"""AUD001 — ambient nondeterminism is banned outside sanctioned modules.

Every experiment, test, and benchmark in this repo must be reproducible
from ``REPRO_BASE_SEED`` alone (byte-identical outputs per
``(seed, scenario)`` is the repo's core promise), so production code may
not reach for ambient nondeterminism:

* ``random.<anything>`` via the stdlib module (module-level functions
  share hidden global state; seeded streams must come through
  ``repro.core.rng``);
* ``time.time()`` / ``time.time_ns()`` (wall-clock reads — model time
  is explicit ``now`` parameters; ``time.monotonic()`` stays legal for
  duration measurement);
* ``datetime.now()`` / ``datetime.utcnow()`` / ``date.today()``;
* entropy taps: ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``, and the
  ``secrets`` module — legitimate inside ``crypto/`` (keys need real
  entropy at provisioning time), ambient anywhere else.

``core/rng.py`` (the seeded-stream implementation) is the one fully
sanctioned module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Severity

from repro.audit.context import AuditContext, ModuleInfo
from repro.audit.engine import AuditFinding, Checker, register

_BANNED_TIME_ATTRS = {"time", "time_ns"}
_BANNED_DATETIME_ATTRS = {"now", "utcnow", "today"}
_BANNED_UUID_ATTRS = {"uuid1", "uuid4"}

#: Packages where the entropy taps (urandom/uuid/secrets) are the point.
_ENTROPY_SANCTIONED_PACKAGES = {"crypto"}


class _Scan:
    """Two passes over the pre-walked node list: imports first (so call
    flagging is independent of source order), then calls."""

    def __init__(self, entropy_sanctioned: bool) -> None:
        self.entropy_sanctioned = entropy_sanctioned
        self.violations: list[tuple[int, str]] = []
        self._random_names: set[str] = set()
        self._time_names: set[str] = set()
        self._os_names: set[str] = set()
        self._uuid_names: set[str] = set()
        self._secrets_names: set[str] = set()
        self._datetime_classes: set[str] = set()
        self._urandom_names: set[str] = set()
        self._uuid_fn_names: set[str] = set()

    def _flag(self, node: ast.AST, what: str) -> None:
        self.violations.append((getattr(node, "lineno", 1), what))

    def scan(self, nodes: tuple[ast.AST, ...]) -> list[tuple[int, str]]:
        for node in nodes:
            if isinstance(node, ast.Import):
                self._import(node)
            elif isinstance(node, ast.ImportFrom):
                self._import_from(node)
        for node in nodes:
            if isinstance(node, ast.Call):
                self._call(node)
        self.violations.sort()
        return self.violations

    def _import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_names.add(local)
            elif alias.name == "time":
                self._time_names.add(local)
            elif alias.name == "os":
                self._os_names.add(local)
            elif alias.name == "uuid":
                self._uuid_names.add(local)
            elif alias.name == "secrets":
                self._secrets_names.add(local)
                if not self.entropy_sanctioned:
                    self._flag(node, "import of secrets taps ambient entropy "
                                     "(derive keys via repro.crypto)")

    def _import_from(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._flag(node, "from-import of stdlib random "
                             "(use repro.core.rng streams)")
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _BANNED_TIME_ATTRS:
                    self._flag(node, f"from time import {alias.name} "
                                     "(model time must be explicit)")
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self._datetime_classes.add(alias.asname or alias.name)
        elif node.module == "os" and not self.entropy_sanctioned:
            for alias in node.names:
                if alias.name == "urandom":
                    self._urandom_names.add(alias.asname or alias.name)
        elif node.module == "uuid" and not self.entropy_sanctioned:
            for alias in node.names:
                if alias.name in _BANNED_UUID_ATTRS:
                    self._uuid_fn_names.add(alias.asname or alias.name)
        elif node.module == "secrets" and not self.entropy_sanctioned:
            self._flag(node, "from-import of secrets taps ambient entropy "
                             "(derive keys via repro.crypto)")

    def _call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self._urandom_names:
                self._flag(node, "os.urandom() taps ambient entropy "
                                 "(use repro.core.rng streams)")
            if func.id in self._uuid_fn_names:
                self._flag(node, f"uuid.{func.id}() is nondeterministic "
                                 "(derive ids from seeded streams)")
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner in self._random_names:
                self._flag(node, f"random.{func.attr}() uses the hidden "
                                 "global stream (use repro.core.rng)")
            if owner in self._time_names and func.attr in _BANNED_TIME_ATTRS:
                self._flag(node, f"time.{func.attr}() reads the wall clock")
            if (owner in self._datetime_classes
                    and func.attr in _BANNED_DATETIME_ATTRS
                    and not node.args and not node.keywords):
                self._flag(node, f"{owner}.{func.attr}() reads the wall clock")
            if not self.entropy_sanctioned:
                if owner in self._os_names and func.attr == "urandom":
                    self._flag(node, "os.urandom() taps ambient entropy "
                                     "(use repro.core.rng streams)")
                if (owner in self._uuid_names
                        and func.attr in _BANNED_UUID_ATTRS):
                    self._flag(node, f"uuid.{func.attr}() is nondeterministic "
                                     "(derive ids from seeded streams)")
                if owner in self._secrets_names:
                    self._flag(node, f"secrets.{func.attr}() taps ambient "
                                     "entropy (derive keys via repro.crypto)")


@register
class AmbientNondeterminism(Checker):
    """The ported (and extended) AST determinism gate."""

    rule_id = "AUD001"
    title = "ambient nondeterminism in production code"
    severity = Severity.HIGH
    remediation = ("draw randomness from repro.core.rng seeded streams and "
                   "take model time as explicit parameters; entropy taps "
                   "(urandom/uuid/secrets) belong in crypto/ only")

    #: Modules exempt from the whole rule (path relative to the root).
    sanctioned = frozenset({"core/rng.py"})

    def check(self, context: AuditContext) -> Iterator[AuditFinding]:
        for module in context.modules:
            if self._is_sanctioned(module, context) :
                continue
            scan = _Scan(
                entropy_sanctioned=module.package
                in _ENTROPY_SANCTIONED_PACKAGES)
            for line, what in scan.scan(module.nodes):
                yield self.finding(module, line, what)

    def _is_sanctioned(self, module: ModuleInfo,
                       context: AuditContext) -> bool:
        relative = str(module.path.relative_to(context.root))
        return relative in self.sanctioned
