"""AUD007 — every ``report.py`` follows the house schema conventions.

Each analyzer package publishes its results through a ``report.py``
that (a) pins a module-level ``*SCHEMA_VERSION`` string, (b) names
itself via a module-level ``*TOOL_NAME`` string, and (c) ships at
least one ``validate_*_dict`` function that round-trips the JSON shape
(``repro/lint/report.py`` is the template).  Those three artifacts are
what let downstream consumers — CI jobs, the flow analyzer, external
dashboards — detect schema drift instead of silently misparsing.  A
``report.py`` missing any of them is publishing an unversioned,
unvalidatable format.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Severity

from repro.audit.context import AuditContext, ModuleInfo
from repro.audit.engine import AuditFinding, Checker, register


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def _has_validator(tree: ast.Module) -> bool:
    return any(
        isinstance(stmt, ast.FunctionDef)
        and stmt.name.startswith("validate_")
        and stmt.name.endswith("_dict")
        for stmt in tree.body
    )


@register
class ReportSchemaConventions(Checker):
    rule_id = "AUD007"
    title = "report module missing schema-version/tool-name/validator"
    severity = Severity.MEDIUM
    remediation = ("pin `*SCHEMA_VERSION` and `*TOOL_NAME` constants and "
                   "ship a `validate_*_dict` function, following "
                   "repro/lint/report.py")

    def check(self, context: AuditContext) -> Iterator[AuditFinding]:
        for module in context.modules:
            if module.name != "report":
                continue
            yield from self._check_report_module(module)

    def _check_report_module(
            self, module: ModuleInfo) -> Iterator[AuditFinding]:
        names = _module_level_names(module.tree)
        if not any(n.endswith("SCHEMA_VERSION") for n in names):
            yield self.finding(
                module, 1,
                "no module-level *SCHEMA_VERSION constant — consumers "
                "cannot detect schema drift")
        if not any(n.endswith("TOOL_NAME") for n in names):
            yield self.finding(
                module, 1,
                "no module-level *TOOL_NAME constant — SARIF/JSON output "
                "cannot attribute its producer")
        if not _has_validator(module.tree):
            yield self.finding(
                module, 1,
                "no validate_*_dict function — the published JSON shape "
                "is unvalidatable")
