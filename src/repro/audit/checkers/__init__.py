"""The checker catalog.

Importing this package registers every shipped checker (each lives in
its own module and self-registers via :func:`repro.audit.engine.register`).
Adding an invariant in a future PR is: add one module here, import it
below, done — the engine, CLI, catalog meta-test, and reports discover
it through the registry.
"""

from repro.audit.checkers import (  # noqa: F401  (registration side effects)
    defaults,
    determinism,
    exceptions,
    imports,
    obsguard,
    ordering,
    rng,
    schema,
)
