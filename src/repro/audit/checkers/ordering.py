"""AUD004 — no unsorted set iteration may feed report output.

Every report in this repo promises byte-identical output per
``(seed, scenario)``; iterating a ``set`` while building a table, JSON
document, or SARIF log silently breaks that promise (CPython's set
order varies with insertion history and hash randomization of interned
values across versions).  The checker tracks set-valued expressions —
literals, ``set()``/``frozenset()`` calls, set comprehensions, unions,
and local names assigned from them — inside report-producing scopes,
and flags any iteration that is not wrapped in ``sorted(...)`` (or
another order-insensitive consumer: ``min``/``max``/``sum``/``len``/
``any``/``all``).

Report-producing scopes: every function in a module named ``report.py``
or ``sarif.py``, and any function named ``to_table``/``to_dict``/
``to_json_dict``/``to_sarif_dict``/``render_*`` elsewhere.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.engine import Severity

from repro.audit.context import AuditContext, ModuleInfo
from repro.audit.engine import AuditFinding, Checker, register

_REPORT_MODULES = {"report", "sarif"}
_REPORT_FN_RE = re.compile(r"^(to_table|to_dict|to_json_dict|to_sarif_dict"
                           r"|render_\w+)$")
#: Consumers for which element order cannot matter.
_ORDER_INSENSITIVE = {"sorted", "min", "max", "sum", "len", "any", "all",
                      "set", "frozenset"}
#: Order-sensitive conversions that freeze iteration order into output.
_ORDER_SENSITIVE = {"list", "tuple"}


def _is_set_expr(node: ast.expr, known_sets: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in known_sets
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return (_is_set_expr(node.left, known_sets)
                or _is_set_expr(node.right, known_sets))
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in ("union", "intersection", "difference",
                              "symmetric_difference"):
            return _is_set_expr(node.func.value, known_sets)
    return False


def _set_annotation(annotation: ast.expr | None) -> bool:
    """``seen: set[str] = ...`` counts as a set binding."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset")
    if isinstance(annotation, ast.Subscript):
        return _set_annotation(annotation.value)
    return False


def _known_sets(stmts: list[ast.stmt]) -> set[str]:
    """Names bound to set values by simple assignments in this suite
    (including nested blocks, excluding nested function bodies)."""
    known: set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                if _is_set_expr(node.value, known):
                    known.add(node.targets[0].id)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                if _set_annotation(node.annotation) or (
                        node.value is not None
                        and _is_set_expr(node.value, known)):
                    known.add(node.target.id)
    return known


class _Scope(ast.NodeVisitor):
    """Flags unsorted set iteration inside one report-producing scope."""

    def __init__(self, known_sets: set[str]) -> None:
        self.known = known_sets
        self.violations: list[tuple[ast.AST, str]] = []
        #: comprehensions appearing directly inside order-insensitive calls
        self._safe_comps: set[ast.AST] = set()

    def _flag(self, node: ast.AST, how: str) -> None:
        self.violations.append((node, how))

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in _ORDER_INSENSITIVE:
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                        ast.SetComp, ast.DictComp)):
                        self._safe_comps.add(arg)
            elif name in _ORDER_SENSITIVE:
                for arg in node.args:
                    if _is_set_expr(arg, self.known):
                        self._flag(arg, f"{name}(<set>) freezes arbitrary "
                                        "set order into output")
        if isinstance(node.func, ast.Attribute) and node.func.attr == "join":
            for arg in node.args:
                if _is_set_expr(arg, self.known):
                    self._flag(arg, "str.join over a set emits elements in "
                                    "arbitrary order")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self.known):
            self._flag(node, "for-loop iterates a set in arbitrary order")
        self.generic_visit(node)

    def _comprehension(
            self,
            node: "ast.GeneratorExp | ast.ListComp | ast.SetComp | ast.DictComp",
    ) -> None:
        if node not in self._safe_comps:
            for generator in node.generators:
                if _is_set_expr(generator.iter, self.known):
                    self._flag(node, "comprehension iterates a set in "
                                     "arbitrary order")
        self.generic_visit(node)

    visit_GeneratorExp = _comprehension
    visit_ListComp = _comprehension
    visit_SetComp = _comprehension
    visit_DictComp = _comprehension


def _scopes(
    module: ModuleInfo,
) -> "Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, set[str]]]":
    """(function node, inherited known-set names) for every scope the
    rule applies to in this module."""
    is_report_module = module.name in _REPORT_MODULES
    module_sets = _known_sets(module.tree.body) if is_report_module else set()
    for node in module.nodes:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if is_report_module or _REPORT_FN_RE.match(node.name):
            yield node, set(module_sets)


@register
class DeterministicReportOrdering(Checker):
    rule_id = "AUD004"
    title = "unsorted set iteration feeds report output"
    severity = Severity.MEDIUM
    remediation = ("wrap the set in sorted(...) before iterating so report "
                   "bytes stay identical across runs and Python versions")

    def check(self, context: AuditContext) -> Iterator[AuditFinding]:
        for module in context.modules:
            for fn, inherited in _scopes(module):
                known = inherited | _known_sets(fn.body)
                scope = _Scope(known)
                for stmt in fn.body:
                    scope.visit(stmt)
                for node, how in scope.violations:
                    yield self.finding(module, node,
                                       f"{how} (in {fn.name}())")
