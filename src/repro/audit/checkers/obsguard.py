"""AUD003 — hot-path obs hooks must be dominated by ``OBS.enabled``.

BENCH-OBS and BENCH-FAULTS pin the disabled-mode observability cost at
<5% of the CAN per-frame budget.  That budget only holds because every
``OBS.count``/``emit``/``observe``/``gauge``/``sample`` call in the hot
packages (``ivn``, ``phy``, ``faults``, ``sentinel``) sits behind a
single ``if OBS.enabled:`` attribute read — an unguarded hook pays a
method call plus argument construction (often an f-string) per frame.

Recognized guard shapes:

* ``if OBS.enabled:`` (any test mentioning ``OBS.enabled`` un-negated)
  dominates its body;
* ``if not OBS.enabled: return`` at any point dominates the statements
  after it;
* a module-level helper whose *every* call site in the module is
  guarded may hook freely (the aggregate-reporting idiom, e.g.
  ``_record_twr_batch``).

``OBS.span`` is exempt by contract — it returns a shared no-op span
when disabled.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Severity

from repro.audit.context import AuditContext
from repro.audit.engine import AuditFinding, Checker, register
from repro.audit.visitors import dotted_name, ends_in_jump

_HOT_PACKAGES = ("ivn", "phy", "faults", "sentinel")
_HOOKS = {"count", "emit", "observe", "gauge", "sample"}


def _is_hook_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _HOOKS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "OBS")


def _mentions_enabled(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if dotted_name(node) == "OBS.enabled":
            return True
    return False


def _is_negated_enabled(test: ast.expr) -> bool:
    return (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
            and _mentions_enabled(test.operand))


class _Scan:
    """Collects unguarded OBS hook calls and local-helper call sites."""

    def __init__(self, helper_names: set[str]) -> None:
        self.helper_names = helper_names
        self.unguarded_hooks: list[ast.Call] = []
        #: helper name -> list of guarded? flags, one per call site
        self.helper_calls: dict[str, list[bool]] = {}

    # -- expression side -----------------------------------------------------

    def exprs(self, node: ast.AST, guarded: bool) -> None:
        """Record hook calls / helper call sites inside one expression or
        statement fragment (does not descend into nested suites)."""
        for child in ast.walk(node):
            if _is_hook_call(child) and not guarded:
                self.unguarded_hooks.append(child)
            if (isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id in self.helper_names):
                self.helper_calls.setdefault(child.func.id, []).append(guarded)

    # -- statement side ------------------------------------------------------

    def suite(self, body: list[ast.stmt], guarded: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested definitions are scanned separately
            if isinstance(stmt, ast.If):
                self.exprs(stmt.test, guarded)
                if (_is_negated_enabled(stmt.test) and not stmt.orelse
                        and ends_in_jump(stmt.body)):
                    # `if not OBS.enabled: return` — the rest of this
                    # suite runs only when enabled.
                    self.suite(stmt.body, guarded)
                    guarded = True
                    continue
                body_guarded = guarded or _mentions_enabled(stmt.test)
                self.suite(stmt.body, body_guarded)
                self.suite(stmt.orelse, guarded)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.exprs(stmt.iter, guarded)
                self.exprs(stmt.target, guarded)
                self.suite(stmt.body, guarded)
                self.suite(stmt.orelse, guarded)
                continue
            if isinstance(stmt, ast.While):
                self.exprs(stmt.test, guarded)
                self.suite(stmt.body, guarded)
                self.suite(stmt.orelse, guarded)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self.exprs(item.context_expr, guarded)
                self.suite(stmt.body, guarded)
                continue
            if isinstance(stmt, ast.Try):
                self.suite(stmt.body, guarded)
                for handler in stmt.handlers:
                    self.suite(handler.body, guarded)
                self.suite(stmt.orelse, guarded)
                self.suite(stmt.finalbody, guarded)
                continue
            self.exprs(stmt, guarded)


@register
class ObsGuardDiscipline(Checker):
    rule_id = "AUD003"
    title = "unguarded obs hook on a hot path"
    severity = Severity.HIGH
    remediation = ("wrap the hook in `if OBS.enabled:` (or an early "
                   "`if not OBS.enabled: return`) so disabled runs pay one "
                   "attribute read, keeping the BENCH-OBS <5% budget")

    def check(self, context: AuditContext) -> Iterator[AuditFinding]:
        for module in context.in_package(*_HOT_PACKAGES):
            tree = module.tree
            helper_names = {stmt.name for stmt in tree.body
                            if isinstance(stmt, (ast.FunctionDef,
                                                 ast.AsyncFunctionDef))}

            # one scan per function (module-level and methods), plus the
            # module body itself; helper call sites aggregate across all.
            scan = _Scan(helper_names)
            scan.suite(tree.body, False)
            per_function: dict[str, list[ast.Call]] = {}
            for node in module.nodes:
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                fn_scan = _Scan(helper_names)
                fn_scan.suite(node.body, False)
                for name, flags in fn_scan.helper_calls.items():
                    scan.helper_calls.setdefault(name, []).extend(flags)
                if node in tree.body and isinstance(node, ast.FunctionDef):
                    per_function.setdefault(node.name, []).extend(
                        fn_scan.unguarded_hooks)
                else:
                    scan.unguarded_hooks.extend(fn_scan.unguarded_hooks)

            for name, hooks in per_function.items():
                if not hooks:
                    continue
                call_flags = scan.helper_calls.get(name, [])
                if call_flags and all(call_flags):
                    continue  # every call site is guarded: aggregate helper
                scan.unguarded_hooks.extend(hooks)

            for call in sorted(scan.unguarded_hooks,
                               key=lambda c: (c.lineno, c.col_offset)):
                attr = call.func.attr  # type: ignore[attr-defined]
                yield self.finding(
                    module, call,
                    f"OBS.{attr}(...) runs unguarded on a hot path "
                    "(no dominating OBS.enabled check)")
