"""AUD006 — mutable default arguments are banned tree-wide.

A mutable default (``def f(x, acc=[])``) is evaluated once at function
definition and shared across every call — state leaks between scenario
runs, which breaks the repo's byte-identical-replay promise in the
least debuggable way possible (the first run is clean, the second
differs).  Flagged default shapes: ``[]``/``{}``/``{...}`` literals,
comprehensions, and direct ``list()``/``dict()``/``set()`` calls, in
positional and keyword-only defaults of ``def``/``async def``/
``lambda``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Severity

from repro.audit.context import AuditContext
from repro.audit.engine import AuditFinding, Checker, register

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "OrderedDict", "Counter", "deque"}


def _mutable_kind(node: ast.expr) -> str | None:
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _MUTABLE_CALLS:
        return f"{node.func.id}() call"
    return None


@register
class NoMutableDefaults(Checker):
    rule_id = "AUD006"
    title = "mutable default argument"
    severity = Severity.MEDIUM
    remediation = ("default to None and construct the container inside the "
                   "function body (defaults are evaluated once and shared "
                   "across calls)")

    def check(self, context: AuditContext) -> Iterator[AuditFinding]:
        for module in context.modules:
            for node in module.nodes:
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None]
                name = getattr(node, "name", "<lambda>")
                for default in defaults:
                    kind = _mutable_kind(default)
                    if kind is not None:
                        yield self.finding(
                            module, default,
                            f"{kind} used as a default argument of {name}() "
                            "is shared across calls")
