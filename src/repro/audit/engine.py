"""Checker base class, registry, and the audit engine.

A checker is one invariant: a small class with a stable id
(``AUD001`` …), a severity, remediation text, and a ``check`` method
that walks the shared :class:`~repro.audit.context.AuditContext` and
yields findings.  Checkers register themselves with :func:`register`,
so adding an invariant in a future PR is one new file under
``repro/audit/checkers/`` — the engine, CLI, reports, and the
catalog meta-test pick it up automatically.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.layers import Layer
from repro.lint.engine import Severity

from repro.audit.context import AuditContext, ModuleInfo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.lint.baseline import Baseline

    from repro.audit.report import AuditReport

__all__ = ["AuditFinding", "Checker", "register", "all_checkers",
           "AuditEngine"]


@dataclass(frozen=True)
class AuditFinding:
    """One violation of one audit rule at one source location."""

    rule_id: str
    severity: Severity
    relpath: str
    line: int
    message: str
    remediation: str

    @property
    def subject(self) -> str:
        """``path:line`` — the display/SARIF location."""
        return f"{self.relpath}:{self.line}"

    @property
    def fingerprint(self) -> str:
        """Stable id for baselining: rule + file + message, *not* the
        line number — refactors that move code must keep suppressing
        the same logical finding."""
        material = f"{self.rule_id}|{self.relpath}|{self.message}"
        return hashlib.sha256(material.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "ruleId": self.rule_id,
            "severity": self.severity.name.lower(),
            "path": self.relpath,
            "line": self.line,
            "message": self.message,
            "remediation": self.remediation,
            "fingerprint": self.fingerprint,
        }


class Checker:
    """Base class for one audit invariant.

    Subclasses set the class attributes and implement :meth:`check`.
    ``layer`` positions the rule in the paper's Fig. 1 stack for the
    SARIF export (defaults to the cross-cutting system-of-systems
    layer, which is where "the repo's own promises" live).
    """

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.HIGH
    layer: Layer = Layer.SYSTEM_OF_SYSTEMS
    remediation: str = ""

    def check(self, context: AuditContext) -> Iterator[AuditFinding]:
        raise NotImplementedError

    # -- helpers for subclasses ----------------------------------------------

    def finding(self, module: ModuleInfo, node: ast.AST | int,
                message: str) -> AuditFinding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return AuditFinding(
            rule_id=self.rule_id,
            severity=self.severity,
            relpath=module.relpath,
            line=line,
            message=message,
            remediation=self.remediation,
        )


#: rule id -> checker class, filled by the :func:`register` decorator.
REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator: add a checker to the catalog."""
    if not cls.rule_id or not cls.rule_id.startswith("AUD"):
        raise ValueError(f"checker id must look like AUD001: {cls.rule_id!r}")
    if cls.rule_id in REGISTRY:
        raise ValueError(f"duplicate checker id {cls.rule_id!r}")
    if not cls.title or not cls.remediation:
        raise ValueError(f"{cls.rule_id}: title and remediation are required")
    REGISTRY[cls.rule_id] = cls
    return cls


def all_checkers() -> list[Checker]:
    """One instance of every registered checker, ordered by rule id."""
    import repro.audit.checkers  # noqa: F401  (registration side effect)

    return [REGISTRY[rule_id]() for rule_id in sorted(REGISTRY)]


class AuditEngine:
    """Runs the checker catalog (or a subset) over a parse context."""

    def __init__(self, checkers: Iterable[Checker] | None = None) -> None:
        if checkers is None:
            checkers = all_checkers()
        self._checkers: dict[str, Checker] = {}
        for checker in checkers:
            if checker.rule_id in self._checkers:
                raise ValueError(f"duplicate checker id {checker.rule_id!r}")
            self._checkers[checker.rule_id] = checker

    @property
    def checkers(self) -> list[Checker]:
        return [self._checkers[rule_id] for rule_id in sorted(self._checkers)]

    def run(self, context: AuditContext | None = None,
            baseline: "Baseline | None" = None) -> "AuditReport":
        """Audit ``context`` (default: the shipped ``src/repro`` tree).

        Inline ``# audit: allow`` pragmas and baseline entries move
        findings to ``report.suppressed`` instead of dropping them.
        """
        from repro.audit.report import AuditReport

        if context is None:
            context = AuditContext.parse()
        by_relpath = {module.relpath: module for module in context.modules}
        findings: list[AuditFinding] = []
        suppressed: list[AuditFinding] = []
        for checker in self.checkers:
            for finding in checker.check(context):
                module = by_relpath.get(finding.relpath)
                inline = (module is not None and
                          finding.rule_id in module.allowed_on(finding.line))
                if inline or (baseline is not None
                              and baseline.suppresses(finding)):
                    suppressed.append(finding)
                else:
                    findings.append(finding)
        key = lambda f: (f.rule_id, f.relpath, f.line, f.message)  # noqa: E731
        return AuditReport(
            root=str(context.root),
            findings=tuple(sorted(findings, key=key)),
            suppressed=tuple(sorted(suppressed, key=key)),
            rules_run=tuple(c.rule_id for c in self.checkers),
            modules_audited=len(context),
            packages=context.packages_audited(),
        )
