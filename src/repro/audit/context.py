"""Shared parse context: every module under ``src/repro``, parsed once.

The audit engine's contract with its checkers is *one* AST walk worth of
cost per rule over a tree that was parsed exactly once.  The context
parses every ``*.py`` file under the audited root up front and hands
checkers a stable, sorted tuple of :class:`ModuleInfo` records — path,
package, AST, raw source — plus the inline ``# audit: allow`` pragma
table used for in-source suppressions.

Inline suppression syntax (mirrors ``# noqa`` but names the rule and
requires a justification)::

    except Exception:  # audit: allow AUD005 generic guard, re-raised below

A pragma on the offending line (or on the line directly above, for
lines that are already long) suppresses matching findings; suppressed
findings still appear in the report's ``suppressed`` section so the
audit cannot silently lose sight of them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path

__all__ = ["ModuleInfo", "AuditContext", "default_root"]

#: ``# audit: allow AUD005 <why>`` — the why is mandatory.
_ALLOW_RE = re.compile(r"#\s*audit:\s*allow\s+(AUD\d{3})\s+(\S.*)$")


def default_root() -> Path:
    """The shipped tree this repo audits: ``src/repro`` next to this file."""
    return Path(__file__).resolve().parents[1]


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module."""

    path: Path
    #: Path relative to the directory *containing* the audited root,
    #: e.g. ``repro/ivn/bus.py`` — matches the old determinism gate's
    #: violation format.
    relpath: str
    #: First package directory under the root (``ivn``, ``lint``, ...);
    #: empty string for top-level modules like ``repro/__main__.py``.
    package: str
    tree: ast.Module
    source: str
    #: line number -> rule ids allowed on that line by an inline pragma.
    allows: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path.stem

    @cached_property
    def nodes(self) -> tuple[ast.AST, ...]:
        """Every AST node, pre-walked once and shared by all checkers —
        re-walking 150 module trees per rule is what makes naive
        multi-pass linters slow."""
        return tuple(ast.walk(self.tree))

    def allowed_on(self, line: int) -> frozenset[str]:
        """Rule ids suppressed at ``line`` (same line or the line above)."""
        return self.allows.get(line, frozenset()) | self.allows.get(
            line - 1, frozenset())


def _scan_allows(source: str) -> dict[int, frozenset[str]]:
    allows: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if match is not None:
            allows[lineno] = allows.get(lineno, frozenset()) | {match.group(1)}
    return allows


def _parse_module(root: Path, path: Path) -> ModuleInfo:
    source = path.read_text()
    relative = path.relative_to(root)
    package = relative.parts[0] if len(relative.parts) > 1 else ""
    return ModuleInfo(
        path=path,
        relpath=str(Path(root.name) / relative),
        package=package,
        tree=ast.parse(source, filename=str(path)),
        source=source,
        allows=_scan_allows(source),
    )


@dataclass(frozen=True)
class AuditContext:
    """All modules under one root, parsed once and shared by every checker."""

    root: Path
    modules: tuple[ModuleInfo, ...]

    @classmethod
    def parse(cls, root: Path | None = None) -> "AuditContext":
        """Parse every ``*.py`` under ``root`` (default: the shipped tree)."""
        resolved = (default_root() if root is None else Path(root)).resolve()
        modules = tuple(
            _parse_module(resolved, path)
            for path in sorted(resolved.rglob("*.py"))
        )
        return cls(root=resolved, modules=modules)

    # -- lookups -------------------------------------------------------------

    def by_relpath(self, relpath: str) -> ModuleInfo:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        raise KeyError(f"no module {relpath!r} in audit context")

    def in_package(self, *packages: str) -> tuple[ModuleInfo, ...]:
        wanted = set(packages)
        return tuple(m for m in self.modules if m.package in wanted)

    def packages_audited(self) -> dict[str, int]:
        """Audited file count per package, sorted by package name."""
        counts: dict[str, int] = {}
        for module in self.modules:
            counts[module.package] = counts.get(module.package, 0) + 1
        return dict(sorted(counts.items()))

    def __len__(self) -> int:
        return len(self.modules)
