"""Small shared AST utilities used by the checker catalog."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["dotted_name", "resolve_call_target", "import_aliases",
           "iter_functions", "ends_in_jump"]


def dotted_name(node: ast.AST) -> str | None:
    """``np.random.default_rng`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(
        tree: "ast.Module | tuple[ast.AST, ...]") -> dict[str, str]:
    """Local name -> imported dotted module, for every ``import`` in the
    module (any scope).  ``from M import n [as a]`` maps ``a``/``n`` to
    ``M.n`` so attribute chains resolve uniformly.  Accepts a parsed
    module or a pre-walked node tuple (``ModuleInfo.nodes``).
    """
    aliases: dict[str, str] = {}
    nodes = ast.walk(tree) if isinstance(tree, ast.Module) else tree
    for node in nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def resolve_call_target(func: ast.AST, aliases: dict[str, str]) -> str | None:
    """The fully-qualified dotted target of a call through the module's
    import aliases (``rng.default_rng`` -> ``numpy.random.default_rng``
    after ``from numpy import random as rng``), else the raw dotted name.
    """
    name = dotted_name(func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    if head in aliases:
        resolved = aliases[head]
        return f"{resolved}.{rest}" if rest else resolved
    return name


def iter_functions(
    tree: ast.Module,
) -> "Iterator[ast.FunctionDef | ast.AsyncFunctionDef]":
    """Every function/method definition in the module, depth-first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def ends_in_jump(body: list[ast.stmt]) -> bool:
    """Does the block unconditionally leave (return/raise/continue/break)?"""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))
