"""Audit reports: findings table, schema-validated JSON, SARIF 2.1.0.

The JSON schema (version ``1.0``) follows the house lint conventions::

    {
      "version": "1.0",
      "tool": {"name": "repro-audit", "version": "<package version>"},
      "target": "<audited root>",
      "audited": {"modules": <int>, "packages": {"ivn": <int>, ...}},
      "rules": [
        {"id", "title", "layer", "severity", "remediation"}
      ],
      "findings": [
        {"ruleId", "severity", "path", "line", "message", "remediation",
         "fingerprint"}
      ],
      "suppressed": [ <same shape as findings> ],
      "summary": {"total": <int>, "byRule": {"AUD001": <int>, ...}}
    }

:func:`validate_audit_dict` checks a parsed document against that
schema and raises :class:`SchemaError` on any violation; the SARIF
export reuses :mod:`repro.lint.sarif` so audit findings load into the
same tooling as lint findings, with physical file/line locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.engine import Finding, Rule, Severity
from repro.lint.report import SchemaError

from repro.audit.engine import AuditFinding, Checker

__all__ = ["AuditReport", "SchemaError", "validate_audit_dict",
           "to_sarif_dict"]

SCHEMA_VERSION = "1.0"
TOOL_NAME = "repro-audit"


@dataclass(frozen=True)
class LocatedFinding(Finding):
    """A lint-shaped finding that also carries a physical location.

    :mod:`repro.lint.sarif` emits a ``physicalLocation`` for findings
    exposing ``path``/``line``; the fingerprint is the audit one (no
    line number) so SARIF ``partialFingerprints`` match the baseline.
    """

    path: str = ""
    line: int = 0
    stable_fingerprint: str = ""

    @property
    def fingerprint(self) -> str:
        return self.stable_fingerprint


def _as_lint_rule(checker: Checker) -> Rule:
    return Rule(
        rule_id=checker.rule_id,
        title=checker.title,
        layer=checker.layer,
        severity=checker.severity,
        paper_ref="§VIII",
        remediation=checker.remediation,
        check=lambda target: (),
    )


def _as_lint_finding(finding: AuditFinding, checker: Checker) -> Finding:
    return LocatedFinding(
        rule_id=finding.rule_id,
        severity=finding.severity,
        layer=checker.layer,
        subject=finding.subject,
        message=finding.message,
        paper_ref="§VIII",
        remediation=finding.remediation,
        path=finding.relpath,
        line=finding.line,
        stable_fingerprint=finding.fingerprint,
    )


@dataclass(frozen=True)
class AuditReport:
    """The outcome of one audit run over one source tree."""

    root: str
    findings: tuple[AuditFinding, ...]
    suppressed: tuple[AuditFinding, ...] = ()
    rules_run: tuple[str, ...] = ()
    modules_audited: int = 0
    packages: dict[str, int] = field(default_factory=dict)

    @property
    def target_name(self) -> str:
        """Alias for :class:`repro.lint.baseline.Baseline` compatibility."""
        return self.root

    # -- summaries -----------------------------------------------------------

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def exit_code(self, gate: Severity | None = Severity.INFO) -> int:
        """0 when no unsuppressed finding reaches ``gate``; 1 otherwise."""
        if gate is None:
            return 0
        return 1 if any(f.severity >= gate for f in self.findings) else 0

    # -- rendering -----------------------------------------------------------

    def to_table(self) -> str:
        """Human-readable findings table."""
        audited = (f"{self.modules_audited} modules, "
                   f"{len(self.rules_run)} rules")
        if not self.findings and not self.suppressed:
            return f"{self.root}: clean ({audited}, 0 findings)"
        lines = [
            f"{'rule':8s} {'severity':9s} location: message",
            f"{'-' * 8} {'-' * 9} {'-' * 50}",
        ]
        for finding in self.findings:
            lines.append(f"{finding.rule_id:8s} "
                         f"{finding.severity.name.lower():9s} "
                         f"{finding.subject}: {finding.message}")
        lines.append(f"{self.root}: {len(self.findings)} finding(s), "
                     f"{len(self.suppressed)} suppressed ({audited})")
        return "\n".join(lines)

    def to_json_dict(self, checkers: list[Checker] | None = None) -> dict:
        """The audit document (see module docstring for the schema)."""
        from repro import __version__

        return {
            "version": SCHEMA_VERSION,
            "tool": {"name": TOOL_NAME, "version": __version__},
            "target": self.root,
            "audited": {
                "modules": self.modules_audited,
                "packages": dict(self.packages),
            },
            "rules": [
                {
                    "id": checker.rule_id,
                    "title": checker.title,
                    "layer": checker.layer.name.lower(),
                    "severity": checker.severity.name.lower(),
                    "remediation": checker.remediation,
                }
                for checker in (checkers or [])
            ],
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "summary": {"total": len(self.findings),
                        "byRule": self.counts_by_rule()},
        }


def to_sarif_dict(report: AuditReport, checkers: list[Checker]) -> dict:
    """Render ``report`` as a SARIF 2.1.0 log via :mod:`repro.lint.sarif`."""
    from repro.lint.report import Report
    from repro.lint.sarif import to_sarif_dict as lint_to_sarif

    by_id = {checker.rule_id: checker for checker in checkers}
    lint_report = Report(
        target_name=report.root,
        findings=tuple(_as_lint_finding(f, by_id[f.rule_id])
                       for f in report.findings),
        suppressed=tuple(_as_lint_finding(f, by_id[f.rule_id])
                         for f in report.suppressed),
        rules_run=report.rules_run,
    )
    return lint_to_sarif(lint_report, [_as_lint_rule(c) for c in checkers],
                         tool_name=TOOL_NAME)


# --------------------------------------------------------------------------
# schema validation
# --------------------------------------------------------------------------

_SEVERITY_NAMES = {s.name.lower() for s in Severity}

_FINDING_KEYS = {"ruleId", "severity", "path", "line", "message",
                 "remediation", "fingerprint"}
_RULE_KEYS = {"id", "title", "layer", "severity", "remediation"}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _validate_finding(entry: dict, where: str) -> None:
    _require(isinstance(entry, dict), f"{where}: finding must be an object")
    _require(set(entry) == _FINDING_KEYS,
             f"{where}: keys {sorted(entry)} != {sorted(_FINDING_KEYS)}")
    for key in sorted(_FINDING_KEYS - {"line"}):
        _require(isinstance(entry[key], str),
                 f"{where}: {key} must be a string")
    _require(isinstance(entry["line"], int) and entry["line"] >= 1,
             f"{where}: line must be a positive int")
    _require(entry["severity"] in _SEVERITY_NAMES,
             f"{where}: bad severity {entry['severity']!r}")
    _require(entry["ruleId"].startswith("AUD"),
             f"{where}: ruleId must be an AUD rule")
    _require(len(entry["fingerprint"]) == 16,
             f"{where}: fingerprint must be 16 hex chars")


def validate_audit_dict(document: dict) -> None:
    """Raise :class:`SchemaError` unless ``document`` matches the schema."""
    _require(isinstance(document, dict), "audit report must be an object")
    required = {"version", "tool", "target", "audited", "rules", "findings",
                "suppressed", "summary"}
    _require(set(document) == required,
             f"top-level keys {sorted(document)} != {sorted(required)}")
    _require(document["version"] == SCHEMA_VERSION,
             f"unsupported schema version {document['version']!r}")
    tool = document["tool"]
    _require(isinstance(tool, dict) and set(tool) == {"name", "version"},
             "tool must be {name, version}")
    _require(tool["name"] == TOOL_NAME,
             f"unexpected tool name {tool['name']!r}")
    _require(isinstance(document["target"], str) and document["target"],
             "target must be a non-empty string")

    audited = document["audited"]
    _require(isinstance(audited, dict)
             and set(audited) == {"modules", "packages"},
             "audited must be {modules, packages}")
    _require(isinstance(audited["modules"], int) and audited["modules"] >= 0,
             "audited.modules must be a non-negative int")
    packages = audited["packages"]
    _require(isinstance(packages, dict), "audited.packages must be an object")
    for package, count in packages.items():
        _require(isinstance(package, str),
                 "audited.packages keys must be strings")
        _require(isinstance(count, int) and count >= 0,
                 f"audited.packages[{package!r}] must be a non-negative int")
    _require(sum(packages.values()) == audited["modules"],
             "audited.packages counts must sum to audited.modules")

    _require(isinstance(document["rules"], list), "rules must be a list")
    for index, rule in enumerate(document["rules"]):
        where = f"rules[{index}]"
        _require(isinstance(rule, dict) and set(rule) == _RULE_KEYS,
                 f"{where}: keys must be {sorted(_RULE_KEYS)}")
        _require(rule["severity"] in _SEVERITY_NAMES,
                 f"{where}: bad severity {rule['severity']!r}")
        _require(isinstance(rule["id"], str) and rule["id"].startswith("AUD"),
                 f"{where}: id must be an AUD rule")

    for section in ("findings", "suppressed"):
        _require(isinstance(document[section], list),
                 f"{section} must be a list")
        for index, entry in enumerate(document[section]):
            _validate_finding(entry, f"{section}[{index}]")

    summary = document["summary"]
    _require(isinstance(summary, dict) and set(summary) == {"total", "byRule"},
             "summary must be {total, byRule}")
    _require(summary["total"] == len(document["findings"]),
             "summary.total must equal len(findings)")
    by_rule = summary["byRule"]
    _require(isinstance(by_rule, dict), "byRule must be an object")
    for rule_id, count in by_rule.items():
        _require(isinstance(rule_id, str) and rule_id.startswith("AUD"),
                 f"byRule: bad rule id {rule_id!r}")
        _require(isinstance(count, int) and count >= 1,
                 f"byRule[{rule_id!r}] must be a positive int")
    _require(sum(by_rule.values()) == summary["total"],
             "byRule counts must sum to summary.total")
