#!/usr/bin/env python3
"""Example: securing an in-vehicle network end to end (paper §III).

Builds the Fig. 3 zonal architecture, demonstrates the CAN masquerade
attack, then deploys and compares the protocol stacks of Figs. 4-6
(SECOC, MACsec end-to-end / point-to-point, CANAL), and finally shows
the intrusion-detection layer catching what crypto doesn't.

    python examples/ivn_secure_onboard.py
"""

from repro.core import Simulator
from repro.core.metrics import attack_surface
from repro.ivn import (
    BusNode,
    CanBus,
    CanFrame,
    FrequencyIds,
    MasqueradeAttacker,
    SecOcChannel,
    SenderFingerprintIds,
    ZonalArchitecture,
    run_all_scenarios,
)


def step1_masquerade() -> None:
    print("\n--- 1. the CAN masquerade attack ---")
    sim = Simulator()
    bus = CanBus(sim)
    for name in ("engine-ecu", "brake-ecu", "compromised-ecu"):
        bus.attach(BusNode(name))
    attacker = MasqueradeAttacker("compromised-ecu", victim_id=0x0A0)
    attacker.inject(bus, b"\xff\x00\x00\x00")  # forged torque request
    sim.run()
    record = bus.nodes["brake-ecu"].received[0]
    print(f"brake ECU received frame id=0x{record.frame.can_id:03X} "
          f"actually sent by {record.sender!r}")
    print("=> CAN delivers it: no sender authentication on the bus")


def step2_secoc_stops_it() -> None:
    print("\n--- 2. SECOC authenticates the application PDUs ---")
    key = b"\x10" * 16
    engine_tx = SecOcChannel(key)
    brake_rx = SecOcChannel(key)
    genuine = engine_tx.secure(0x0A0, b"\x10\x20\x30\x40")
    print(f"genuine PDU verifies: {brake_rx.verify(genuine)}")
    from repro.ivn.secoc import SecuredPdu

    forged = SecuredPdu(0x0A0, b"\xff\x00\x00\x00", 1, b"\x00\x00\x00")
    print(f"forged PDU verifies : {brake_rx.verify(forged)}")


def step3_scenarios() -> None:
    print("\n--- 3. the Figs. 4-6 protocol stacks compared ---")
    print(f"{'scenario':32s} {'latency':>10s} {'ZC keys':>8s} "
          f"{'edge conf.':>10s} {'goodput':>8s}")
    for report in run_all_scenarios(b"\x42" * 16):
        print(f"{report.name:32s} {report.latency_s * 1e6:8.1f} us "
              f"{report.keys_at_zc:8d} {str(report.confidentiality_on_edge):>10s} "
              f"{report.goodput_ratio:8.3f}")
    print("=> S3 (CANAL) gives CAN endpoints the end-to-end properties of S2a")


def step4_ids() -> None:
    print("\n--- 4. IDS catches the injection crypto can't see ---")
    freq = FrequencyIds(min_training=10)
    for i in range(30):
        freq.train(0x0A0, i * 0.01)  # the engine ECU's genuine 100 Hz cadence
    freq.monitor(0x0A0, 0.300)
    alert = freq.monitor(0x0A0, 0.3001)  # injected frame lands 100x early
    print(f"frequency IDS: {alert.reason if alert else 'no alert'}")

    easi = SenderFingerprintIds(seed_label="example")
    easi.register_node("engine-ecu", 1.0)
    easi.register_node("compromised-ecu", 2.5)
    easi.register_id(0x0A0, "engine-ecu")
    alert = easi.observe(0x0A0, "compromised-ecu", 0.31)
    print(f"fingerprint IDS: {alert.reason if alert else 'no alert'}")


def step5_surface() -> None:
    print("\n--- 5. architecture-level effect of deploying the protocols ---")
    arch = ZonalArchitecture.figure3()
    before = attack_surface(arch.system_model())
    after = attack_surface(arch.system_model(secured_links=True))
    print(f"components reachable from telematics: {before.reachable_components} "
          f"-> {after.reachable_components}")
    print(f"safety-critical ECUs reachable      : {before.reachable_critical} "
          f"-> {after.reachable_critical}")


def step6_lint() -> None:
    print("\n--- 6. static analysis signs off on the hardened config ---")
    from repro.lint import Linter, build_scenario

    linter = Linter()
    insecure = linter.run(build_scenario("onboard-insecure"))
    hardened = linter.run(build_scenario("onboard-hardened"))
    print(f"before hardening: {len(insecure.findings)} lint findings "
          f"({len(insecure.finding_rule_ids())} distinct rules)")
    print(f"after hardening : {len(hardened.findings)} lint findings")
    assert not hardened.findings, hardened.to_table()
    print("=> `python -m repro lint onboard-hardened` exits 0: the gate for "
          "future changes")


def main() -> None:
    print("in-vehicle network security walkthrough (paper §III)")
    step1_masquerade()
    step2_secoc_stops_it()
    step3_scenarios()
    step4_ids()
    step5_surface()
    step6_lint()


if __name__ == "__main__":
    main()
