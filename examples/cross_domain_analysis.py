#!/usr/bin/env python3
"""Example: the framework beyond road vehicles (paper §I).

"Autonomous functionality is emerging in many other domains, from
passenger trains and UAVs to production systems and robots in Industry
4.0 ... all such challenges equally exist in other application domains."

Runs the same layered security analysis over four domain profiles —
automotive, rail, UAV, Industry 4.0 — and prints a comparable
attack-surface and hardening table for each, demonstrating that the
framework (and the tooling) is domain-agnostic.

    python examples/cross_domain_analysis.py
"""

from repro.core.domains import DOMAIN_PROFILES, build_domain_model
from repro.core.layers import LAYER_INFO
from repro.core.metrics import attack_surface, criticality_weighted_exposure


def main() -> None:
    print("cross-domain layered security analysis (paper §I)")
    print(f"\n{'domain':12s} {'components':>10s} {'entry pts':>9s} "
          f"{'reachable':>9s} {'critical!':>9s} {'exposure':>9s} "
          f"{'-> secured':>10s}")
    for name, profile in DOMAIN_PROFILES.items():
        model = build_domain_model(profile)
        report = attack_surface(model)
        exposure = criticality_weighted_exposure(model)
        hardened = attack_surface(build_domain_model(profile, secured=True))
        print(f"{name:12s} {len(model.components()):10d} "
              f"{report.entry_points:9d} {report.reachable_components:9d} "
              f"{report.reachable_critical:9d} {exposure:9.0f} "
              f"{hardened.reachable_components:10d}")

    print("\nper-domain layer instantiation:")
    for name, profile in DOMAIN_PROFILES.items():
        print(f"\n  {name}:")
        by_layer: dict = {}
        for component in profile.components:
            by_layer.setdefault(component.layer, []).append(component.name)
        for layer, names in sorted(by_layer.items()):
            print(f"    {LAYER_INFO[layer].title:30s} {', '.join(names)}")

    print("\n=> the same analyzer, metrics, and hardening counterfactual run")
    print("   unchanged on every domain — the paper's generality claim.")


if __name__ == "__main__":
    main()
