#!/usr/bin/env python3
"""Example: defending collaborative perception (paper §VII).

Demonstrates the section's escalation of adversaries and defenses:

1. honest fusion improves coverage (the [47] motivation);
2. an external injector is stopped by channel authentication;
3. a credentialed insider defeats authentication — and is then caught by
   redundancy cross-validation and trust scoring ([48], §VII-B);
4. the hard case: no redundancy at the contested spot;
5. the §VII-A competition game: selfish policies win until regulated.

    python examples/collaborative_perception_defense.py
"""

from repro.collab import (
    CollabVehicle,
    ExternalInjector,
    InternalFabricator,
    IntersectionSim,
    PerceptionWorld,
    SecureCollabFusion,
    WorldObject,
)


def build_world() -> PerceptionWorld:
    objects = [WorldObject(1, 10.0, 10.0), WorldObject(2, 40.0, -15.0),
               WorldObject(3, 70.0, 5.0)]
    vehicles = [CollabVehicle(f"car-{i}", x=i * 18.0, y=0.0) for i in range(5)]
    return PerceptionWorld(objects, vehicles)


def step1_honest() -> None:
    print("\n--- 1. honest collaborative perception ---")
    world = build_world()
    solo = world.vehicles[0].sense(world.objects)
    fusion = SecureCollabFusion(world)
    report = fusion.fuse(world.collect_shares())
    print(f"  car-0 alone sees {len(solo)} of {len(world.objects)} objects "
          f"(range limit); the fleet confirms {len(report.confirmed)}")


def step2_external() -> None:
    print("\n--- 2. external injector vs the secure channel ---")
    world = build_world()
    fusion = SecureCollabFusion(world)
    attacker = ExternalInjector(n_ghosts=4)
    report = fusion.fuse(world.collect_shares() + attacker.forge_shares())
    print(f"  {report.dropped_unauthenticated} forged shares dropped at "
          f"authentication; ghosts accepted: {report.ghosts_accepted}")


def step3_insider() -> None:
    print("\n--- 3. credentialed insider vs redundancy cross-validation ---")
    world = build_world()
    fusion = SecureCollabFusion(world)
    insider = InternalFabricator(world.vehicles[0],
                                 ghost_positions=((30.0, 30.0),))
    reports = fusion.run_rounds(8, lambda objs: insider.malicious_shares(objs))
    ghosts = sum(r.ghosts_accepted for r in reports)
    flagged = sum(r.flagged_shares for r in reports)
    print(f"  8 rounds of fabrication: ghosts accepted {ghosts}, "
          f"shares flagged {flagged}")
    print(f"  attacker trust after: {fusion.trust.score('car-0'):.2f} "
          f"(excluded below {fusion.config.trust_threshold})")


def step4_no_redundancy() -> None:
    print("\n--- 4. the hard case: no redundant witness ---")
    objects = [WorldObject(1, 0.0, 0.0)]
    vehicles = [CollabVehicle("honest", 0.0, 0.0, sensing_range_m=30.0),
                CollabVehicle("insider", 200.0, 0.0, sensing_range_m=30.0)]
    world = PerceptionWorld(objects, vehicles)
    fusion = SecureCollabFusion(world)
    insider = InternalFabricator(vehicles[1], ghost_positions=((210.0, 0.0),))
    report = fusion.run_rounds(1, lambda objs: insider.malicious_shares(objs))[0]
    print(f"  ghost 210 m away, only the insider covers that area: "
          f"ghosts accepted = {report.ghosts_accepted}")
    print("  => exactly the paper's caveat: 'such redundancy may not always "
          "be available'")


def step5_competition() -> None:
    print("\n--- 5. §VII-A: the optimization battle at an intersection ---")
    sim = IntersectionSim(seed_label="example")
    arrivals = sim.generate_arrivals(100, policy_mix={"cooperative": 0.5,
                                                      "selfish": 0.5})
    free = sim.run(arrivals)
    ruled = IntersectionSim(regulated=True, seed_label="example").run(arrivals)
    print(f"  unregulated: selfish wait {free.waits_by_policy['selfish']:.1f} vs "
          f"cooperative {free.waits_by_policy['cooperative']:.1f} "
          f"({free.preemptions} preemptions)")
    print(f"  regulated  : selfish wait {ruled.waits_by_policy['selfish']:.1f} vs "
          f"cooperative {ruled.waits_by_policy['cooperative']:.1f} "
          f"({ruled.preemptions} preemptions)")


def main() -> None:
    print("collaborative perception defense walkthrough (paper §VII)")
    step1_honest()
    step2_external()
    step3_insider()
    step4_no_redundancy()
    step5_competition()


if __name__ == "__main__":
    main()
