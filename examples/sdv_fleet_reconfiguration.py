#!/usr/bin/env python3
"""Example: SDV fleet reconfiguration with SSI trust (paper §IV, Fig. 7).

Plays the fleet operator's day: an ADAS control unit fails mid-service
and its software must move to another platform. The walkthrough covers
the zero-trust placement check, the failover flow, evidence-chain
creation for the incident, and the revocation of a bad software release.

    python examples/sdv_fleet_reconfiguration.py
"""

from repro.ssi import (
    HW_CREDENTIAL,
    SW_CREDENTIAL,
    DocumentStore,
    ReconfigurationController,
    SignedDocument,
    TrustPolicy,
    VerifiableDataRegistry,
    Wallet,
)

NOW = 1_750_000_000.0


def build_fleet():
    registry = VerifiableDataRegistry()
    policy = TrustPolicy(registry)
    hw_vendor = Wallet.create("tier1-hw", registry)
    sw_vendor = Wallet.create("adas-sw-vendor", registry)
    policy.add_anchor(HW_CREDENTIAL, str(hw_vendor.did))
    policy.add_anchor(SW_CREDENTIAL, str(sw_vendor.did))

    platforms = []
    for name, ptype in (("ecu-front", "adas-gen3"), ("ecu-rear", "adas-gen3"),
                        ("ecu-infotainment", "infotainment-gen1")):
        wallet = Wallet.create(name, registry)
        wallet.store(hw_vendor.issue(
            credential_type=HW_CREDENTIAL, subject=wallet.did,
            claims={"platformType": ptype}, issued_at=NOW))
        platforms.append(wallet)

    software = Wallet.create("lane-keeping-v3", registry)
    software.store(sw_vendor.issue(
        credential_type=SW_CREDENTIAL, subject=software.did,
        claims={"approvedPlatforms": ["adas-gen3"]}, issued_at=NOW))
    return registry, policy, sw_vendor, platforms, software


def main() -> None:
    print("SDV fleet reconfiguration (paper §IV, Fig. 7)")
    registry, policy, sw_vendor, platforms, software = build_fleet()
    front, rear, infotainment = platforms
    controller = ReconfigurationController(policy)

    print("\n--- 1. initial placement ---")
    decision = controller.authorize_placement(software, front, now=NOW + 10)
    print(f"  lane-keeping-v3 -> ecu-front: authorized={decision.authorized} "
          f"({decision.verification_steps} verification steps)")

    print("\n--- 2. ecu-front fails; failover across candidates ---")
    decision = controller.failover(software, [infotainment, rear], now=NOW + 100)
    print(f"  tried infotainment first: placement landed on "
          f"{decision.hardware} (authorized={decision.authorized})")
    for entry in controller.audit_log[-2:]:
        print(f"    audit: {entry.hardware:28s} {entry.reason}")

    print("\n--- 3. signed evidence chain for the incident (§IV-B) ---")
    store = DocumentStore(registry)
    failure_log = SignedDocument.create(
        author_did=str(front.did), author_key=front.keypair,
        doc_type="failure-log", content={"component": "ecu-front", "code": "E42"})
    log_hash = store.add(failure_log)
    incident = SignedDocument.create(
        author_did=str(rear.did), author_key=rear.keypair,
        doc_type="reconfiguration-report",
        content={"moved": "lane-keeping-v3", "to": "ecu-rear"},
        links=[log_hash])
    incident_hash = store.add(incident)
    print(f"  evidence chain verifies end-to-end: {store.verify_chain(incident_hash)}")

    print("\n--- 4. the release turns out bad: revoke it ---")
    release = software.find(SW_CREDENTIAL)[0]
    registry.revoke_credential(release.credential_id, release.issuer)
    decision = controller.authorize_placement(software, rear, now=NOW + 200)
    print(f"  re-authorization after revocation: authorized={decision.authorized} "
          f"({decision.reason})")

    print("\n--- 5. vendor ships a fixed release; service resumes ---")
    software.store(sw_vendor.issue(
        credential_type=SW_CREDENTIAL, subject=software.did,
        claims={"approvedPlatforms": ["adas-gen3"], "fixes": "E42"},
        issued_at=NOW + 300))
    decision = controller.authorize_placement(software, rear, now=NOW + 310)
    print(f"  placement with the new release: authorized={decision.authorized}")


if __name__ == "__main__":
    main()
