#!/usr/bin/env python3
"""Quickstart: a tour through every layer of the reproduction.

Runs one small experiment per layer of the paper's architecture (Fig. 1)
and prints the headline result, so you can see the whole library working
in under a minute:

    python examples/quickstart.py
"""

from repro.core import LayeredSecurityAnalyzer, default_catalog
from repro.datalayer import run_breach
from repro.ivn import run_all_scenarios
from repro.phy import PkesSystem, RelayAttack
from repro.sos import CascadeSimulator, build_maas_sos
from repro.ssi import (
    CHARGING_CONTRACT,
    SsiChargingFlow,
    TrustPolicy,
    VerifiableDataRegistry,
    Wallet,
)

NOW = 1_750_000_000.0


def main() -> None:
    print("=" * 72)
    print("autosec-repro quickstart — one experiment per layer")
    print("=" * 72)

    # Physical layer (§II): the PKES relay attack and its ToF fix.
    legacy = PkesSystem(policy="lf-rssi")
    secure = PkesSystem(policy="uwb-hrp")
    relay = RelayAttack(cable_length_m=30.0)
    print("\n[physical] PKES relay attack, key fob 50 m away:")
    print(f"  legacy LF/RSSI proximity : car stolen = {legacy.relay_attack_succeeds(50.0, relay)}")
    print(f"  UWB secure ranging       : car stolen = {secure.relay_attack_succeeds(50.0, relay)}")

    # Network layer (§III): the four protocol-stack scenarios.
    print("\n[network] securing ECU -> central computing (16-byte PDU):")
    for report in run_all_scenarios(b"\x42" * 16):
        print(f"  {report.name:30s} latency={report.latency_s * 1e6:7.1f} us  "
              f"ZC keys={report.keys_at_zc}  edge confidentiality={report.confidentiality_on_edge}")

    # Software & platform layer (§IV): SSI plug-and-charge.
    registry = VerifiableDataRegistry()
    policy = TrustPolicy(registry)
    flow = SsiChargingFlow(registry, policy)
    provider = Wallet.create("emsp", registry)
    vehicle = Wallet.create("ev", registry)
    policy.add_anchor(CHARGING_CONTRACT, str(provider.did))
    flow.subscribe(vehicle, provider, now=NOW)
    auth = flow.authorize(vehicle, now=NOW + 60)
    print(f"\n[software] SSI plug-and-charge: authorized={auth.authorized} "
          f"({flow.message_count()} protocol messages)")

    # Data layer (§V): the CARIAD kill chain.
    breach = run_breach(n_vehicles=20, days=10)
    print(f"\n[data] CARIAD kill chain: {breach.stages_completed}/{breach.total_stages} "
          f"stages, {breach.records_exfiltrated} records exfiltrated")
    fixed = run_breach(n_vehicles=20, days=10,
                       mitigations={"disable-debug-endpoints"})
    print(f"       with debug endpoints disabled: "
          f"{fixed.stages_completed}/{fixed.total_stages} stages, "
          f"{fixed.records_exfiltrated} records")

    # System-of-systems layer (§VI): breach cascade in the MaaS platform.
    sim = CascadeSimulator(build_maas_sos(), seed_label="quickstart")
    cascade = sim.run("cloud-backend", trials=200)
    print(f"\n[sos] breach cascade from the cloud backend: "
          f"mean blast radius {cascade.mean_blast_radius:.1f} systems, "
          f"P[safety-critical hit] = {cascade.p_safety_critical_hit:.0%}")

    # Cross-layer (§VIII): holistic coverage.
    analyzer = LayeredSecurityAnalyzer(default_catalog())
    none = analyzer.assess(set())
    full = analyzer.assess()
    print(f"\n[holistic] cataloged attacks: {len(none.residual_attacks)}; "
          f"residual with ALL of the paper's defenses: {len(full.residual_attacks)}")
    print("\ndone — see benchmarks/ for the full per-figure reproductions.")


if __name__ == "__main__":
    main()
