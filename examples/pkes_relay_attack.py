#!/usr/bin/env python3
"""Example: the PKES relay attack and UWB secure ranging (paper §II-A).

Walks the full physical-layer story at signal level:

1. a relay attack steals a car protected by legacy LF/RSSI proximity;
2. UWB two-way ToF ranging defeats the relay (delay only adds distance);
3. a ghost-peak attacker tries to *reduce* the measured distance against
   the HRP receiver — succeeding against naive correlation, failing
   against the [4]-style integrity check;
4. a distance-enlargement attacker hides an approaching vehicle, and the
   UWB-ED detector catches the imperfect annihilation.

    python examples/pkes_relay_attack.py
"""

from repro.phy import (
    Channel,
    EnlargementAttack,
    GhostPeakAttack,
    HrpRangingSession,
    HrpReceiver,
    PkesSystem,
    RelayAttack,
    UwbEdDetector,
)
from repro.phy.pulses import HRP_CONFIG, build_pulse_train

KEY = b"\x5a" * 16


def step1_relay_vs_legacy() -> None:
    print("\n--- 1. relay attack vs legacy PKES ---")
    system = PkesSystem(policy="lf-rssi")
    relay = RelayAttack(cable_length_m=30.0)
    attempt = system.try_unlock(50.0, relay=relay)
    print(f"fob truly at {attempt.true_fob_distance_m} m; the relayed LF field "
          f"makes it look {attempt.perceived_distance_m} m away")
    print(f"=> car unlocked: {attempt.unlocked}  (this is reference [1]'s attack)")


def step2_relay_vs_uwb() -> None:
    print("\n--- 2. the same relay vs UWB two-way ToF ranging ---")
    system = PkesSystem(policy="uwb-hrp")
    relay = RelayAttack(cable_length_m=30.0)
    attempt = system.try_unlock(50.0, relay=relay)
    print(f"time-of-flight through the relay measures {attempt.perceived_distance_m:.1f} m "
          f"(true 50 m + relay path) — a relay can only ADD distance")
    print(f"=> car unlocked: {attempt.unlocked}")


def step3_ghost_peak() -> None:
    print("\n--- 3. ghost-peak distance reduction vs the HRP receiver ---")
    for name, receiver in (
        ("naive cross-correlation", HrpReceiver(integrity_check=False, threshold_ratio=0.3)),
        ("with STS integrity check", HrpReceiver(integrity_check=True, threshold_ratio=0.3)),
    ):
        session = HrpRangingSession(KEY, receiver=receiver)
        wins = 0
        for i in range(5):
            channel = Channel(10.0, snr_db=15.0, seed_label=f"ex3-{i}")
            attack = GhostPeakAttack(advance_m=6.0, power=6.0, seed_label=f"ex3a-{i}")
            outcome = session.measure(
                channel, attacker_signal=attack.waveform(channel, HRP_CONFIG))
            if outcome.reduced and outcome.accepted:
                wins += 1
        print(f"{name:28s}: attacker reduced the distance in {wins}/5 rounds")


def step4_enlargement() -> None:
    print("\n--- 4. distance enlargement vs the UWB-ED detector ---")
    session = HrpRangingSession(KEY)
    detector = UwbEdDetector()
    sts = session.next_sts()
    tx = build_pulse_train(sts, HRP_CONFIG)
    channel = Channel(10.0, snr_db=15.0, seed_label="ex4")
    attack = EnlargementAttack(extra_delay_m=30.0, residual_gain=0.4)
    attacked = attack.apply(channel)
    rx = attacked.propagate(tx, HRP_CONFIG,
                            extra_signal=attack.waveform(channel, HRP_CONFIG, tx))
    estimate, _, _ = session.receiver.estimate(rx, sts)
    measured = estimate.toa_sample * HRP_CONFIG.metres_per_sample
    verdict = detector.inspect(rx, sts, estimate.toa_sample, HRP_CONFIG,
                               attacked.noise_sigma())
    print(f"true distance 10.0 m; receiver measured {measured:.1f} m "
          f"(a nearby car made to look far — the §II-B collision hazard)")
    print(f"UWB-ED early-region statistic {verdict.early_energy_ratio:.2f} "
          f"(threshold {verdict.threshold}) => attack detected: {verdict.attack_detected}")


def main() -> None:
    print("PKES & secure ranging walkthrough (paper §II)")
    step1_relay_vs_legacy()
    step2_relay_vs_uwb()
    step3_ghost_peak()
    step4_enlargement()


if __name__ == "__main__":
    main()
