#!/usr/bin/env python3
"""Example: static security-configuration analysis with `repro.lint` (§VIII).

The paper closes arguing that autonomous-system security must be
holistic: a misconfiguration at one layer silently undermines every
other layer's defenses.  The seclint rule catalog makes that argument a
tool — this walkthrough audits every shipped scenario, shows how the
intentionally-insecure setups light up across layers, how a suppression
baseline pins *expected* findings without hiding regressions, and that
the fully hardened §III deployment lints clean.

    python examples/seclint_audit.py
"""

from repro.lint import SCENARIOS, Baseline, Linter, Severity, build_scenario


def step1_audit_everything() -> None:
    print("\n--- 1. auditing every shipped scenario ---")
    linter = Linter()
    print(f"{'scenario':20s} {'findings':>8s} {'worst':>9s}  layers flagged")
    for name, (description, _) in SCENARIOS.items():
        report = linter.run(build_scenario(name))
        worst = report.worst_severity()
        layers = sorted({f.layer.name.lower() for f in report.findings})
        print(f"{name:20s} {len(report.findings):8d} "
              f"{(worst.name.lower() if worst else '-'):>9s}  "
              f"{', '.join(layers) or '-'}")
    print("=> misconfigurations at every layer are caught before any "
          "simulation runs")


def step2_cross_layer_story() -> None:
    print("\n--- 2. one insecure IVN, findings from four angles ---")
    report = Linter().run(build_scenario("onboard-insecure"))
    by_rule = {}
    for finding in report.findings:
        by_rule.setdefault(finding.rule_id, finding)
    for rule_id in sorted(by_rule):
        finding = by_rule[rule_id]
        print(f"  {rule_id} [{finding.severity.name.lower():8s}] "
              f"{finding.subject}: {finding.message[:60]}")
    print(f"=> {len(by_rule)} distinct rules fire on a single unprotected "
          f"zonal network")


def step3_baseline() -> None:
    print("\n--- 3. baselining an intentionally-insecure scenario ---")
    linter = Linter()
    first = linter.run(build_scenario("pkes-legacy"))
    baseline = Baseline.from_report(
        first, comment="intentional: the §II-A relay-attack victim")
    again = linter.run(build_scenario("pkes-legacy"), baseline=baseline)
    print(f"  without baseline: {len(first.findings)} findings "
          f"(exit {first.exit_code(Severity.LOW)})")
    print(f"  with baseline   : {len(again.findings)} findings, "
          f"{len(again.suppressed)} suppressed "
          f"(exit {again.exit_code(Severity.LOW)})")
    print("=> expected findings are pinned, new regressions still fail the "
          "gate")


def step4_hardened_gate() -> None:
    print("\n--- 4. the hardened deployment is the regression gate ---")
    report = Linter().run(build_scenario("onboard-hardened"))
    print(f"  {report.to_table()}")
    print("=> S1-S3 + SSI fully deployed: every one of the catalog's rules "
          "is satisfied")


def main() -> None:
    print("static security-configuration analysis walkthrough (paper §VIII)")
    step1_audit_everything()
    step2_cross_layer_story()
    step3_baseline()
    step4_hardened_gate()


if __name__ == "__main__":
    main()
