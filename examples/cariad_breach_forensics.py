#!/usr/bin/env python3
"""Example: forensic replay of the CARIAD telemetry breach (paper §V).

Reproduces the Fig. 8 kill chain against the modeled backend, quantifies
the privacy damage of the leaked geolocation data, and then answers the
defender's question: which single fix would have stopped it, and what is
the minimal feature surface that keeps the service alive but the chain
dead (§V-C).

    python examples/cariad_breach_forensics.py
"""

from repro.datalayer import (
    MITIGATIONS,
    FeatureSurfaceAnalyzer,
    FleetTelemetryGenerator,
    build_cariad_service,
    reidentification_rate,
    run_breach,
)

N_VEHICLES = 40
DAYS = 30


def step1_replay() -> None:
    print("\n--- 1. replaying the kill chain ---")
    report = run_breach(n_vehicles=N_VEHICLES, days=DAYS)
    for i, result in enumerate(report.stage_results, 1):
        marker = "OK " if result.succeeded else "FAIL"
        print(f"  stage {i} [{marker}] {result.stage:24s} {result.detail}")
    print(f"=> {report.records_exfiltrated} telemetry records for "
          f"{report.distinct_vehicles_exposed} vehicles exfiltrated "
          f"({report.sensitive_vehicles_exposed} flagged sensitive)")


def step2_privacy() -> None:
    print("\n--- 2. what the geolocation data gives away ---")
    fleet = FleetTelemetryGenerator(N_VEHICLES, seed_label="cariad")
    records = fleet.generate(days=DAYS)
    anonymized = [r.anonymized() for r in records]
    rate = reidentification_rate(anonymized, fleet.vehicles)
    print(f"  re-identification of PII-stripped traces via home inference: {rate:.0%}")
    coarse = reidentification_rate([r.coarsened(1) for r in anonymized],
                                   fleet.vehicles, cell_decimals=1)
    print(f"  after coarsening locations to ~11 km cells              : {coarse:.0%}")
    print("=> stripping names does not anonymize movement data")


def step3_mitigations() -> None:
    print("\n--- 3. which single fix stops the chain? ---")
    for mitigation, description in sorted(MITIGATIONS.items()):
        report = run_breach(n_vehicles=10, days=5, mitigations={mitigation})
        print(f"  {mitigation:28s} chain depth {report.stages_completed}/"
              f"{report.total_stages}  ({description})")
    print("=> every single mitigation kills the chain at a different stage")


def step4_minimal_surface() -> None:
    print("\n--- 4. §V-C: the minimal-surface answer ---")
    service, _ = build_cariad_service(n_vehicles=5, days=2)
    analyzer = FeatureSurfaceAnalyzer(service)
    full = analyzer.analyze(set(analyzer.all_features))
    minimal = analyzer.minimal_safe_surface({"core"})
    print(f"  full feature set : {full.exposed_endpoints} endpoints, "
          f"kill chain viable = {full.kill_chain_viable}")
    print(f"  minimal safe set {set(minimal.features)}: "
          f"{minimal.exposed_endpoints} endpoints, "
          f"kill chain viable = {minimal.kill_chain_viable}")
    print("=> removing the debug feature (not adding defenses) ends the attack")


def main() -> None:
    print("CARIAD breach forensics (paper §V, Fig. 8)")
    step1_replay()
    step2_privacy()
    step3_mitigations()
    step4_minimal_surface()


if __name__ == "__main__":
    main()
