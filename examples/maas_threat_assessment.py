#!/usr/bin/env python3
"""Example: threat assessment of an AD MaaS deployment (paper §VI, Fig. 9).

Plays the security architect for the ride-hailing platform: builds the
Fig. 9 system of systems, enumerates STRIDE threats per level, simulates
breach cascades from every entry point, audits stakeholder
responsibility, and evaluates the "unified security framework"
counterfactual.

    python examples/maas_threat_assessment.py
"""

from collections import Counter

from repro.sos import (
    CascadeSimulator,
    ResponsibilityMatrix,
    build_maas_sos,
    enumerate_threats,
    threats_by_level,
)


def step1_architecture() -> None:
    print("\n--- 1. the system of systems (Fig. 9) ---")
    model = build_maas_sos()
    for level in range(4):
        systems = model.systems(level=level)
        names = ", ".join(s.name for s in systems)
        print(f"  level {level}: {names}")
    print(f"  stakeholders: {sorted(model.stakeholders())}")
    print(f"  external entry points: {[s.name for s in model.entry_points()]}")


def step2_stride() -> None:
    print("\n--- 2. STRIDE enumeration ---")
    model = build_maas_sos()
    threats = enumerate_threats(model)
    by_category = Counter(t.category.value for t in threats)
    print(f"  total threats across {len(model.interfaces)} interfaces: {len(threats)}")
    for category, count in by_category.most_common():
        print(f"    {category:24s} {count}")
    by_level = threats_by_level(model)
    print(f"  per level: {by_level}")


def step3_cascades() -> None:
    print("\n--- 3. breach cascades (§VI-B) ---")
    for label, secured in (("as deployed", False), ("unified security framework", True)):
        model = build_maas_sos(secured_interfaces=secured)
        sim = CascadeSimulator(model, seed_label="maas-example")
        print(f"  {label}:")
        for result in sim.sweep_origins(trials=300):
            print(f"    from {result.origin:18s} mean blast radius "
                  f"{result.mean_blast_radius:5.1f}/{len(model.systems())} systems, "
                  f"P[safety-critical] {result.p_safety_critical_hit:.0%}")


def step4_responsibility() -> None:
    print("\n--- 4. responsibility audit (§VI 'ambiguous roles') ---")
    model = build_maas_sos()
    matrix = ResponsibilityMatrix(model)
    matrix.assign_by_operator()
    seams = matrix.seam_gaps()
    print(f"  obligation coverage with per-operator ownership: "
          f"{matrix.coverage_fraction():.0%}")
    print(f"  cross-stakeholder incident-response seams: {len(seams)}")
    for gap in seams:
        print(f"    {gap.system}: {gap.detail}")
    for system in model.root.walk():
        matrix.assign(system.name, "incident-response", "central-csirt")
    print(f"  after appointing a central CSIRT: {len(matrix.seam_gaps())} seams")


def main() -> None:
    print("AD MaaS threat assessment (paper §VI, Fig. 9)")
    step1_architecture()
    step2_stride()
    step3_cascades()
    step4_responsibility()


if __name__ == "__main__":
    main()
