#!/usr/bin/env python3
"""Example: a full-stack attack story, red team vs blue team (paper §VIII).

The paper's closing demand is a security posture that is "holistic and
multi-layered ... able to detect attacks at their earliest stages and
respond effectively across the multiple levels".  This walkthrough plays
one incident across four layers of the reproduction:

1. [data]     the attacker breaches the telemetry backend (Fig. 8 chain);
2. [sos]      from that foothold, how far could the breach cascade?
3. [network]  the attacker pivots into the vehicle and injects CAN
              frames; the IDS detects and the response engine isolates;
4. [holistic] the cross-layer assessment: which defenses mattered;
5. [timeline] the incident replayed as one `repro.obs` cross-layer
              timeline — kill-chain steps, masquerade alert, and the
              response action merged onto a single clock;
6. [static]   the epilogue: `repro.flow` proves — without running
              anything — that the deployed configuration admitted the
              incident's path, and names the minimal set of edges whose
              hardening would have cut it;
7. [chaos]    the drill: the same incident weather, injected as a
              deterministic fault campaign (`repro.faults`) against the
              insecure and hardened postures — one collapses to
              safe-stop, the other degrades, rides it out, and recovers;
8. [red team] the planner: `repro.redteam` reconstructs the whole
              campaign from the attacker's side — cheapest ranked
              multi-stage plan per target, the defense that breaks each
              hop, and the differential gate proving the three static
              analyzers (lint, flow, redteam) agree.

    python examples/full_stack_attack_story.py
"""

from repro.core import (
    LayeredSecurityAnalyzer,
    Layer,
    ResponseEngine,
    SecurityAlert,
    Severity,
    default_catalog,
)
from repro.core.attackgraph import AttackGraph
from repro.datalayer import run_breach
from repro.flow import analyze
from repro.lint.scenarios import build_scenario
from repro.ivn import FrequencyIds, SenderFingerprintIds
from repro.ivn.streams import run_dos_response_experiment
from repro.obs import Timeline, instrumented
from repro.sos import CascadeSimulator, build_maas_sos


def act1_the_breach() -> None:
    print("\n--- act 1 [data layer]: the backend falls (Fig. 8) ---")
    report = run_breach(n_vehicles=25, days=14)
    for i, stage in enumerate(report.stage_results, 1):
        print(f"  {i}. {stage.stage:24s} {'OK' if stage.succeeded else 'FAIL'}")
    print(f"  => {report.records_exfiltrated} records exfiltrated; the "
          f"attacker now holds backend credentials")


def act2_the_stakes() -> None:
    print("\n--- act 2 [system of systems]: what is now at stake (Fig. 9) ---")
    model = build_maas_sos()
    cascade = CascadeSimulator(model, seed_label="story").run(
        "cloud-backend", trials=300)
    print(f"  cascade from the breached backend: mean blast radius "
          f"{cascade.mean_blast_radius:.1f}/{len(model.systems())} systems")
    print(f"  P[safety-critical subsystem hit] = {cascade.p_safety_critical_hit:.0%}")
    graph = AttackGraph(model.to_system_model())
    path = graph.most_likely_path("safety-functions", source="cloud-backend")
    if path:
        print(f"  most likely path to the brakes: {' -> '.join(path.nodes)} "
              f"(p={path.probability:.2f})")


def act3_the_pivot() -> None:
    print("\n--- act 3 [network layer]: the pivot into the vehicle ---")
    # The attacker reaches a zone and floods / masquerades; the blue
    # team's IDS + response engine close the loop.
    report = run_dos_response_experiment(duration_s=1.0)
    print(f"  flood begins at t=300 ms; detection at "
          f"t={report.detection_time_s * 1e3:.0f} ms, isolation at "
          f"t={report.isolation_time_s * 1e3:.0f} ms")
    print(f"  deadline misses: {report.miss_rate_attack_no_response:.0%} "
          f"without response -> {report.miss_rate_attack_with_response:.0%} with")

    easi = SenderFingerprintIds(seed_label="story")
    easi.register_node("brake-ecu", 1.0)
    easi.register_node("compromised-tcu", 2.8)
    easi.register_id(0x0A0, "brake-ecu")
    alert = easi.observe(0x0A0, "compromised-tcu", 0.5)
    print(f"  masquerade attempt on the brake id: "
          f"{'flagged — ' + alert.reason if alert else 'missed'}")

    engine = ResponseEngine(critical_components={"brake-ecu"})
    decision = engine.handle(SecurityAlert(0.5, Layer.NETWORK,
                                           "compromised-tcu", "can-masquerade",
                                           Severity.CRITICAL))
    print(f"  response engine: {decision.action.name} on the offending unit")


def act4_the_postmortem() -> None:
    print("\n--- act 4 [holistic]: the postmortem (§VIII) ---")
    catalog = default_catalog()
    analyzer = LayeredSecurityAnalyzer(catalog)
    network_only = {d.name for d in catalog.defenses_on_layer(Layer.NETWORK)}
    partial = analyzer.assess(network_only)
    full = analyzer.assess()
    print(f"  with network-layer defenses only: "
          f"{len(partial.residual_attacks)} of {len(catalog.attacks)} attacks "
          f"remain (weakest layer: {partial.weakest_layer.name})")
    print(f"  with every layer defended        : "
          f"{len(full.residual_attacks)} attacks remain")
    print("  => the incident crossed data, SoS, and network layers; only the")
    print("     multi-layer posture the paper argues for covers all of it.")


def act5_the_timeline() -> None:
    print("\n--- act 5 [observability]: the incident on one clock ---")
    # Replay the attacker's acts with the repro.obs instrumentation on,
    # capturing each act's event stream separately, then merge them onto
    # one reference clock: the kill chain ran first, the in-vehicle
    # pivot started 2 s into the incident.
    with instrumented() as obs:
        run_breach(n_vehicles=25, days=14)
        breach_events = list(obs.events)
    with instrumented() as obs:
        engine = ResponseEngine(critical_components={"brake-ecu"})
        engine.handle(SecurityAlert(0.5, Layer.NETWORK, "compromised-tcu",
                                    "can-masquerade", Severity.CRITICAL))
        pivot_events = list(obs.events)

    timeline = Timeline()
    timeline.add(breach_events)                 # data layer, t=0 base
    timeline.add(pivot_events, offset_s=2.0)    # pivot started 2 s in
    print(timeline.render(limit=12))
    layers = ", ".join(sorted(layer.name.lower() for layer in timeline.layers()))
    print(f"  => one incident, {len(timeline.merged())} events across "
          f"layers [{layers}] — the cross-layer narrative §VIII demands")


def act6_the_foresight() -> None:
    print("\n--- act 6 [static analysis]: could it have been predicted? ---")
    # Every act above *ran* the incident.  The flow analyzer executes
    # nothing: it compiles the deployed configuration into one
    # cross-layer flow graph, taints the untrusted entry points, and
    # proves whether taint can reach a safety-critical sink — the same
    # paths the red team just walked, found before deployment.
    result = analyze(build_scenario("cariad-breach"))
    print(f"  cariad-breach: {len(result.witnesses)} unprotected "
          f"source->sink path(s) proved statically")
    witness = result.witnesses[0]
    for i, line in enumerate(witness.describe(), 1):
        print(f"    [{i}] {line}")
    cut = sorted(result.cuts.get(witness.sink, set()))
    edges = ", ".join(f"{src}->{dst}" for src, dst in cut)
    print(f"  minimal hardening cut: secure {len(cut)} edge(s): {edges}")

    hardened = analyze(build_scenario("onboard-hardened"))
    print(f"  onboard-hardened: {'PATH-CLEAN' if hardened.path_clean else 'paths remain'}"
          f" — the S1-S3 + SSI posture closes every such path before it exists")


def act7_the_drill() -> None:
    print("\n--- act 7 [chaos]: the drill — would we survive it again? ---")
    # The postmortem's last question is prospective: inject the same
    # weather (babbling ECU, backend outage, registry downtime, ...) as
    # a seeded fault campaign and watch the degradation ladder.  Same
    # base seed => byte-identical report — the drill is reproducible.
    from repro.faults import get_plan, run_chaos_scenario

    plan = get_plan("baseline")
    for name in ("onboard-insecure", "onboard-hardened"):
        result = run_chaos_scenario(name, plan, base_seed=0)
        degradation = result["degradation"]
        recover = degradation["timeToRecoverS"]
        print(f"  {name:17s} min level {degradation['minLevel']:12s} "
              f"final {degradation['finalLevel']:8s} "
              f"{'recovered at t=' + format(recover, 'g') + ' s' if recover is not None else 'never recovered'}")
        retry = result["retry"]
        if result["resilient"]:
            print(f"  {'':17s} absorbed by resilience: {retry['recovered']} "
                  f"retried calls recovered, breaker opened "
                  f"{result['breakers'][0]['opens']}x, "
                  f"{result['ssi']['staleHits']} stale-cache DID resolutions")
    print("  => identical faults; only the posture differs — fail-operational")
    print("     is machinery, not luck (§VIII).")


def act8_the_playbook() -> None:
    print("\n--- act 8 [red team]: the attacker's playbook, precomputed ---")
    # The flow epilogue proved the paths existed; the campaign planner
    # goes one step further and plays the attacker: from the typed
    # attack library it searches capability states for the cheapest
    # multi-stage campaign against every safety-critical sink, naming
    # the defense that would have broken each hop.
    from repro.redteam import differential_violations, plan_scenario, render_campaigns

    result = plan_scenario("cariad-breach")
    print(f"  cariad-breach: {len(result.campaigns)} ranked campaign(s) "
          f"over {len(result.library)} library attacks")
    for line in render_campaigns(result, top=1).splitlines():
        print(f"  {line}")

    hardened = plan_scenario("onboard-hardened")
    print(f"  onboard-hardened: {len(hardened.library)} attacks in the "
          f"library, {len(hardened.campaigns)} viable campaign(s) — "
          f"{'DEFEATED' if hardened.defeated else 'exposed'}")

    # The differential gate: the planner's campaigns, the flow
    # analyzer's witnesses, and the lint findings must tell one story.
    disagreements = [v for name in ("cariad-breach", "onboard-hardened")
                     for v in differential_violations(build_scenario(name))]
    print(f"  differential gate: {len(disagreements)} analyzer "
          f"disagreement(s) — lint, flow, and redteam agree")


def act9_the_watchtower() -> None:
    print("\n--- act 9 [sentinel]: the watchtower — seeing it live ---")
    # Acts 6-8 analyzed the incident offline.  The sentinel closes the
    # loop *online*: it subscribes to the live event stream, scores
    # per-source trust tick by tick, and must raise its first ALARM
    # before the vehicle's own SAFE_STOP — detection with lead time,
    # not a forensic shrug after the crash.
    from repro.faults import get_plan
    from repro.sentinel import run_sentinel_scenario

    for name, plan in (("onboard-insecure", "severe"),
                       ("onboard-hardened", "baseline")):
        result = run_sentinel_scenario(name, get_plan(plan), base_seed=0)
        detection = result["detection"]
        first = detection["firstAlarmT"]
        if detection["alarmRaised"]:
            print(f"  {name:17s} first ALARM t={first:g}, safe stop "
                  f"t={detection['safeStopT']:g} — detected "
                  f"{detection['leadTicks']:g} tick(s) ahead; trust "
                  f"collapsed: {', '.join(detection['trustCollapsed'])}")
        else:
            print(f"  {name:17s} zero ALARM incidents under everyday "
                  f"faults; isolated {', '.join(result['response']['isolated'])} "
                  f"on trust collapse and recovered to "
                  f"{result['degradation']['finalLevel'].upper()}")
    print("  => the same engine is silent on the hardened stack and loud")
    print("     before the insecure one stops — the twin CI gates (§VIII).")


def main() -> None:
    print("full-stack attack story (red team vs blue team, paper §VIII)")
    act1_the_breach()
    act2_the_stakes()
    act3_the_pivot()
    act4_the_postmortem()
    act5_the_timeline()
    act6_the_foresight()
    act7_the_drill()
    act8_the_playbook()
    act9_the_watchtower()


if __name__ == "__main__":
    main()
