"""EXP-C1 — competing collaborative systems (paper §VII-A).

Regenerates the section's argument as a table: intersection throughput,
per-policy mean wait, preemption count, and deadlock occurrence across
policy mixes — with and without the common-directive regulation the
paper says is required.
"""

from repro.collab.intersection import Arrival, IntersectionSim

N_VEHICLES = 120


def _run(policy_mix, *, regulated, label):
    sim = IntersectionSim(regulated=regulated, seed_label=label)
    arrivals = sim.generate_arrivals(N_VEHICLES, policy_mix=policy_mix)
    return sim.run(arrivals)


def test_expc1_policy_mixes(benchmark, show):
    mixes = {
        "all cooperative": {"cooperative": 1.0},
        "50% selfish": {"cooperative": 0.5, "selfish": 0.5},
        "90% selfish": {"cooperative": 0.1, "selfish": 0.9},
    }
    rows = []
    for name, mix in mixes.items():
        free = _run(mix, regulated=False, label="c1")
        ruled = _run(mix, regulated=True, label="c1")
        coop_free = free.waits_by_policy.get("cooperative", 0.0)
        selfish_free = free.waits_by_policy.get("selfish", 0.0)
        coop_ruled = ruled.waits_by_policy.get("cooperative", 0.0)
        selfish_ruled = ruled.waits_by_policy.get("selfish", 0.0)
        rows.append((name, free.preemptions,
                     f"{selfish_free:.1f}/{coop_free:.1f}",
                     ruled.preemptions,
                     f"{selfish_ruled:.1f}/{coop_ruled:.1f}"))

    benchmark(_run, {"cooperative": 0.5, "selfish": 0.5},
              regulated=False, label="c1")
    show("§VII-A — intersection competition: selfish/cooperative mean wait "
         "(unregulated vs common directive)",
         rows, header=("mix", "preempt", "wait s/c", "preempt (reg)",
                       "wait s/c (reg)"))

    mixed_free = _run(mixes["50% selfish"], regulated=False, label="c1")
    assert mixed_free.waits_by_policy["selfish"] < mixed_free.waits_by_policy["cooperative"]
    mixed_ruled = _run(mixes["50% selfish"], regulated=True, label="c1")
    assert mixed_ruled.preemptions == 0


def test_expc1_deadlock(benchmark, show):
    def deadlock_run(regulated):
        sim = IntersectionSim(regulated=regulated, seed_label="c1d")
        arrivals = [Arrival(0, approach, "deadlock-prone") for approach in range(4)]
        return sim.run(arrivals, max_steps=100)

    free = benchmark(deadlock_run, False)
    ruled = deadlock_run(True)
    rows = [
        ("unregulated (four over-polite vehicles)", free.crossed, free.deadlock_steps),
        ("with common directive", ruled.crossed, ruled.deadlock_steps),
    ]
    show("§VII-A — the stuck-intersection deadlock", rows,
         header=("setting", "crossed", "deadlocked steps"))
    assert free.deadlocked and not ruled.deadlocked
