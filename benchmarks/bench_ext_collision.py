"""EXT-6 — collision-avoidance sensing under spoofing (paper §II-B).

Extension experiment for the §II-B discussion: false-obstacle and
obstacle-removal attacks against the sensor suite, swept over fusion
policies — single sensor, quorum fusion, and quorum + secure-ranging
corroboration (the [12]/[13] recommendation).
"""

from repro.phy.collision import (
    FusionPipeline,
    GhostObjectAttack,
    ObjectRemovalAttack,
    SensorKind,
)

SCENE = [12.0, 45.0]  # a near obstacle (braking-relevant) and a far one

GHOST_ALL = [
    GhostObjectAttack(SensorKind.LIDAR, 8.0),
    GhostObjectAttack(SensorKind.RADAR, 8.0),
    GhostObjectAttack(SensorKind.CAMERA, 8.0),
]
REMOVAL_LIDAR = [ObjectRemovalAttack(SensorKind.LIDAR, target_distance_m=12.0)]
REMOVAL_ALL = [
    ObjectRemovalAttack(kind, target_distance_m=12.0)
    for kind in (SensorKind.LIDAR, SensorKind.RADAR, SensorKind.CAMERA)
]


def _policy(name):
    if name == "single sensor":
        return FusionPipeline(quorum=1)
    if name == "quorum-2 fusion":
        return FusionPipeline(quorum=2)
    return FusionPipeline(quorum=2, require_secure_corroboration=True)


def test_ext6_spoofing_vs_fusion_policy(benchmark, show):
    policies = ("single sensor", "quorum-2 fusion", "quorum + secure ranging")
    rows = []
    for name in policies:
        ghost = _policy(name).perceive(SCENE, attacks=GHOST_ALL)
        removal_one = _policy(name).perceive(SCENE, attacks=REMOVAL_LIDAR)
        removal_all = _policy(name).perceive(SCENE, attacks=REMOVAL_ALL)
        rows.append((
            name,
            ghost.false_obstacles,
            removal_one.missed_obstacles,
            removal_all.missed_obstacles,
        ))
    benchmark(_policy("quorum + secure ranging").perceive, SCENE, attacks=GHOST_ALL)
    show("EXT-6 / §II-B — sensor spoofing vs fusion policy "
         "(false obstacles / misses, 3-sensor spoof scenarios)",
         rows, header=("policy", "ghost accepted", "miss (1 sensor jammed)",
                       "miss (all spoofable jammed)"))

    by_name = dict((r[0], r) for r in rows)
    # Multi-sensor spoofing beats plain quorum but not the secure
    # ranging cross-check ([12],[13]).
    assert by_name["quorum-2 fusion"][1] >= 1
    assert by_name["quorum + secure ranging"][1] == 0
    # Removal of all spoofable modalities: only the secure-ranging
    # policy still tracks the obstacle via the authenticated channel.
    assert by_name["quorum + secure ranging"][3] == 0
