"""ABL-2 — MAC truncation ablation (DESIGN.md §5.2).

The tension behind Table I and SECOC's profiles: every MAC bit spent on
the bus buys forgery resistance and costs goodput. Sweeps the truncated
MAC length and reports measured forgery hit rates (short MACs, where a
simulation can observe hits) against analytic probabilities, frame
counts on classic CAN, and bus-time cost.
"""

from repro.ivn.attacks import blind_forgery_attempts
from repro.ivn.frames import CanFrame
from repro.ivn.secoc import SecOcChannel, SecOcProfile

PAYLOAD = b"\x44" * 4
ATTEMPTS = 30_000


def _row(mac_bits: int):
    profile = SecOcProfile(f"mac{mac_bits}", freshness_bits=8, mac_bits=mac_bits)
    channel = SecOcChannel(b"\x05" * 16, profile)
    pdu = channel.secure(0x100, PAYLOAD)
    wire = pdu.wire_payload(profile)
    n_frames = (len(wire) + 7) // 8
    bus_bits = sum(
        CanFrame(0x100, wire[i : i + 8]).wire_bits()
        for i in range(0, len(wire), 8)
    )
    if mac_bits <= 16:
        hits = blind_forgery_attempts(profile, ATTEMPTS, seed_label=f"abl2-{mac_bits}")
        observed = f"{hits}/{ATTEMPTS}"
    else:
        observed = "0 (beyond sim budget)"
    return (mac_bits, f"2^-{mac_bits}", observed, n_frames, bus_bits,
            f"{8 * len(PAYLOAD) / bus_bits:.3f}")


def test_abl2_mac_truncation(benchmark, show):
    rows = benchmark(lambda: [_row(bits) for bits in (8, 16, 24, 32, 64, 128)])
    show("ABL-2 — SECOC MAC truncation: forgery resistance vs bus cost "
         "(4-byte signal on classic CAN)",
         rows, header=("MAC bits", "P[forge]", "observed forgeries",
                       "CAN frames", "bus bits", "goodput"))
    # Observed short-MAC hit rate must match theory within 3x.
    hits_8 = int(rows[0][2].split("/")[0])
    expected_8 = ATTEMPTS / 256
    assert 0.33 * expected_8 <= hits_8 <= 3.0 * expected_8
    # Bus cost must rise monotonically with MAC length.
    frames = [row[3] for row in rows]
    assert frames == sorted(frames)
