"""FIG2 — UWB ranging modes for PKES (paper Fig. 2).

Regenerates the figure's security content as measured series:

* HRP: ranging accuracy, ghost-peak distance-reduction success against
  the naive receiver vs the integrity-checked receiver ([4], [8]);
* LRP: distance-bounding early-reply success probability vs rounds,
  with and without pulse randomization ([5], [6]);
* PKES: relay-attack outcome per proximity policy ([1]).
"""

import pytest

from repro.phy.attacks import GhostPeakAttack, RelayAttack
from repro.phy.channel import Channel
from repro.phy.hrp import HrpRangingSession, HrpReceiver
from repro.phy.lrp import attack_success_probability
from repro.phy.pkes import PkesSystem
from repro.phy.pulses import HRP_CONFIG

KEY = b"\xA5" * 16
TRIALS = 10


def _ghost_success(receiver, label):
    session = HrpRangingSession(KEY, receiver=receiver)
    hits = 0
    for i in range(TRIALS):
        channel = Channel(10.0, snr_db=15.0, seed_label=f"{label}{i}")
        attack = GhostPeakAttack(advance_m=6.0, power=6.0, seed_label=f"{label}a{i}")
        outcome = session.measure(channel,
                                  attacker_signal=attack.waveform(channel, HRP_CONFIG))
        if outcome.reduced and outcome.accepted:
            hits += 1
    return hits / TRIALS


def test_fig2_hrp_ranging_security(benchmark, show):
    naive = HrpReceiver(integrity_check=False, threshold_ratio=0.3)
    secure = HrpReceiver(integrity_check=True, threshold_ratio=0.3)

    naive_rate = _ghost_success(naive, "f2n")
    secure_rate = benchmark(_ghost_success, secure, "f2n")

    # Honest accuracy.
    session = HrpRangingSession(KEY)
    errors = []
    for i, distance in enumerate((2.0, 10.0, 30.0, 50.0)):
        outcome = session.measure(Channel(distance, snr_db=15.0, seed_label=f"f2h{i}"))
        errors.append(abs(outcome.error_m))

    show("Fig. 2 — HRP mode: STS ranging under ghost-peak attack",
         [
             ("honest max |error| (2-50 m)", f"{max(errors):.2f} m"),
             ("naive correlation receiver: reduction success", f"{naive_rate:.0%}"),
             ("integrity-checked receiver: reduction success", f"{secure_rate:.0%}"),
         ],
         header=("metric", "value"))
    assert naive_rate >= 0.5
    assert secure_rate == 0.0


def test_fig2_lrp_distance_bounding(benchmark, show):
    rows = []
    for rounds in (8, 16, 32, 64):
        plain = attack_success_probability(rounds)
        randomized = attack_success_probability(rounds, pulse_randomization=True,
                                                position_space=8)
        rows.append((rounds, f"{plain:.3e}", f"{randomized:.3e}"))
    benchmark(attack_success_probability, 32)
    show("Fig. 2 — LRP mode: early-reply success vs bit-exchange rounds",
         rows, header=("rounds", "distance bounding", "+ pulse randomization"))
    assert attack_success_probability(32) < 1e-9


def test_fig2b_vrange_5g_ranging(benchmark, show):
    """§II-B: V-Range-style secure ranging in 5G waveforms ([12])."""
    from repro.phy.vrange import CpInjectionAttack, VRangeSession

    def reduction_rate(secure: bool) -> float:
        hits = 0
        for i in range(6):
            session = VRangeSession(KEY, secure=secure)
            attack = CpInjectionAttack(advance_m=30.0, seed_label=f"f2v{i}")
            outcome = session.measure(300.0, attack=attack, seed_label=f"f2vc{i}")
            if outcome.reduced and outcome.accepted:
                hits += 1
        return hits / 6

    tolerant = reduction_rate(False)
    secure = benchmark(reduction_rate, True)
    honest = VRangeSession(KEY).measure(300.0, seed_label="f2vh")
    show("§II-B — 5G OFDM ranging (V-Range [12]): CP-injection reduction",
         [
             ("honest error at 300 m", f"{abs(honest.error_m):.1f} m"),
             ("tolerant receiver: reduction success", f"{tolerant:.0%}"),
             ("V-Range checks (rho + CP consistency)", f"{secure:.0%}"),
         ],
         header=("metric", "value"))
    assert tolerant >= 0.8 and secure == 0.0


def test_fig2_pkes_relay_outcomes(benchmark, show):
    relay = RelayAttack(cable_length_m=30.0)
    rows = []
    for policy in ("lf-rssi", "uwb-hrp", "uwb-lrp"):
        system = PkesSystem(policy=policy)
        legit = system.try_unlock(1.0).unlocked
        relayed = system.relay_attack_succeeds(50.0, relay)
        rows.append((policy, "unlock" if legit else "DENIED",
                     "STOLEN" if relayed else "blocked"))

    def relay_check():
        return PkesSystem(policy="uwb-hrp").relay_attack_succeeds(50.0, relay)

    assert not benchmark(relay_check)
    show("Fig. 2 — PKES: relay attack outcome per proximity policy",
         rows, header=("policy", "owner at 1 m", "relay w/ fob at 50 m"))
