"""FIG7 — SDV cloud connections and trust relations (paper Fig. 7).

Regenerates the figure's trust story as measurements:

* multi-anchor SSI: reconfiguration authorization across stakeholders
  (HW vendor anchor + SW vendor anchor), success/denial matrix;
* plug-and-charge: ISO 15118 single-root PKI vs SSI — anchor count,
  message count, offline capability, roaming cost.
"""

from repro.ssi.charging import CHARGING_CONTRACT, Iso15118Pki, SsiChargingFlow
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.sdv import HW_CREDENTIAL, SW_CREDENTIAL, ReconfigurationController
from repro.ssi.trust import TrustPolicy
from repro.ssi.wallet import Wallet

NOW = 1_750_000_000.0


def _sdv_world():
    registry = VerifiableDataRegistry()
    policy = TrustPolicy(registry)
    hw_vendor = Wallet.create("hw-vendor", registry)
    sw_vendor = Wallet.create("sw-vendor", registry)
    rogue = Wallet.create("rogue-vendor", registry)
    policy.add_anchor(HW_CREDENTIAL, str(hw_vendor.did))
    policy.add_anchor(SW_CREDENTIAL, str(sw_vendor.did))

    platform = Wallet.create("adas-ecu", registry)
    platform.store(hw_vendor.issue(
        credential_type=HW_CREDENTIAL, subject=platform.did,
        claims={"platformType": "adas-gen3"}, issued_at=NOW))

    good_sw = Wallet.create("lane-keeping", registry)
    good_sw.store(sw_vendor.issue(
        credential_type=SW_CREDENTIAL, subject=good_sw.did,
        claims={"approvedPlatforms": ["adas-gen3"]}, issued_at=NOW))

    bad_sw = Wallet.create("unapproved-app", registry)
    bad_sw.store(rogue.issue(
        credential_type=SW_CREDENTIAL, subject=bad_sw.did,
        claims={"approvedPlatforms": ["adas-gen3"]}, issued_at=NOW))
    return policy, platform, good_sw, bad_sw


def test_fig7_reconfiguration_trust(benchmark, show):
    policy, platform, good_sw, bad_sw = _sdv_world()
    controller = ReconfigurationController(policy)

    good = benchmark(controller.authorize_placement, good_sw, platform, now=NOW + 10)
    bad = controller.authorize_placement(bad_sw, platform, now=NOW + 10)

    rows = [
        ("accredited software -> compatible HW", good.authorized,
         good.verification_steps, good.reason),
        ("rogue-vendor software -> same HW", bad.authorized,
         bad.verification_steps, bad.reason[:48]),
    ]
    show("Fig. 7 — SDV reconfiguration under multi-anchor zero trust",
         rows, header=("placement", "authorized", "verif. steps", "reason"))
    assert good.authorized and not bad.authorized


def test_fig7_pki_vs_ssi_charging(benchmark, show):
    pki = Iso15118Pki()
    pki.issue("cpo-sub-ca", "v2g-root")
    pki.issue("emsp-sub-ca", "v2g-root")
    pki.issue("contract-1", "emsp-sub-ca")

    registry = VerifiableDataRegistry()
    policy = TrustPolicy(registry)
    flow = SsiChargingFlow(registry, policy)
    provider_a = Wallet.create("emsp-a", registry)
    provider_b = Wallet.create("emsp-b", registry)
    vehicle = Wallet.create("ev", registry)
    policy.add_anchor(CHARGING_CONTRACT, str(provider_a.did))
    policy.add_anchor(CHARGING_CONTRACT, str(provider_b.did))
    flow.subscribe(vehicle, provider_a, now=NOW)
    flow.cache_for_offline([str(vehicle.did), str(provider_a.did)])

    online = benchmark(flow.authorize, vehicle, now=NOW + 60)
    offline = flow.authorize(vehicle, now=NOW + 60, offline=True)

    rows = [
        ("trust anchors", pki.trust_anchor_count, len(policy.anchors_for(CHARGING_CONTRACT))),
        ("verification chain length", len(pki.chain_to_root("contract-1")), 1),
        ("protocol messages", pki.message_count(), flow.message_count()),
        ("offline authorization", "no (OCSP needed)",
         "yes" if offline.authorized else "no"),
        ("add roaming partner", "re-root / cross-sign", "one add_anchor call"),
    ]
    show("Fig. 7 / §IV-C — plug-and-charge: ISO 15118 PKI vs SSI",
         rows, header=("property", "ISO 15118 PKI", "SSI"))
    assert online.authorized and offline.authorized
    assert len(policy.anchors_for(CHARGING_CONTRACT)) > pki.trust_anchor_count
