"""BENCH-FLOW — cost of whole-system taint analysis over the fleet.

The flow analyzer is static: it must stay fast enough to run on every
lint invocation and inside CI gates.  This bench pins that property:

1. **Per-scenario analysis cost.** Build-graph + taint + witnesses +
   min-cut timed per scenario; the whole five-scenario fleet must
   analyze in well under a second.
2. **Scaling with topology size.** Synthetic zonal architectures of
   growing width show the analysis scaling near-linearly in edges (BFS
   + one max-flow per reached sink).

The measured numbers are exported through the observability layer's
JSON metrics format into ``BENCH_FLOW.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.flow import analyze, build_flow_graph
from repro.lint.scenarios import SCENARIOS, build_scenario
from repro.obs import MetricsRegistry

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: The fleet must analyze end to end within this budget (seconds) —
#: generous on CI hardware, tight enough to catch accidental
#: quadratic blowups in the graph builder.
FLEET_BUDGET_S = 2.0


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _synthetic_target(n_zones: int, ecus_per_zone: int = 4):
    """A zonal IVN scaled wide: one exposed telematics unit, n zones."""
    from repro.ivn.topology import Endpoint, Zone, ZonalArchitecture
    from repro.lint.target import AnalysisTarget

    arch = ZonalArchitecture()
    for z in range(n_zones):
        arch.add_zone(Zone(f"zc-{z}", [
            Endpoint(f"ecu-{z}-{e}", "can",
                     criticality=5 if e == 0 else 2)
            for e in range(ecus_per_zone)
        ]))
    model = arch.system_model(secured_links=False)
    return AnalysisTarget(name=f"synthetic-{n_zones}", model=model, zonal=arch)


def test_fleet_analysis_cost(show, benchmark):
    rows = []
    registry = MetricsRegistry()
    total_s = 0.0
    for name in SCENARIOS:
        target = build_scenario(name)
        seconds = _best_of(lambda t=target: analyze(t))
        total_s += seconds
        result = analyze(target)
        graph = result.graph
        rows.append((name, len(graph.nodes()), len(graph.edges()),
                     len(result.witnesses), f"{seconds * 1e3:7.2f}"))
        registry.gauge(f"bench.flow.{name}.ms_per_analysis").set(seconds * 1e3)
        registry.gauge(f"bench.flow.{name}.witnesses").set(
            float(len(result.witnesses)))
    registry.gauge("bench.flow.fleet.total_ms").set(total_s * 1e3)
    path = _REPO_ROOT / "BENCH_FLOW.json"
    path.write_text(json.dumps(registry.to_json_dict(), indent=2) + "\n")

    show("BENCH-FLOW — taint analysis per scenario",
         rows, header=("scenario", "nodes", "edges", "paths", "ms"))
    benchmark(lambda: analyze(build_scenario("onboard-insecure")))
    assert total_s < FLEET_BUDGET_S, f"fleet took {total_s:.2f}s"


def test_scaling_with_topology_width(show):
    rows = []
    previous = None
    for n_zones in (2, 4, 8, 16):
        target = _synthetic_target(n_zones)
        graph = build_flow_graph(target)
        seconds = _best_of(lambda t=target: analyze(t), repeats=3)
        ratio = "" if previous is None else f"{seconds / previous:4.1f}x"
        rows.append((n_zones, len(graph.nodes()), len(graph.edges()),
                     f"{seconds * 1e3:7.2f}", ratio))
        previous = seconds
    show("BENCH-FLOW — scaling with zone count (2x zones per step)",
         rows, header=("zones", "nodes", "edges", "ms", "step"))
    # doubling the zone count must not blow up super-quadratically
    assert previous < 5.0, f"16-zone analysis took {previous:.2f}s"


def test_graph_build_alone_is_cheap(benchmark):
    target = build_scenario("onboard-insecure")
    graph = benchmark(lambda: build_flow_graph(target))
    assert len(graph.nodes()) >= 10
