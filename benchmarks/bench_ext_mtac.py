"""EXT-2 — Message Time-of-Arrival Codes ([7], cited in §II-A).

Extension experiment: the MTAC primitive's security curve — advance-
attack acceptance probability vs code length and slot count, Monte-Carlo
vs analytic — plus the honest-channel robustness margin.
"""

from repro.phy.mtac import MtacCode, attack_acceptance_probability

KEY = b"\xD7" * 16


def test_ext2_mtac_security_curve(benchmark, show):
    rows = []
    for n_pulses, slots in ((16, 2), (32, 4), (64, 8), (128, 8)):
        analytic = attack_acceptance_probability(n_pulses, slots, 0.75)
        code = MtacCode(KEY, n_pulses=n_pulses, slots_per_symbol=slots)
        honest = code.verify(0, code.transmit(0))
        attacked = code.verify(1, code.advance_attack_slots(1))
        rows.append((f"{n_pulses}p/{slots}s", f"{analytic:.2e}",
                     f"{honest.matching_fraction:.2f}",
                     f"{attacked.matching_fraction:.2f}",
                     "accept" if honest.accepted else "REJECT",
                     "ACCEPT" if attacked.accepted else "reject"))
    benchmark(attack_acceptance_probability, 64, 8, 0.75)
    show("EXT-2 — MTAC: advance-attack acceptance vs code parameters",
         rows, header=("code", "P[accept] analytic", "honest match",
                       "attack match", "honest", "attacker"))
    assert all(row[4] == "accept" and row[5] == "reject" for row in rows)


def test_ext2_mtac_simulation_vs_theory(benchmark, show):
    # A deliberately weak code where the attacker sometimes wins, so the
    # Monte-Carlo estimate is non-trivial.
    code = MtacCode(KEY, n_pulses=16, slots_per_symbol=2, accept_fraction=0.5)
    theory = attack_acceptance_probability(16, 2, 0.5)

    def simulate(trials=400):
        return sum(
            code.verify(i, code.advance_attack_slots(i),
                        pulse_loss_prob=0.0).accepted
            for i in range(trials)
        ) / trials

    observed = benchmark(simulate)
    show("EXT-2 — weak MTAC (16 pulses, 2 slots, 50% threshold): "
         "Monte-Carlo vs binomial theory",
         [("analytic", f"{theory:.3f}"), ("simulated (400 trials)", f"{observed:.3f}")],
         header=("estimate", "P[attacker accepted]"))
    assert abs(observed - theory) < 0.12
