"""BENCH-SENTINEL — streaming detection cost and detection latency.

The sentinel engine sits on the observability layer's push path: every
emitted event fans out to the subscribed engine synchronously, so the
per-event cost bounds how much telemetry a simulation can stream while
being watched.  Three claims are pinned here:

1. **Per-event cost is microseconds.** Routing one pushed event through
   the detector table is O(1); the bench times a realistic mixed-kind
   stream through an attached engine, ticks included.
2. **Detection is prompt.** For every insecure scenario under the
   ``severe`` plan the first ALARM lands within a few ticks of the
   fault window opening — and strictly before the degradation ladder
   reaches SAFE_STOP (the lead the response layer gets to act in).
3. **Reports replay byte-identically.** The same (scenario, plan, base
   seed) triple produces the same JSON document, byte for byte.

The measured numbers are exported through the observability layer's
JSON metrics format into ``BENCH_SENTINEL.json`` at the repo root,
seeding the benchmark trajectory later perf PRs extend.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.layers import Layer
from repro.faults import get_plan
from repro.obs import MetricsRegistry
from repro.obs.events import EventKind, EventLog
from repro.sentinel import (
    SentinelEngine,
    run_sentinel_campaign,
    run_sentinel_scenario,
    sentinel_scenario_names,
)

N_EVENTS = 5000
EVENTS_PER_TICK = 10
INSECURE_SCENARIOS = ("pkes-legacy", "onboard-insecure", "cariad-breach",
                      "maas-platform")

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _stream_workload(n_events: int = N_EVENTS) -> SentinelEngine:
    """A mixed telemetry stream pushed through an attached engine."""
    log = EventLog(capacity=256)
    engine = SentinelEngine("bench")
    engine.attach(log)
    senders = ("zc-left", "zc-right", "ecu-can-1", "ecu-can-2", "ecu-can-3")
    ticks = n_events // EVENTS_PER_TICK
    for tick in range(ticks):
        t = float(tick)
        for index, sender in enumerate(senders):
            log.emit(EventKind.FRAME_SENT, Layer.NETWORK, "zonal-can",
                     "frame batch", t=t, sender=sender, frames=3 + index % 3)
        log.emit(EventKind.RANGING, Layer.PHYSICAL, "uwb-anchor",
                 "residual", t=t, rejected=False,
                 residual_m=0.01 * (tick % 7))
        log.emit(EventKind.MAC_REJECTED, Layer.NETWORK, "zonal-can",
                 "bad mac", t=t)
        log.emit(EventKind.CLOUD_REQUEST, Layer.DATA, "telemetry-backend",
                 "GET", t=t, status="ok" if tick % 3 else "5xx",
                 latency_ms=80.0)
        log.emit(EventKind.DID_RESOLUTION, Layer.SOFTWARE_PLATFORM,
                 "did-registry", "resolve",
                 t=t, status="ok" if tick % 4 else "stale")
        log.emit(EventKind.FRAME_DELIVERED, Layer.NETWORK, "zonal-can",
                 "delivered", t=t)
        engine.tick(t)
    return engine


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _export(registry: MetricsRegistry) -> Path:
    path = _REPO_ROOT / "BENCH_SENTINEL.json"
    path.write_text(json.dumps(registry.to_json_dict(), indent=2) + "\n")
    return path


def test_per_event_streaming_cost_and_detection_latency(show):
    """The acceptance pins: µs-scale per-event cost, prompt detection."""
    stream_s = _best_of(_stream_workload) / N_EVENTS
    engine = _stream_workload()
    assert engine.events_consumed == N_EVENTS

    severe = get_plan("severe")
    registry = MetricsRegistry()
    registry.gauge("bench.sentinel.stream.ns_per_event").set(stream_s * 1e9)

    rows = [("stream (mixed kinds)", f"{stream_s * 1e9:8.0f} ns/event",
             "-", "-", "-")]
    latencies = []
    for name in INSECURE_SCENARIOS:
        result = run_sentinel_scenario(name, severe)
        detection = result["detection"]
        assert detection["alarmRaised"], f"{name}: no alarm under severe"
        assert detection["detectedBeforeSafeStop"], (
            f"{name}: alarm at {detection['firstAlarmT']} missed safe stop "
            f"at {detection['safeStopT']}")
        latency = detection["firstAlarmT"] - result["window"]["start"]
        assert latency >= 0.0
        latencies.append(latency)
        registry.gauge(
            f"bench.sentinel.detect.{name}.latency_ticks").set(latency)
        registry.gauge(
            f"bench.sentinel.detect.{name}.lead_ticks").set(
            detection["leadTicks"])
        rows.append((name, f"alarm t={detection['firstAlarmT']:g}",
                     f"{latency:g} after window",
                     f"stop t={detection['safeStopT']:g}",
                     f"lead {detection['leadTicks']:g}"))
    registry.gauge("bench.sentinel.detect.max_latency_ticks").set(
        max(latencies))
    path = _export(registry)

    show("BENCH-SENTINEL — streaming cost + detection latency (severe)",
         rows, header=("workload", "cost / first alarm", "latency",
                       "safe stop", "lead"))
    assert stream_s < 100e-6, (
        f"per-event streaming cost {stream_s * 1e6:.1f} µs exceeds the "
        f"100 µs budget")
    assert max(latencies) <= 6.0, (
        f"worst-case detection latency {max(latencies):g} ticks after the "
        f"fault window opened")
    assert path.exists()


def test_campaign_cost_is_ci_friendly(show, benchmark):
    """A full five-scenario streamed campaign stays CI-cheap."""
    document = benchmark(
        lambda: run_sentinel_campaign(sentinel_scenario_names(), "baseline"))
    assert document["summary"]["scenarioCount"] == 5


def test_output_byte_identical_per_plan_and_seed(show):
    """Same (scenarios, plan, seed) -> the same bytes, every time."""
    names = sentinel_scenario_names()
    rows = []
    for plan_name in ("baseline", "severe"):
        first = json.dumps(run_sentinel_campaign(names, plan_name),
                           sort_keys=True)
        second = json.dumps(run_sentinel_campaign(names, plan_name),
                            sort_keys=True)
        assert first == second, f"{plan_name}: report not deterministic"
        rows.append((plan_name, len(first), "byte-identical"))
    shifted = json.dumps(run_sentinel_campaign(names, "baseline",
                                               base_seed=7), sort_keys=True)
    baseline = json.dumps(run_sentinel_campaign(names, "baseline"),
                          sort_keys=True)
    assert shifted != baseline, "base seed must reshard the rng streams"
    show("BENCH-SENTINEL — output stability",
         rows + [("baseline seed=7", len(shifted), "differs from seed=0")],
         header=("plan", "bytes", "verdict"))
