"""FIG4 — scenario S1: SECOC over CAN + MACsec on the backbone.

Regenerates Fig. 4's scenario with measured numbers, and quantifies the
three disadvantages the paper lists: authentication-only edge (no
confidentiality), key storage in the zone controller, and the software
load of gateway security termination.
"""

from repro.ivn.scenarios import run_s1, run_s2_end_to_end

PAYLOAD = b"\x11" * 16


def test_fig4_s1_properties(benchmark, show):
    report = benchmark(run_s1, PAYLOAD)
    reference = run_s2_end_to_end(PAYLOAD)  # the no-ZC-processing baseline

    rows = [
        ("delivered end-to-end (crypto verified)", report.delivered),
        ("edge wire bits (CAN, segmented)", report.wire_bits_edge),
        ("backbone wire bits (ETH+MACsec)", report.wire_bits_backbone),
        ("end-to-end latency", f"{report.latency_s * 1e6:.1f} us"),
        ("latency vs MACsec-e2e baseline",
         f"{report.latency_s / reference.latency_s:.1f}x"),
        ("confidentiality on CAN edge", report.confidentiality_on_edge),
        ("zone controller sees plaintext", report.zc_sees_plaintext),
        ("session keys stored in zone controller", report.keys_at_zc),
        ("goodput (payload bits / wire bits)", f"{report.goodput_ratio:.3f}"),
    ]
    show("Fig. 4 — scenario S1: AUTOSAR SECOC + MACsec", rows,
         header=("property", "value"))

    assert report.delivered
    assert not report.confidentiality_on_edge       # authentication-only
    assert report.keys_at_zc > 0                    # ZC key storage
    assert report.latency_s > reference.latency_s   # AUTOSAR gateway load
