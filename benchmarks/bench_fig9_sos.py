"""FIG9 — the AD MaaS system of systems (paper Fig. 9).

Regenerates the figure's security content: entry points and STRIDE
threats per SoS level, breach-cascade blast radii from each entry point
(§VI-B's cascade claim), and the stakeholder-responsibility gaps (§VI's
"ambiguous roles" complaint).
"""

from repro.sos.cascade import CascadeSimulator
from repro.sos.maas import build_maas_sos
from repro.sos.responsibility import ResponsibilityMatrix
from repro.sos.stride import enumerate_threats, threats_by_level

LEVEL_NAMES = {
    0: "L0 MaaS system of systems",
    1: "L1 platform systems",
    2: "L2 vehicle subsystems",
    3: "L3 function groups",
}


def test_fig9_threats_per_level(benchmark, show):
    model = build_maas_sos()
    counts = benchmark(threats_by_level, model)
    secured_counts = threats_by_level(build_maas_sos(secured_interfaces=True))
    rows = [
        (LEVEL_NAMES[level], len(model.systems(level=level)),
         counts[level], secured_counts[level])
        for level in range(4)
    ]
    total = len(enumerate_threats(model))
    rows.append(("TOTAL", len(model.systems()), total,
                 len(enumerate_threats(build_maas_sos(secured_interfaces=True)))))
    show("Fig. 9 — STRIDE threats per SoS level (unsecured vs unified framework)",
         rows, header=("level", "systems", "threats", "threats (secured)"))
    assert total > sum(secured_counts.values())


def test_fig9_cascade_blast_radius(benchmark, show):
    open_model = build_maas_sos()
    secured_model = build_maas_sos(secured_interfaces=True)

    sim_open = CascadeSimulator(open_model, seed_label="fig9")
    sim_secured = CascadeSimulator(secured_model, seed_label="fig9")

    results_open = benchmark(sim_open.sweep_origins, trials=200)
    results_secured = {r.origin: r for r in sim_secured.sweep_origins(trials=200)}

    total = len(open_model.systems())
    rows = [
        (r.origin,
         f"{r.mean_blast_radius:.1f}/{total}",
         f"{r.p_safety_critical_hit:.0%}",
         f"{results_secured[r.origin].mean_blast_radius:.1f}/{total}",
         f"{results_secured[r.origin].p_safety_critical_hit:.0%}")
        for r in results_open
    ]
    show("Fig. 9 / §VI-B — breach cascade from each entry point "
         "(mean blast radius, P[safety-critical hit])",
         rows, header=("entry point", "radius", "P[crit]",
                       "radius (secured)", "P[crit] (secured)"))
    for result in results_open:
        secured = results_secured[result.origin]
        assert result.mean_blast_radius > secured.mean_blast_radius


def test_fig9_responsibility_gaps(benchmark, show):
    model = build_maas_sos()
    matrix = ResponsibilityMatrix(model)
    matrix.assign_by_operator()

    seams = benchmark(matrix.seam_gaps)
    rows = [
        ("stakeholders in the value network", len(model.stakeholders())),
        ("obligation coverage (per-operator default)",
         f"{matrix.coverage_fraction():.0%}"),
        ("cross-stakeholder incident-response seams", len(seams)),
    ]
    rows.extend(("  seam", gap.system) for gap in seams[:5])
    show("Fig. 9 / §VI — responsibility fragmentation", rows,
         header=("metric", "value"))
    assert len(seams) >= 3  # the paper's fragmented-responsibility claim
