"""BENCH-KERNELS — batched hot-path kernels vs their scalar references.

Two hot paths were vectorized (ROADMAP item: hot-path vectorization);
this bench pins both the speedups and the bit-identical equivalence
that makes the speedups admissible:

1. **CAN frame transport** (:mod:`repro.ivn.bus`).  Three generations
   are timed on the same saturated-segment workload:

   * the *reference* kernel — the pre-optimization implementation,
     preserved verbatim below: list queue, O(n) linear arbitration scan
     per frame (O(n²) per burst), uncached per-frame ``isinstance`` +
     ``transmission_time_s`` bit arithmetic;
   * the *scalar event-loop* kernel — today's ``send()`` + ``sim.run()``:
     heap arbitration and memoized frame times, per-frame completion
     events (full fidelity: obs hooks, callbacks, interleaving);
   * the *batched* kernel — ``send_batch()`` + ``run_batch()``:
     closed-form burst timing, no per-frame closures or events.

   The acceptance gate pins **batched ≥ 10× reference** frames/s, and
   an in-bench oracle asserts the batched ``DeliveryRecord`` stream is
   byte-identical to the scalar path's on a seeded mixed burst.

2. **UWB waveform chain** (:mod:`repro.phy`).  Vectorized pulse-train
   synthesis (cached template + scatter-add) vs the sequential
   placement loop, and ``ds_twr_batch`` vs a scalar ``ds_twr`` loop —
   both with ``np.array_equal`` oracles.

The scalar fallback still exists on purpose: ``run_batch`` drops to the
event loop whenever obs hooks are enabled, a node has a receive
callback, or foreign events are live — the batch path is a fast lane,
not a semantic fork.  Numbers land in ``BENCH_KERNELS.json`` at the
repo root via the observability layer's JSON metrics format.
"""

from __future__ import annotations

import heapq
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.events import Simulator
from repro.ivn.bus import BusNode, CanBus, DeliveryRecord
from repro.ivn.frames import CanFdFrame, CanFrame, CanXlFrame
from repro.obs import MetricsRegistry
from repro.phy.pulses import HRP_CONFIG, build_pulse_train, pulse_template
from repro.phy.ranging import ds_twr, ds_twr_batch

#: Same operating point as BENCH-OBS's bus workload, so the scalar
#: numbers are directly comparable across the two bench files.
N_FRAMES = 400
N_SYMBOLS = 512
N_RANGINGS = 4000
MIN_BATCHED_SPEEDUP = 10.0

_REPO_ROOT = Path(__file__).resolve().parent.parent


# -- the preserved reference kernel ------------------------------------------


@dataclass(frozen=True)
class _QueuedFrame:
    sender: str
    frame: object
    enqueued_at: float
    priority: int


class _ReferenceBus:
    """The pre-optimization CAN kernel, kept as the speedup baseline.

    Faithful to the original hot path: frames wait in a plain list, every
    idle instant runs a full O(n) arbitration scan, and every start
    recomputes the frame's transmission time from its bit layout.
    """

    def __init__(self, sim: Simulator, *, bitrate_bps: float = 500e3,
                 data_bitrate_bps: float = 2e6) -> None:
        self.sim = sim
        self.bitrate_bps = bitrate_bps
        self.data_bitrate_bps = data_bitrate_bps
        self.nodes: dict[str, BusNode] = {}
        self.delivered: list[DeliveryRecord] = []
        self._queue: list[_QueuedFrame] = []
        self._busy = False

    def attach(self, node: BusNode) -> BusNode:
        self.nodes[node.name] = node
        return node

    def send(self, sender: str, frame: object) -> None:
        priority = getattr(frame, "can_id", None)
        if priority is None:
            priority = frame.priority_id  # type: ignore[attr-defined]
        self._queue.append(_QueuedFrame(sender, frame, self.sim.now, priority))
        if not self._busy:
            self._start_next()

    def _frame_time(self, frame: object) -> float:
        if isinstance(frame, CanFrame):
            return frame.transmission_time_s(self.bitrate_bps)
        if isinstance(frame, (CanFdFrame, CanXlFrame)):
            return frame.transmission_time_s(self.bitrate_bps,
                                             self.data_bitrate_bps)
        raise TypeError(f"unsupported frame type {type(frame).__name__}")

    def _start_next(self) -> None:
        if not self._queue:
            return
        winner_idx = min(
            range(len(self._queue)),
            key=lambda i: (self._queue[i].priority,
                           self._queue[i].enqueued_at, i),
        )
        queued = self._queue.pop(winner_idx)
        self._busy = True
        started = self.sim.now
        duration = self._frame_time(queued.frame)

        def complete() -> None:
            record = DeliveryRecord(queued.sender, queued.frame,
                                    queued.enqueued_at, started, self.sim.now)
            self.delivered.append(record)
            for node in self.nodes.values():
                if node.name != queued.sender:
                    node.deliver(record)
            self._busy = False
            self._start_next()

        self.sim.schedule(duration, complete)


# -- workloads ---------------------------------------------------------------


def _bus_reference(n_frames: int = N_FRAMES) -> _ReferenceBus:
    sim = Simulator()
    bus = _ReferenceBus(sim)
    bus.attach(BusNode("sender"))
    bus.attach(BusNode("receiver"))
    frame = CanFrame(0x100, b"\x11" * 8)
    for _ in range(n_frames):
        bus.send("sender", frame)
    sim.run()
    return bus

def _bus_scalar(n_frames: int = N_FRAMES) -> CanBus:
    sim = Simulator()
    bus = CanBus(sim)
    bus.attach(BusNode("sender"))
    bus.attach(BusNode("receiver"))
    frame = CanFrame(0x100, b"\x11" * 8)
    for _ in range(n_frames):
        bus.send("sender", frame)
    sim.run()
    return bus


def _bus_batched(n_frames: int = N_FRAMES) -> CanBus:
    sim = Simulator()
    bus = CanBus(sim)
    bus.attach(BusNode("sender"))
    bus.attach(BusNode("receiver"))
    frame = CanFrame(0x100, b"\x11" * 8)
    bus.send_batch("sender", [frame] * n_frames)
    bus.run_batch()
    return bus


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _mixed_burst(seed: int, n: int) -> list:
    rng = np.random.default_rng(seed)
    frames: list = []
    for _ in range(n):
        kind = int(rng.integers(0, 3))
        can_id = int(rng.integers(0, 0x7FF))
        if kind == 0:
            frames.append(CanFrame(can_id, bytes(8)))
        elif kind == 1:
            frames.append(CanFdFrame(can_id, bytes(32)))
        else:
            frames.append(CanXlFrame(can_id, bytes(64)))
    return frames


def _record_tuple(record: DeliveryRecord) -> tuple:
    return (record.sender, record.frame, record.enqueued_at,
            record.started_at, record.completed_at)


def _export(registry: MetricsRegistry) -> Path:
    path = _REPO_ROOT / "BENCH_KERNELS.json"
    path.write_text(json.dumps(registry.to_json_dict(), indent=2) + "\n")
    return path


# -- benches -----------------------------------------------------------------


def test_batched_bus_is_10x_reference_kernel(show):
    """The acceptance gate: ≥10× frames/s over the reference kernel —
    and the speedup only counts because the outputs are byte-identical
    (the equivalence oracle below and tests/test_ivn_bus_batch.py)."""
    # Warm the per-shape frame-time memo so the scalar/batched numbers
    # measure steady-state, not first-call cache fills.
    _bus_batched(8)

    reference_s = _best_of(_bus_reference) / N_FRAMES
    scalar_s = _best_of(_bus_scalar) / N_FRAMES
    batched_s = _best_of(_bus_batched) / N_FRAMES

    vs_reference = reference_s / batched_s
    vs_scalar = scalar_s / batched_s
    scalar_vs_reference = reference_s / scalar_s

    registry = MetricsRegistry()
    registry.gauge("bench.kernels.bus.us_per_frame_reference").set(reference_s * 1e6)
    registry.gauge("bench.kernels.bus.us_per_frame_scalar").set(scalar_s * 1e6)
    registry.gauge("bench.kernels.bus.us_per_frame_batched").set(batched_s * 1e6)
    registry.gauge("bench.kernels.bus.frames_per_s_batched").set(1.0 / batched_s)
    registry.gauge("bench.kernels.bus.batched_speedup_vs_reference").set(vs_reference)
    registry.gauge("bench.kernels.bus.batched_speedup_vs_scalar").set(vs_scalar)
    registry.gauge("bench.kernels.bus.scalar_speedup_vs_reference").set(scalar_vs_reference)
    path = _export(registry)

    show(f"BENCH-KERNELS — CAN transport, {N_FRAMES}-frame saturated burst",
         [("reference (list + O(n) scan)", f"{reference_s * 1e6:8.2f}", "1.00x"),
          ("scalar event loop (heap + memo)", f"{scalar_s * 1e6:8.2f}",
           f"{scalar_vs_reference:5.2f}x"),
          ("batched (closed-form burst)", f"{batched_s * 1e6:8.2f}",
           f"{vs_reference:5.2f}x")],
         header=("kernel", "us/frame", "speedup"))
    assert vs_reference >= MIN_BATCHED_SPEEDUP, (
        f"batched path is only {vs_reference:.1f}x the reference kernel "
        f"({batched_s * 1e6:.2f} vs {reference_s * 1e6:.2f} us/frame); "
        f"the gate requires >= {MIN_BATCHED_SPEEDUP:.0f}x")
    assert path.exists()


def test_batched_bus_outputs_are_byte_identical(show):
    """The in-bench oracle: all three kernels agree record-for-record on
    a seeded mixed burst (classic/FD/XL, random ids)."""
    frames = _mixed_burst(seed=2026, n=250)

    sim_r = Simulator()
    reference = _ReferenceBus(sim_r)
    reference.attach(BusNode("sender"))
    reference.attach(BusNode("receiver"))
    for frame in frames:
        reference.send("sender", frame)
    sim_r.run()

    sim_s = Simulator()
    scalar = CanBus(sim_s)
    scalar.attach(BusNode("sender"))
    scalar.attach(BusNode("receiver"))
    for frame in frames:
        scalar.send("sender", frame)
    sim_s.run()

    sim_b = Simulator()
    batched = CanBus(sim_b)
    batched.attach(BusNode("sender"))
    batched.attach(BusNode("receiver"))
    batched.send_batch("sender", frames)
    batched.run_batch()

    rows_r = [_record_tuple(r) for r in reference.delivered]
    rows_s = [_record_tuple(r) for r in scalar.delivered]
    rows_b = [_record_tuple(r) for r in batched.delivered]
    show("BENCH-KERNELS — equivalence oracle (250-frame mixed burst)",
         [("reference == scalar", rows_r == rows_s),
          ("scalar == batched", rows_s == rows_b),
          ("final clock agrees", sim_r.now == sim_s.now == sim_b.now)],
         header=("invariant", "holds"))
    assert rows_r == rows_s == rows_b
    assert sim_r.now == sim_s.now == sim_b.now


def test_vectorized_pulse_train_matches_placement_loop(show):
    """Scatter-add synthesis vs the sequential loop: equal arrays, and
    the measured speedup is reported (not gated — numpy dispatch
    constants dominate at small symbol counts)."""
    rng = np.random.default_rng(7)
    symbols = rng.choice([-1.0, 1.0], size=N_SYMBOLS)
    template = pulse_template(HRP_CONFIG)
    spp = HRP_CONFIG.samples_per_pri

    def loop_train() -> np.ndarray:
        signal = np.zeros((N_SYMBOLS - 1) * spp + template.size)
        for k in range(N_SYMBOLS):
            start = k * spp
            signal[start:start + template.size] += symbols[k] * template
        return signal

    vectorized = build_pulse_train(symbols, HRP_CONFIG)
    looped = loop_train()
    assert np.array_equal(vectorized, looped)

    loop_s = _best_of(loop_train) / N_SYMBOLS
    vec_s = _best_of(lambda: build_pulse_train(symbols, HRP_CONFIG)) / N_SYMBOLS
    speedup = loop_s / vec_s

    path = _REPO_ROOT / "BENCH_KERNELS.json"
    document = (json.loads(path.read_text()) if path.exists()
                else {"counters": {}, "gauges": {}, "histograms": {}})
    document["gauges"]["bench.kernels.phy.ns_per_symbol_loop"] = loop_s * 1e9
    document["gauges"]["bench.kernels.phy.ns_per_symbol_vectorized"] = vec_s * 1e9
    document["gauges"]["bench.kernels.phy.pulse_train_speedup"] = speedup
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    show(f"BENCH-KERNELS — pulse-train synthesis, {N_SYMBOLS} symbols",
         [("placement loop", f"{loop_s * 1e9:8.0f}", "1.00x"),
          ("scatter-add", f"{vec_s * 1e9:8.0f}", f"{speedup:5.2f}x")],
         header=("kernel", "ns/symbol", "speedup"))
    assert speedup > 1.0


def test_batched_twr_matches_scalar_loop(show):
    """``ds_twr_batch`` vs a scalar ``ds_twr`` loop: exact equality on
    every measured distance, plus the amortized per-exchange speedup."""
    distances = np.linspace(0.5, 80.0, N_RANGINGS)

    def scalar_loop() -> np.ndarray:
        return np.array([ds_twr(float(d), responder_drift_ppm=20.0)
                         .measured_distance_m for d in distances])

    batch = ds_twr_batch(distances, responder_drift_ppm=20.0)
    assert np.array_equal(batch.measured_distance_m, scalar_loop())

    scalar_s = _best_of(scalar_loop, repeats=3) / N_RANGINGS
    batch_s = _best_of(
        lambda: ds_twr_batch(distances, responder_drift_ppm=20.0),
        repeats=3) / N_RANGINGS
    speedup = scalar_s / batch_s

    path = _REPO_ROOT / "BENCH_KERNELS.json"
    document = json.loads(path.read_text())
    document["gauges"]["bench.kernels.phy.ns_per_twr_scalar"] = scalar_s * 1e9
    document["gauges"]["bench.kernels.phy.ns_per_twr_batched"] = batch_s * 1e9
    document["gauges"]["bench.kernels.phy.twr_batch_speedup"] = speedup
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    show(f"BENCH-KERNELS — DS-TWR ranging, {N_RANGINGS} exchanges",
         [("scalar loop", f"{scalar_s * 1e9:8.0f}", "1.00x"),
          ("batched", f"{batch_s * 1e9:8.0f}", f"{speedup:5.2f}x")],
         header=("kernel", "ns/exchange", "speedup"))
    assert speedup > 2.0
