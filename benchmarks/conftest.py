"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (figure/table) as printed
rows — visible in the ``pytest benchmarks/ --benchmark-only`` output —
and times a representative kernel with pytest-benchmark.
"""

from __future__ import annotations

import pytest


def format_table(title: str, rows: list[tuple],
                 header: tuple | None = None) -> str:
    """Render a titled, aligned table; tolerates ragged rows.

    Rows (and the header) may have different lengths: every row is
    padded with empty cells to the widest one, so nothing is silently
    dropped and nothing raises.  Column widths come from the padded
    table.
    """
    table = ([tuple(header)] if header else []) + [tuple(row) for row in rows]
    lines = [f"\n=== {title} ==="]
    if table:
        columns = max(len(row) for row in table)
        padded = [tuple(str(cell) for cell in row) + ("",) * (columns - len(row))
                  for row in table]
        widths = [max(len(row[i]) for row in padded) for i in range(columns)]
        for idx, row in enumerate(padded):
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths)).rstrip())
            if header and idx == 0:
                lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


@pytest.fixture()
def show(capsys):
    """Print a titled table uncaptured, so it lands in the bench log."""

    def _show(title: str, rows: list[tuple], header: tuple | None = None) -> None:
        with capsys.disabled():
            print(format_table(title, rows, header))

    return _show
