"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (figure/table) as printed
rows — visible in the ``pytest benchmarks/ --benchmark-only`` output —
and times a representative kernel with pytest-benchmark.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def show(capsys):
    """Print a titled table uncaptured, so it lands in the bench log."""

    def _show(title: str, rows: list[tuple], header: tuple | None = None) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            table = ([header] if header else []) + list(rows)
            widths = [
                max(len(str(row[i])) for row in table)
                for i in range(len(table[0]))
            ]
            for idx, row in enumerate(table):
                line = "  ".join(str(cell).ljust(width)
                                 for cell, width in zip(row, widths))
                print(line)
                if header and idx == 0:
                    print("  ".join("-" * width for width in widths))

    return _show
