"""FIG1 — the layered architecture (paper Fig. 1) as a coverage table.

Regenerates Fig. 1's content quantitatively: one row per layer with the
paper section, the attacks/defenses cataloged at that layer, and the
defense coverage when all of the paper's proposed defenses are enabled.
"""

from repro.core.analysis import LayeredSecurityAnalyzer
from repro.core.layers import LAYER_INFO, Layer
from repro.core.threats import default_catalog


def test_fig1_layer_inventory(benchmark, show):
    catalog = default_catalog()
    analyzer = LayeredSecurityAnalyzer(catalog)

    assessment = benchmark(analyzer.assess)

    rows = []
    for layer in Layer:
        info = LAYER_INFO[layer]
        per_layer = assessment.per_layer[layer]
        rows.append((
            info.title,
            f"§{info.paper_section}",
            len(catalog.attacks_on_layer(layer)),
            len(catalog.defenses_on_layer(layer)),
            f"{per_layer.coverage:.0%}",
        ))
    show("Fig. 1 — layered architecture: threat/defense inventory",
         rows, header=("layer", "section", "attacks", "defenses", "coverage"))
    assert assessment.overall_coverage == 1.0
