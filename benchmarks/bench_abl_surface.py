"""ABL-3 — attack-surface minimization ablation (paper §V-C, DESIGN.md §5.3).

"By taking away features and options that are not strictly needed, we
enable a better understanding of possible misuse."  Sweeps every feature
subset of the telemetry service and reports surface size and kill-chain
viability — the measured version of the simple-designs argument.
"""

from repro.datalayer.breach import build_cariad_service
from repro.datalayer.surface import FeatureSurfaceAnalyzer


def test_abl3_feature_sweep(benchmark, show):
    service, _ = build_cariad_service(n_vehicles=5, days=2)
    analyzer = FeatureSurfaceAnalyzer(service)

    reports = benchmark(analyzer.sweep)
    rows = [
        ("{" + ",".join(r.features) + "}" if r.features else "{}",
         r.exposed_endpoints, r.unauthenticated_endpoints,
         r.debug_endpoints, r.kill_chain_depth,
         "VIABLE" if r.kill_chain_viable else "dead")
        for r in reports
    ]
    show("ABL-3 — feature subsets vs attack surface and kill-chain viability",
         rows, header=("features", "endpoints", "unauth", "debug",
                       "chain depth", "kill chain"))

    viable = [r for r in reports if r.kill_chain_viable]
    assert viable
    assert all("debug" in r.features for r in viable)

    minimal = analyzer.minimal_safe_surface({"core"})
    show("ABL-3 — minimal safe surface containing 'core'",
         [(("{" + ",".join(minimal.features) + "}"),
           minimal.exposed_endpoints, minimal.kill_chain_depth)],
         header=("features", "endpoints", "chain depth"))
    assert not minimal.kill_chain_viable
