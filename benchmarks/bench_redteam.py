"""BENCH-REDTEAM — cost and determinism of whole-fleet campaign planning.

The red-team planner is the third static analyzer: it runs inside every
default lint invocation (RT rules) and inside the CI differential gate,
so it must plan the whole fleet in milliseconds.  This bench pins two
properties:

1. **Per-scenario planning cost.** Library build + capability search +
   campaign reconstruction timed per scenario; the five-scenario fleet
   must plan in well under a second.
2. **Byte-identical output per (scenario, base seed).** The planner is
   purely static — serializing the campaign document twice for the
   same inputs must produce the exact same bytes, which is what makes
   the differential gates and golden campaigns trustworthy.

The measured numbers are exported through the observability layer's
JSON metrics format into ``BENCH_REDTEAM.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.lint.scenarios import SCENARIOS, build_scenario
from repro.obs import MetricsRegistry
from repro.redteam import plan, run_redteam_campaign

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: The fleet must plan end to end within this budget (seconds) —
#: generous on CI hardware, tight enough to catch a super-linear
#: regression in the capability search.
FLEET_BUDGET_S = 2.0


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fleet_planning_cost(show, benchmark):
    rows = []
    registry = MetricsRegistry()
    total_s = 0.0
    for name in SCENARIOS:
        target = build_scenario(name)
        seconds = _best_of(lambda t=target: plan(t))
        total_s += seconds
        result = plan(target)
        rows.append((name, len(result.library), len(result.campaigns),
                     len(result.disruptions), f"{seconds * 1e3:7.2f}"))
        registry.gauge(f"bench.redteam.{name}.ms_per_plan").set(seconds * 1e3)
        registry.gauge(f"bench.redteam.{name}.campaigns").set(
            float(len(result.campaigns)))
        registry.gauge(f"bench.redteam.{name}.attacks").set(
            float(len(result.library)))
    registry.gauge("bench.redteam.fleet.total_ms").set(total_s * 1e3)
    path = _REPO_ROOT / "BENCH_REDTEAM.json"
    path.write_text(json.dumps(registry.to_json_dict(), indent=2) + "\n")

    show("BENCH-REDTEAM — campaign planning per scenario",
         rows, header=("scenario", "attacks", "campaigns", "disrupt", "ms"))
    benchmark(lambda: plan(build_scenario("onboard-insecure")))
    assert total_s < FLEET_BUDGET_S, f"fleet took {total_s:.2f}s"


def test_output_byte_identical_per_scenario_and_seed(show):
    names = sorted(SCENARIOS)
    rows = []
    for base_seed in (0, 7):
        first = json.dumps(run_redteam_campaign(names, base_seed=base_seed),
                           sort_keys=True)
        second = json.dumps(run_redteam_campaign(names, base_seed=base_seed),
                            sort_keys=True)
        assert first == second, f"seed {base_seed}: output not stable"
        rows.append((base_seed, len(first), "identical"))
    show("BENCH-REDTEAM — document stability per (fleet, seed)",
         rows, header=("seed", "bytes", "verdict"))


def test_library_build_alone_is_cheap(benchmark):
    from repro.flow import analyze
    from repro.redteam import build_attack_library

    target = build_scenario("onboard-insecure")
    flow = analyze(target)
    library = benchmark(lambda: build_attack_library(target, flow))
    assert len(library) >= 20
