"""TAB1 — Table I: security protocols for in-vehicle communication.

Regenerates the table with *measured* per-frame costs from the protocol
implementations: trailer/header bytes added, MAC/ICV length, goodput
ratio on the medium the protocol targets, and whether confidentiality
is provided — the quantitative content behind the paper's qualitative
OSI-layer table.
"""

from repro.ivn.cansec import CANSEC_OVERHEAD_BYTES, CansecZone
from repro.ivn.frames import (
    MACSEC_ICV_BYTES,
    MACSEC_SECTAG_BYTES,
    CanFrame,
    CanXlFrame,
    EthernetFrame,
)
from repro.ivn.macsec import MacsecPort, MkaSession
from repro.ivn.secoc import PROFILE_1, SecOcChannel

PAYLOAD = b"\x42" * 4  # a typical small signal PDU


def _secoc_row():
    channel = SecOcChannel(b"\x01" * 16, PROFILE_1)
    pdu = channel.secure(0x100, PAYLOAD)
    trailer = len(pdu.wire_payload(PROFILE_1)) - len(PAYLOAD)
    frame = CanFrame(0x100, pdu.wire_payload(PROFILE_1))
    plain = CanFrame(0x100, PAYLOAD)
    goodput = 8 * len(PAYLOAD) / frame.wire_bits()
    return ("SECOC [18]", "7 (application)", "CAN / Ethernet", trailer,
            PROFILE_1.mac_bits, "no", f"{goodput:.2f}",
            f"+{frame.wire_bits() - plain.wire_bits()} bits")


def _macsec_row():
    a, b = MacsecPort("a"), MacsecPort("b")
    MkaSession(b"\x02" * 16, [a, b]).distribute_sak()
    protected = EthernetFrame("b", "a", PAYLOAD, macsec=True)
    plain = EthernetFrame("b", "a", PAYLOAD)
    overhead = MACSEC_SECTAG_BYTES + MACSEC_ICV_BYTES
    goodput = 8 * len(PAYLOAD) / protected.wire_bits()
    return ("MACsec [20]", "2 (data link)", "Ethernet", overhead,
            8 * MACSEC_ICV_BYTES, "yes", f"{goodput:.2f}",
            f"+{protected.wire_bits() - plain.wire_bits()} bits")


def _cansec_row():
    zone = CansecZone(b"\x03" * 16)
    secured = zone.protect(CanXlFrame(0x50, PAYLOAD))
    plain_bits = (CanXlFrame(0x50, PAYLOAD).arbitration_phase_bits()
                  + CanXlFrame(0x50, PAYLOAD).data_phase_bits())
    sec_bits = (secured.frame.arbitration_phase_bits()
                + secured.frame.data_phase_bits())
    goodput = 8 * len(PAYLOAD) / sec_bits
    return ("CANsec [19]", "2 (data link)", "CAN XL", CANSEC_OVERHEAD_BYTES,
            128, "yes", f"{goodput:.2f}", f"+{sec_bits - plain_bits} bits")


def _tls_style_row():
    # (D)TLS record overhead: 5-byte header + 16-byte AEAD tag + 8-byte
    # explicit nonce (TLS 1.2-style AEAD record framing).
    overhead = 5 + 16 + 8
    frame = EthernetFrame("b", "a", PAYLOAD + b"\x00" * overhead)
    goodput = 8 * len(PAYLOAD) / frame.wire_bits()
    return ("(D)TLS [31]", "4 (transport)", "Ethernet/IP", overhead, 128,
            "yes", f"{goodput:.2f}", f"+{overhead * 8} bits")


def _ipsec_style_row():
    # ESP tunnel-mode overhead: new IP(20) + ESP header(8) + IV(8) +
    # padding(~2) + ICV(16).
    overhead = 20 + 8 + 8 + 2 + 16
    frame = EthernetFrame("b", "a", PAYLOAD + b"\x00" * overhead)
    goodput = 8 * len(PAYLOAD) / frame.wire_bits()
    return ("IPsec", "3 (network)", "Ethernet/IP", overhead, 128,
            "yes", f"{goodput:.2f}", f"+{overhead * 8} bits")


def test_tab1_protocol_overheads(benchmark, show):
    rows = benchmark(lambda: [
        _secoc_row(), _tls_style_row(), _ipsec_style_row(),
        _macsec_row(), _cansec_row(),
    ])
    show("Table I — in-vehicle security protocols, measured per-frame cost "
         f"({len(PAYLOAD)}-byte PDU)",
         rows,
         header=("protocol", "ISO-OSI layer", "medium", "sec bytes",
                 "MAC bits", "conf.", "goodput", "wire delta"))
    # SECOC (authentication-only, truncated MAC) must be the leanest.
    sec_bytes = [row[3] for row in rows]
    assert sec_bytes[0] == min(sec_bytes)
    # Every protocol providing confidentiality costs more than SECOC.
    assert all(row[3] > rows[0][3] for row in rows[1:])
