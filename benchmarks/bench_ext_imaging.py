"""EXT-7 — camera image-pipeline security ([49], §VIII).

Extension experiment: residual attacks per pipeline stage as defenses
are deployed, and the cheapest full-coverage defense set — the
sensor-scale instance of the paper's layered-synergy argument.
"""

from repro.phy.imaging import IMAGE_ATTACKS, PIPELINE_STAGES, ImagePipeline


def test_ext7_pipeline_coverage(benchmark, show):
    pipeline = ImagePipeline()
    deployments = [
        ("none", set()),
        ("transport security only", {"authenticated-frame-transport"}),
        ("+ perception hardening", {"authenticated-frame-transport",
                                    "adversarial-training"}),
        ("+ sensor & optics", {"authenticated-frame-transport",
                               "adversarial-training", "optical-filtering",
                               "shielding-and-plausibility",
                               "global-shutter-or-randomized-exposure"}),
    ]
    rows = []
    for label, deployed in deployments:
        residual = pipeline.residual_by_stage(deployed)
        rows.append((label, f"{pipeline.coverage(deployed):.0%}",
                     *[residual[stage] for stage in PIPELINE_STAGES]))
    show("EXT-7 / [49] — image pipeline: residual attacks per stage",
         rows, header=("deployed defenses", "coverage", *PIPELINE_STAGES))

    cheapest = benchmark(pipeline.cheapest_full_coverage)
    cost = sum(pipeline.defenses[n].cost for n in cheapest)
    show("EXT-7 — cheapest full-coverage defense set",
         [(", ".join(sorted(cheapest)), cost, f"{len(IMAGE_ATTACKS)} attacks covered")],
         header=("defenses", "total cost", "note"))
    assert pipeline.residual_attacks(cheapest) == []
    # Transport security alone covers < half the pipeline.
    assert pipeline.coverage({"authenticated-frame-transport"}) < 0.5
