"""BENCH-CAMPAIGN — journal overhead and resume skip ratio.

The campaign engine buys crash-safety with an fsynced write-ahead
journal; this bench pins the price and the payoff:

1. **Journal overhead.** Total fsync+write time across the journal must
   stay under 5% of the shard compute time for realistically-sized
   shards (the cost is per *record*, so millisecond shards would always
   lose — the gate uses shards in the ~100ms range the tool fleet
   actually produces).
2. **Resume skip ratio.** Resuming a completed campaign must replay
   every settled shard from the journal and re-execute none of them:
   resume wall time under 10% of the cold run, i.e. the journal skips
   well over 90% of the completed-shard work.
3. **Byte-identical reports.** Cold, re-run, and resumed documents must
   serialize to the same bytes — the engine's core promise.

The measured numbers are exported through the observability layer's
JSON metrics format into ``BENCH_CAMPAIGN.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.campaign import (
    CampaignEngine,
    CampaignSpec,
    CampaignTool,
    validate_campaign_dict,
)
from repro.obs import MetricsRegistry

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Journal time as a fraction of shard compute time (ISSUE gate: <5%).
JOURNAL_OVERHEAD_BUDGET = 0.05
#: Resume wall as a fraction of the cold run (skip ≥90% of the work).
RESUME_BUDGET = 0.10
#: Virtual-clock ticks per chaos shard — sized so one shard costs
#: ~75-100ms, the scale the real tool fleet produces (the journal cost
#: is per record, so the overhead gate is meaningless on ms shards).
SHARD_DURATION = 6000


def _spec() -> CampaignSpec:
    return CampaignSpec.matrix(
        tools=[CampaignTool.CHAOS],
        scenarios=["pkes-legacy", "onboard-insecure", "onboard-hardened",
                   "cariad-breach", "maas-platform"],
        plans=["baseline", "severe"], seeds=[0],
        duration=SHARD_DURATION, name="bench")


def _run(root: Path, *, resume: bool = False):
    engine = CampaignEngine(_spec(), jobs=2, journal_root=root,
                            install_signal_handlers=False)
    t0 = time.perf_counter()
    report = engine.run(resume=resume)
    return report, time.perf_counter() - t0


def _bytes(report) -> str:
    document = report.to_json_dict()
    validate_campaign_dict(document)
    return json.dumps(document, sort_keys=True)


def test_journal_overhead_and_resume_skip(tmp_path, show, benchmark):
    registry = MetricsRegistry()

    cold_report, cold_s = _run(tmp_path / "cold")
    shard_s = sum(e.duration_s for e in cold_report.entries.values())
    overhead = cold_report.journal_write_s / shard_s

    resumed_report, resume_s = _run(tmp_path / "cold", resume=True)
    skip = 1.0 - resume_s / cold_s

    registry.gauge("bench.campaign.shards").set(float(len(_spec())))
    registry.gauge("bench.campaign.cold_ms").set(cold_s * 1e3)
    registry.gauge("bench.campaign.shard_compute_ms").set(shard_s * 1e3)
    registry.gauge("bench.campaign.journal_ms").set(
        cold_report.journal_write_s * 1e3)
    registry.gauge("bench.campaign.journal_records").set(
        float(cold_report.journal_records))
    registry.gauge("bench.campaign.journal_overhead_pct").set(
        overhead * 100.0)
    registry.gauge("bench.campaign.resume_ms").set(resume_s * 1e3)
    registry.gauge("bench.campaign.resume_skip_pct").set(skip * 100.0)
    registry.gauge("bench.campaign.resumed_shards").set(
        float(resumed_report.resumed_shards))
    path = _REPO_ROOT / "BENCH_CAMPAIGN.json"
    path.write_text(json.dumps(registry.to_json_dict(), indent=2) + "\n")

    show("BENCH-CAMPAIGN — WAL overhead and resume payoff",
         [("shards", len(_spec())),
          ("cold run (ms)", f"{cold_s * 1e3:7.1f}"),
          ("shard compute (ms)", f"{shard_s * 1e3:7.1f}"),
          ("journal writes (ms)", f"{cold_report.journal_write_s * 1e3:7.2f}"),
          ("journal overhead", f"{overhead * 100:6.2f}%"),
          ("resume (ms)", f"{resume_s * 1e3:7.1f}"),
          ("resume skips", f"{skip * 100:6.1f}%")],
         header=("metric", "value"))
    # pure replay: an ended campaign appends nothing, so the loop is
    # side-effect free however many times pytest-benchmark runs it
    benchmark(lambda: _run(tmp_path / "cold", resume=True))

    assert overhead < JOURNAL_OVERHEAD_BUDGET, (
        f"journal cost {overhead:.1%} of shard compute "
        f"(budget {JOURNAL_OVERHEAD_BUDGET:.0%})")
    assert resume_s < cold_s * RESUME_BUDGET, (
        f"resume took {resume_s * 1e3:.0f}ms vs cold {cold_s * 1e3:.0f}ms; "
        f"the journal must skip ≥{1 - RESUME_BUDGET:.0%} of completed work")
    assert resumed_report.resumed_shards == len(_spec())


def test_reports_are_byte_identical_across_runs_and_resume(tmp_path, show):
    first, _ = _run(tmp_path / "a")
    second, _ = _run(tmp_path / "b")
    resumed, _ = _run(tmp_path / "a", resume=True)
    documents = [_bytes(first), _bytes(second), _bytes(resumed)]
    assert documents[0] == documents[1] == documents[2]
    show("BENCH-CAMPAIGN — determinism",
         [("runs compared", "2 cold + 1 resumed"),
          ("document bytes", len(documents[0])),
          ("byte-identical", "yes")],
         header=("property", "value"))
