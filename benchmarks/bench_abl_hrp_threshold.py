"""ABL-1 — HRP receiver design ablation (DESIGN.md §5.1).

Sweeps the two receiver knobs behind the [4] claim:

* the leading-edge back-search threshold — low values find weak genuine
  first paths but admit ghost peaks on the naive receiver;
* the integrity-check normalized-correlation threshold — the
  security/false-positive trade-off of the defense.
"""

from repro.phy.attacks import GhostPeakAttack
from repro.phy.channel import Channel
from repro.phy.hrp import HrpRangingSession, HrpReceiver
from repro.phy.pulses import HRP_CONFIG

KEY = b"\xB6" * 16
TRIALS = 8


def _rates(receiver, label):
    """(attack success rate, honest acceptance rate) for a receiver."""
    session = HrpRangingSession(KEY, receiver=receiver)
    attack_hits = 0
    for i in range(TRIALS):
        channel = Channel(10.0, snr_db=15.0, seed_label=f"{label}-a{i}")
        attack = GhostPeakAttack(advance_m=6.0, power=6.0, seed_label=f"{label}-g{i}")
        outcome = session.measure(channel,
                                  attacker_signal=attack.waveform(channel, HRP_CONFIG))
        if outcome.reduced and outcome.accepted:
            attack_hits += 1
    honest_ok = 0
    for i in range(TRIALS):
        channel = Channel(10.0, snr_db=12.0, seed_label=f"{label}-h{i}")
        outcome = session.measure(channel)
        if outcome.accepted and abs(outcome.error_m) < 1.0:
            honest_ok += 1
    return attack_hits / TRIALS, honest_ok / TRIALS


def test_abl1_leading_edge_threshold(benchmark, show):
    rows = []
    for threshold in (0.2, 0.35, 0.5, 0.7):
        naive = HrpReceiver(integrity_check=False, threshold_ratio=threshold)
        attack_rate, honest_rate = _rates(naive, f"le{threshold}")
        rows.append((threshold, f"{attack_rate:.0%}", f"{honest_rate:.0%}"))
    benchmark(_rates, HrpReceiver(integrity_check=False, threshold_ratio=0.35), "le-b")
    show("ABL-1a — naive receiver: leading-edge threshold vs ghost-peak success",
         rows, header=("threshold", "attack success", "honest accept"))
    # Lower thresholds must be at least as attackable as higher ones.
    rates = [float(r[1].rstrip("%")) for r in rows]
    assert rates[0] >= rates[-1]


def test_abl1_integrity_threshold(benchmark, show):
    rows = []
    for min_rho in (0.15, 0.25, 0.35, 0.5, 0.65):
        secure = HrpReceiver(integrity_check=True, threshold_ratio=0.3,
                             min_normalized_corr=min_rho)
        attack_rate, honest_rate = _rates(secure, f"rho{min_rho}")
        rows.append((min_rho, f"{attack_rate:.0%}", f"{honest_rate:.0%}"))
    benchmark(_rates, HrpReceiver(integrity_check=True), "rho-b")
    show("ABL-1b — integrity check: min normalized correlation vs "
         "security/false-reject trade-off",
         rows, header=("min rho", "attack success", "honest accept"))
    # The recommended operating point kills the attack without hurting
    # honest acceptance.
    mid = rows[2]
    assert mid[1] == "0%"
    assert mid[2] == "100%"
