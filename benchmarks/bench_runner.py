"""BENCH-RUN — the sweep runner's parallel speedup and warm-cache cost.

Two claims are pinned here, per the ``repro.runner`` design contract:

1. **Parallel dispatch wins wall-clock.** A sweep of sleep-bound
   synthetic experiments (plain-python workers, so overlap does not
   depend on core count) must finish in ≤ 0.5× the sequential wall time
   at ``jobs=4`` — the ≥ 2× speedup the acceptance criteria require.
2. **A warm cache is near-free.** Re-running an unchanged sweep must
   skip every experiment (all reported ``cached``) and cost a small
   fraction of the sequential time — just hashing, no subprocesses.

The synthetic experiments deliberately bypass pytest (the worker
command template is ``python <script>``): BENCH-RUN measures the
*engine* — scheduling, pooling, caching — not pytest's startup, and a
registry-driven sweep of real bench files would recurse into this very
bench.  The measured numbers are exported through the observability
layer's JSON metrics format into ``BENCH_RUNNER.json`` at the repo
root, extending the benchmark trajectory BENCH-OBS seeded.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments import Experiment
from repro.obs import MetricsRegistry
from repro.runner import ResultCache, SweepRunner

N_TASKS = 8
JOBS = 4
SLEEP_S = 0.6

_REPO_ROOT = Path(__file__).resolve().parent.parent

_SCRIPT = """\
import time
time.sleep({sleep:g})
print("=== SYN{i} — synthetic sweep workload ===")
print("slept_s  {sleep:g}")
"""


def _make_synthetic(directory: Path, n: int = N_TASKS) -> list[Experiment]:
    experiments = []
    for i in range(n):
        name = f"syn_{i}.py"
        (directory / name).write_text(_SCRIPT.format(i=i, sleep=SLEEP_S))
        experiments.append(Experiment(f"SYN{i}", "-",
                                      "synthetic sleep workload", name))
    return experiments


def _sweep(experiments, directory: Path, *, jobs: int, use_cache: bool,
           cache: ResultCache | None = None):
    runner = SweepRunner(
        experiments, jobs=jobs, use_cache=use_cache, cache=cache,
        bench_dir=directory, timeout_s=60.0,
        command_template=(sys.executable, "{bench}"),
        digest_paths=[])
    return runner.run()


def _export(registry: MetricsRegistry) -> Path:
    path = _REPO_ROOT / "BENCH_RUNNER.json"
    path.write_text(json.dumps(registry.to_json_dict(), indent=2) + "\n")
    return path


def test_parallel_speedup_and_warm_cache(show, tmp_path):
    """The acceptance gate: ≥ 2× at jobs=4, warm cache skips everything."""
    directory = tmp_path / "benches"
    directory.mkdir()
    experiments = _make_synthetic(directory)
    cache = ResultCache(tmp_path / "cache")

    sequential = _sweep(experiments, directory, jobs=1, use_cache=False)
    parallel = _sweep(experiments, directory, jobs=JOBS, use_cache=False)
    assert sequential.ok and parallel.ok

    cold = _sweep(experiments, directory, jobs=JOBS, use_cache=True,
                  cache=cache)
    warm = _sweep(experiments, directory, jobs=JOBS, use_cache=True,
                  cache=cache)
    assert cold.ok and warm.ok
    cached = sum(1 for result in warm.results if result.cached)

    speedup = sequential.wall_s / parallel.wall_s
    registry = MetricsRegistry()
    registry.gauge("bench.runner.tasks").set(N_TASKS)
    registry.gauge("bench.runner.jobs").set(JOBS)
    registry.gauge("bench.runner.sequential_s").set(sequential.wall_s)
    registry.gauge("bench.runner.parallel_s").set(parallel.wall_s)
    registry.gauge("bench.runner.speedup").set(speedup)
    registry.gauge("bench.runner.warm_cache_s").set(warm.wall_s)
    registry.gauge("bench.runner.warm_cached_count").set(cached)
    path = _export(registry)

    show(f"BENCH-RUN — sweep of {N_TASKS} synthetic experiments",
         [("sequential (jobs=1)", f"{sequential.wall_s:7.2f}s", "-"),
          (f"parallel (jobs={JOBS})", f"{parallel.wall_s:7.2f}s",
           f"{speedup:4.2f}x"),
          ("warm cache", f"{warm.wall_s:7.2f}s",
           f"{cached}/{N_TASKS} cached")],
         header=("configuration", "wall", "note"))

    assert parallel.wall_s <= 0.5 * sequential.wall_s, (
        f"jobs={JOBS} took {parallel.wall_s:.2f}s vs sequential "
        f"{sequential.wall_s:.2f}s — speedup {speedup:.2f}x < 2x")
    assert cached == N_TASKS, f"warm sweep re-ran {N_TASKS - cached} task(s)"
    assert warm.wall_s <= 0.25 * sequential.wall_s, (
        f"warm cache cost {warm.wall_s:.2f}s, expected near-zero")
    assert path.exists()


def test_cache_invalidates_on_workload_change(show, tmp_path):
    """Editing one synthetic bench re-runs exactly that experiment."""
    directory = tmp_path / "benches"
    directory.mkdir()
    experiments = _make_synthetic(directory, 3)
    cache = ResultCache(tmp_path / "cache")

    _sweep(experiments, directory, jobs=2, use_cache=True, cache=cache)
    (directory / "syn_1.py").write_text(
        _SCRIPT.format(i=1, sleep=0.01) + "# edited\n")
    report = _sweep(experiments, directory, jobs=2, use_cache=True,
                    cache=cache)

    by_id = {result.exp_id: result for result in report.results}
    show("BENCH-RUN — cache invalidation after editing syn_1.py",
         [(exp_id, result.status) for exp_id, result in sorted(by_id.items())],
         header=("experiment", "status"))
    assert by_id["SYN0"].cached and by_id["SYN2"].cached
    assert not by_id["SYN1"].cached and by_id["SYN1"].status == "passed"
