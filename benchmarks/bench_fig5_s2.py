"""FIG5 — scenario S2: MACsec end-to-end vs point-to-point.

Regenerates Fig. 5's two variants with measured numbers, pinning the
paper's trade-off: end-to-end "avoids key storage in the intermediate
zone controller and security processing", but "communication mechanisms
restrict the modification of header information".
"""

from repro.ivn.scenarios import run_s2_end_to_end, run_s2_point_to_point

PAYLOAD = b"\x22" * 16


def test_fig5_s2_variants(benchmark, show):
    e2e = benchmark(run_s2_end_to_end, PAYLOAD)
    p2p = run_s2_point_to_point(PAYLOAD)

    rows = [
        ("delivered (crypto verified)", e2e.delivered, p2p.delivered),
        ("latency (us)", f"{e2e.latency_s * 1e6:.1f}", f"{p2p.latency_s * 1e6:.1f}"),
        ("keys at ECU", e2e.keys_at_ecu, p2p.keys_at_ecu),
        ("keys at zone controller", e2e.keys_at_zc, p2p.keys_at_zc),
        ("keys at CC", e2e.keys_at_cc, p2p.keys_at_cc),
        ("ZC sees plaintext", e2e.zc_sees_plaintext, p2p.zc_sees_plaintext),
        ("ZC can modify headers", e2e.zc_can_modify_headers, p2p.zc_can_modify_headers),
        ("goodput", f"{e2e.goodput_ratio:.3f}", f"{p2p.goodput_ratio:.3f}"),
    ]
    show("Fig. 5 — scenario S2: MACsec end-to-end (1) vs point-to-point (2)",
         rows, header=("property", "S2 end-to-end", "S2 point-to-point"))

    assert e2e.delivered and p2p.delivered
    assert e2e.keys_at_zc == 0 and p2p.keys_at_zc > 0
    assert not e2e.zc_can_modify_headers and p2p.zc_can_modify_headers
    assert e2e.latency_s < p2p.latency_s
