"""FIG6 — scenario S3: CANAL carrying end-to-end MACsec over CAN.

Regenerates Fig. 6 and the full S1/S2a/S2b/S3 comparison table — the
paper's argument that CANAL gives CAN endpoints the end-to-end security
properties of the Ethernet-only deployment.
"""

from repro.ivn.canal import CanalCodec
from repro.ivn.scenarios import run_all_scenarios, run_s3_canal

PAYLOAD = b"\x33" * 16


def test_fig6_s3_canal(benchmark, show):
    report = benchmark(run_s3_canal, PAYLOAD)
    codec = CanalCodec(mode="can-xl")
    rows = [
        ("delivered (crypto verified)", report.delivered),
        ("CANAL header overhead", f"{codec.overhead_bytes(64)} B per 64-B blob"),
        ("edge wire bits (CAN XL tunnel)", report.wire_bits_edge),
        ("keys at zone controller", report.keys_at_zc),
        ("ZC sees plaintext", report.zc_sees_plaintext),
        ("confidentiality on CAN edge", report.confidentiality_on_edge),
        ("latency", f"{report.latency_s * 1e6:.1f} us"),
    ]
    show("Fig. 6 — scenario S3: CANAL + end-to-end MACsec on CAN XL", rows,
         header=("property", "value"))
    assert report.delivered
    assert report.keys_at_zc == 0
    assert report.confidentiality_on_edge


def test_fig6_scenario_comparison(benchmark, show):
    reports = benchmark(run_all_scenarios, PAYLOAD)
    rows = [
        (r.name, r.delivered, f"{r.latency_s * 1e6:8.1f}",
         r.total_wire_bits, r.keys_at_zc,
         "yes" if r.confidentiality_on_edge else "NO",
         "yes" if r.zc_sees_plaintext else "no")
        for r in reports
    ]
    show("Figs. 4-6 — all scenarios compared (16-byte payload)",
         rows, header=("scenario", "delivered", "latency us", "wire bits",
                       "ZC keys", "edge conf.", "ZC plaintext"))
    by_name = {r.name: r for r in reports}
    s3 = by_name["S3 CANAL(can-xl)+MACsec e2e"]
    s2a = by_name["S2a MACsec end-to-end"]
    # S3 achieves S2a's security properties on a CAN edge.
    assert s3.keys_at_zc == s2a.keys_at_zc == 0
    assert s3.zc_sees_plaintext == s2a.zc_sees_plaintext is False
