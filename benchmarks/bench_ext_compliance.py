"""EXT-4 — regulatory compliance over the MaaS SoS (§VI-B, [45]).

Extension experiment: CAL assignment per Fig. 9 system, the applicable
UN-R155-shaped requirement count, and the compliance gap under the
fragmented per-operator evidence model vs a coordinated program.
"""

from repro.sos.compliance import Audit, cal_for
from repro.sos.maas import build_maas_sos


def test_ext4_cal_and_gaps(benchmark, show):
    model = build_maas_sos()
    audit = Audit(model)

    rows = []
    for system in model.root.walk():
        cal = cal_for(system, model)
        rows.append((system.name, system.stakeholder or "-", cal,
                     len(audit.applicable(system))))
    show("EXT-4 — CAL assignment and applicable requirements per system",
         sorted(rows, key=lambda r: -r[2]),
         header=("system", "stakeholder", "CAL", "applicable reqs"))

    # Fragmented model: every operator documents only RQ-01/RQ-02
    # (development-time evidence), nobody owns the operational ones.
    for system in model.root.walk():
        for req_id in ("RQ-01", "RQ-02"):
            audit.declare_evidence(system.name, req_id, f"{system.stakeholder}-doc")
    fragmented = audit.compliance_fraction()
    gaps = benchmark(audit.gaps)
    operational_gaps = {g.requirement.req_id for g in gaps}

    # Coordinated program closes the operational requirements.
    for system in model.root.walk():
        for requirement in audit.applicable(system):
            audit.declare_evidence(system.name, requirement.req_id, "csms-doc")
    coordinated = audit.compliance_fraction()

    show("EXT-4 — compliance fraction: fragmented vs coordinated",
         [
             ("per-operator dev-time evidence only", f"{fragmented:.0%}",
              f"open: {sorted(operational_gaps)}"),
             ("coordinated CSMS program", f"{coordinated:.0%}", "open: []"),
         ],
         header=("evidence model", "compliance", "gap requirements"))
    assert fragmented < 1.0
    assert coordinated == 1.0
    assert {"RQ-03", "RQ-04", "RQ-05"} <= operational_gaps


def test_ext4_lifecycle_desync(benchmark, show):
    """§VI-B's retrofit problem: exposure windows from desynchronized
    subsystem lifecycles (Waymo/Chrysler-style integration)."""
    from repro.sos.lifecycle import LifecycleAnalyzer, LifecyclePlan

    def build():
        analyzer = LifecycleAnalyzer()
        analyzer.add_plan(LifecyclePlan("base-vehicle", (0, 6, 10, 14, 80)))
        analyzer.add_plan(LifecyclePlan("self-driving-stack", (20, 30, 36, 40, 100)))
        analyzer.add_plan(LifecyclePlan("passenger-os", (24, 32, 38, 40, 100)))
        analyzer.depends_on("self-driving-stack", "base-vehicle")
        analyzer.depends_on("passenger-os", "base-vehicle")
        analyzer.depends_on("passenger-os", "self-driving-stack")
        return analyzer

    analyzer = build()
    windows = benchmark(analyzer.exposure_windows)
    rows = [(w.operating_system, w.dependency, f"{w.start:.0f}-{w.end:.0f}",
             f"{w.duration:.0f}", w.reason[:44]) for w in windows]
    rows.append(("TOTAL", "-", "-", f"{analyzer.total_exposure():.0f}",
                 f"co-validation overlap (SDS): "
                 f"{analyzer.co_validation_overlap('self-driving-stack'):.0%}"))
    show("EXT-4 / §VI-B — retrofit lifecycle desynchronization: exposure windows "
         "(program months)",
         rows, header=("operating system", "dependency", "window", "months",
                       "reason"))
    assert analyzer.total_exposure() > 0
    assert analyzer.co_validation_overlap("self-driving-stack") < 1.0
