"""FIG3 — the simplified zonal IVN (paper Fig. 3) measured.

Regenerates the figure as numbers: the topology's endpoint→CC latency
per attachment medium, and the attack-surface comparison between the
unsecured architecture and one with every link authenticated.
"""

from repro.core.metrics import attack_surface
from repro.ivn.topology import ZonalArchitecture


def test_fig3_latency_matrix(benchmark, show):
    arch = ZonalArchitecture.figure3()
    matrix = benchmark(arch.latency_matrix, 8)

    rows = []
    for endpoint in ("ecu-can-1", "ecu-t1s-1", "ecu-can-3", "ecu-t1s-3"):
        to_cc = matrix[(endpoint, "cc")] * 1e6
        cross = matrix[(endpoint, "ecu-can-1" if endpoint != "ecu-can-1" else "ecu-can-3")] * 1e6
        rows.append((endpoint, f"{to_cc:9.1f}", f"{cross:9.1f}"))
    show("Fig. 3 — zonal IVN: end-to-end latency (us, 8-byte payload)",
         rows, header=("endpoint", "to CC", "cross-zone"))
    # CAN edge must dominate the T1S edge.
    assert matrix[("ecu-can-1", "cc")] > matrix[("ecu-t1s-1", "cc")]


def test_fig3_plca_scaling(benchmark, show):
    """10BASE-T1S multidrop: latency vs node count (the cabling-weight
    trade-off's performance cost)."""
    from repro.core.events import Simulator
    from repro.ivn.frames import EthernetFrame
    from repro.ivn.t1s import T1sSegment

    def worst_latency(n_nodes: int) -> float:
        sim = Simulator()
        segment = T1sSegment(sim)
        for i in range(n_nodes):
            segment.attach(f"ecu-{i}")
        for i in range(n_nodes):
            segment.send(f"ecu-{i}", EthernetFrame("x", f"ecu-{i}", b"\x00" * 100))
        sim.run()
        return max(d.latency_s for d in segment.delivered)

    rows = [(n, f"{worst_latency(n) * 1e6:8.1f}") for n in (2, 4, 8, 16)]
    benchmark(worst_latency, 8)
    show("Fig. 3 — 10BASE-T1S PLCA: worst-case latency vs multidrop size "
         "(100-byte frames, all nodes loaded)",
         rows, header=("nodes", "worst latency (us)"))
    latencies = [float(r[1]) for r in rows]
    assert latencies == sorted(latencies)


def test_fig3_attack_surface(benchmark, show):
    arch = ZonalArchitecture.figure3()
    unsecured = benchmark(lambda: attack_surface(arch.system_model()))
    secured = attack_surface(arch.system_model(secured_links=True))
    rows = [
        ("entry points", unsecured.entry_points, secured.entry_points),
        ("unsecured interfaces", unsecured.unsecured_interfaces,
         secured.unsecured_interfaces),
        ("components reachable", unsecured.reachable_components,
         secured.reachable_components),
        ("critical components reachable", unsecured.reachable_critical,
         secured.reachable_critical),
    ]
    show("Fig. 3 — attack surface: unsecured vs authenticated links",
         rows, header=("metric", "unsecured", "secured"))
    assert secured.reachable_critical == 0
    assert unsecured.reachable_critical >= 1
