"""EXT-1 — the §VIII detect→respond loop under a bus-flood DoS.

Extension experiment (not a paper figure): quantifies the closing
argument — "detect attacks at their earliest stages and respond
effectively" — on the event-driven CAN simulator: periodic control
streams, a priority-flood attacker, the frequency IDS, and the
REACT-style response engine isolating the compromised node.
"""

from repro.ivn.busoff import BusOffAttack, simulate_busoff
from repro.ivn.streams import run_dos_response_experiment


def test_ext1_busoff_eviction(benchmark, show):
    """The Cho-Shin-style bus-off attack: CAN's fault confinement turned
    against a safety-critical victim, and the burst-detector response."""
    undefended = simulate_busoff(BusOffAttack())
    defended = benchmark(simulate_busoff, BusOffAttack(), defend=True)
    rows = [
        ("victim reaches error-passive (round)", undefended.rounds_to_error_passive,
         defended.rounds_to_error_passive),
        ("victim evicted (bus-off)", undefended.victim_bus_off,
         defended.victim_bus_off),
        ("rounds to bus-off", undefended.rounds_to_bus_off, "-"),
        ("attack detected (round)", "-", defended.detection_round),
        ("attacker isolated", undefended.attacker_isolated,
         defended.attacker_isolated),
    ]
    show("EXT-1 — bus-off attack: undefended vs burst-detection response",
         rows, header=("metric", "undefended", "defended"))
    assert undefended.victim_bus_off
    assert not defended.victim_bus_off


def test_ext1_dos_detect_respond(benchmark, show):
    report = benchmark(run_dos_response_experiment, 1.0)
    rows = [
        ("deadline miss rate, no attack", f"{report.miss_rate_no_attack:.1%}"),
        ("deadline miss rate, flood w/o response",
         f"{report.miss_rate_attack_no_response:.1%}"),
        ("deadline miss rate, flood + IDS + response",
         f"{report.miss_rate_attack_with_response:.1%}"),
        ("detection latency after flood onset",
         f"{(report.detection_time_s - 0.3) * 1e3:.1f} ms"),
        ("isolation latency after flood onset",
         f"{(report.isolation_time_s - 0.3) * 1e3:.1f} ms"),
        ("flood frames before isolation", report.attack_frames_sent),
        ("worst stream latency under unmitigated flood",
         f"{report.worst_latency_attack_s * 1e3:.2f} ms"),
        ("worst stream latency with response",
         f"{report.worst_latency_with_response_s * 1e3:.2f} ms"),
    ]
    show("EXT-1 — bus-flood DoS: detect -> isolate -> recover (§VIII loop)",
         rows, header=("metric", "value"))
    assert report.miss_rate_no_attack == 0.0
    assert report.miss_rate_attack_no_response > 0.5
    assert report.miss_rate_attack_with_response < 0.05
