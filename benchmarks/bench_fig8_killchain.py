"""FIG8 — the CARIAD data-extraction kill chain (paper Fig. 8).

Regenerates the figure as a stage-by-stage execution with measured
damage, the per-mitigation ablation (where does the chain snap), and the
privacy analysis of the exfiltrated geolocation data (§V-A's "we know
where your car is" problem).
"""

from repro.datalayer.breach import run_breach
from repro.datalayer.killchain import MITIGATIONS
from repro.datalayer.privacy import reidentification_rate
from repro.datalayer.telemetry import FleetTelemetryGenerator

N_VEHICLES = 40
DAYS = 30


def test_fig8_kill_chain_execution(benchmark, show):
    report = benchmark(run_breach, n_vehicles=N_VEHICLES, days=DAYS)
    rows = [(i + 1, r.stage, "OK" if r.succeeded else "FAILED", r.detail[:52])
            for i, r in enumerate(report.stage_results)]
    rows.append(("-", "TOTAL", f"{report.stages_completed}/{report.total_stages}",
                 f"{report.records_exfiltrated} records, "
                 f"{report.distinct_vehicles_exposed} vehicles, "
                 f"{report.sensitive_vehicles_exposed} sensitive"))
    show("Fig. 8 — CARIAD kill chain, unmitigated", rows,
         header=("#", "stage", "result", "detail"))
    assert report.chain_completed
    assert report.records_exfiltrated == N_VEHICLES * DAYS * 8


def test_fig8_mitigation_ablation(benchmark, show):
    def ablate():
        return {
            mitigation: run_breach(n_vehicles=10, days=5, mitigations={mitigation})
            for mitigation in sorted(MITIGATIONS)
        }

    results = benchmark(ablate)
    rows = [
        (mitigation, f"{r.stages_completed}/{r.total_stages}",
         r.records_exfiltrated, MITIGATIONS[mitigation][:44])
        for mitigation, r in results.items()
    ]
    show("Fig. 8 — single-mitigation ablation (where the chain snaps)",
         rows, header=("mitigation", "depth", "records", "description"))
    assert all(r.records_exfiltrated == 0 for r in results.values())


def test_fig8_privacy_damage(benchmark, show):
    fleet = FleetTelemetryGenerator(N_VEHICLES, seed_label="fig8-privacy")
    records = fleet.generate(days=DAYS)
    anonymized = [r.anonymized() for r in records]

    rate_precise = benchmark(reidentification_rate, anonymized, fleet.vehicles)
    rate_coarse = reidentification_rate(
        [r.coarsened(1) for r in anonymized], fleet.vehicles, cell_decimals=1)

    from repro.datalayer.privacy import trajectory_uniqueness

    uniqueness = trajectory_uniqueness(anonymized, n_points=4,
                                       trials_per_vehicle=5)
    rows = [
        ("records leaked", len(records), ""),
        ("re-identification of 'anonymized' traces", f"{rate_precise:.0%}",
         "home inference vs address directory"),
        ("after coarsening to ~11 km cells", f"{rate_coarse:.0%}",
         "the data-minimization mitigation"),
        ("uniqueness from 4 coarse points", f"{uniqueness:.0%}",
         "de-Montjoye-style side-knowledge attack"),
    ]
    show("Fig. 8 / §V — privacy damage of the leaked geolocation data",
         rows, header=("metric", "value", "note"))
    assert rate_precise > 0.9
    assert rate_coarse < rate_precise
