"""EXT-3 — owner-controlled access & offline tokens ([54], [34], §VIII/§IV-C).

Extension experiments:

* threshold access control: access survival vs how many trustees learned
  of a revocation (the multi-stakeholder propagation problem of [55]);
* offline mobility tokens: offline verification outcomes and the
  reconciliation-time attribution of a double-spend.
"""

from repro.datalayer.access import DataConsumer, DataOwner, KeyTrustee
from repro.ssi.mobility import OfflineTokenBook, SpendRecord
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.wallet import Wallet

NOW = 1_750_000_000.0


def test_ext3_revocation_propagation(benchmark, show):
    def survival(n_informed: int) -> bool:
        trustees = [KeyTrustee(f"t{i}") for i in range(5)]
        owner = DataOwner("owner", trustees, threshold=3)
        protected = owner.publish("logs", b"data")
        grant = owner.grant("consumer", "logs", now=NOW)
        owner.revoke(grant, reachable_trustees=trustees[:n_informed])
        consumer = DataConsumer("consumer")
        return consumer.access(protected, grant, trustees, threshold=3,
                               now=NOW + 1) is not None

    rows = [(informed, 5 - informed, "ALIVE" if survival(informed) else "revoked")
            for informed in range(6)]
    benchmark(survival, 3)
    show("EXT-3 — access (3-of-5 trustees) vs revocation propagation",
         rows, header=("trustees informed", "unaware", "consumer access"))
    # Access dies exactly when fewer than `threshold` trustees remain unaware.
    assert [row[2] for row in rows] == [
        "ALIVE", "ALIVE", "ALIVE", "revoked", "revoked", "revoked"]


def test_ext3_offline_tokens(benchmark, show):
    registry = VerifiableDataRegistry()
    issuer = Wallet.create("bank", registry)
    holder = Wallet.create("ev", registry)
    thief = Wallet.create("thief", registry)
    book = OfflineTokenBook(issuer, registry)
    token = book.issue_token(holder, 10)

    honest = book.verify_offline(
        token, book.spend_proof(token, holder, "gate-a"), "gate-a",
        cached_issuer_key=issuer.keypair.public,
        cached_holder_key=holder.keypair.public)
    stolen = book.verify_offline(
        token, book.spend_proof(token, thief, "gate-a"), "gate-a",
        cached_issuer_key=issuer.keypair.public,
        cached_holder_key=holder.keypair.public)

    records = [
        SpendRecord(token.token_id, merchant, str(holder.did),
                    book.spend_proof(token, holder, merchant))
        for merchant in ("gate-a", "gate-b")
    ]
    conflicts = benchmark(book.reconcile, records)

    rows = [
        ("holder spend, offline verification", "accepted" if honest else "rejected"),
        ("thief spend with stolen token", "ACCEPTED" if stolen else "rejected"),
        ("double-spend detected offline", "no (by design)"),
        ("double-spend attributed at reconciliation",
         f"yes ({len(conflicts[token.token_id])} signed proofs)"),
    ]
    show("EXT-3 — [34]-style offline tokens: security properties",
         rows, header=("scenario", "outcome"))
    assert honest and not stolen and token.token_id in conflicts
