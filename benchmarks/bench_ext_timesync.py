"""EXT-5 — PTP delay attack and PTPsec-style detection ([53], §VIII).

Extension experiment: the time-synchronization attack surface the paper
cites — asymmetric delay injection shifting PTP clocks silently — and
the cyclic-path-asymmetry countermeasure: detection and localization
accuracy vs injected delay.
"""

from repro.ivn.timesync import CyclicAsymmetryDetector, DelayAttack, SyncNetwork, ptp_offset


def _network():
    network = SyncNetwork(jitter_s=20e-9, seed_label="ext5")
    for a, b, d in (("gm", "sw1", 5e-6), ("sw1", "sw2", 4e-6), ("sw2", "gm", 6e-6),
                    ("sw1", "sw3", 3e-6), ("sw3", "sw2", 5e-6)):
        network.add_link(a, b, d)
    return network


def test_ext5_delay_attack_and_detection(benchmark, show):
    rows = []
    for attack_us in (0.0, 0.5, 2.0, 10.0, 50.0):
        network = _network()
        if attack_us > 0:
            DelayAttack("sw1", "sw2", attack_us * 1e-6).apply(network)
        result = ptp_offset(network, ["gm", "sw1", "sw2"])
        detector = CyclicAsymmetryDetector(network)
        verdict = detector.measure_cycle(["gm", "sw1", "sw2"])
        suspects = detector.localize([["gm", "sw1", "sw2"], ["sw1", "sw3", "sw2"]])
        rows.append((
            f"{attack_us:5.1f}",
            f"{result.offset_error_s * 1e6:7.2f}",
            "DETECTED" if verdict.attack_detected else "silent",
            "+".join(sorted("-".join(sorted(link)) for link in suspects)) or "-",
        ))

    def kernel():
        network = _network()
        DelayAttack("sw1", "sw2", 10e-6).apply(network)
        return CyclicAsymmetryDetector(network).measure_cycle(["gm", "sw1", "sw2"])

    assert benchmark(kernel).attack_detected
    show("EXT-5 — PTP asymmetric delay attack: clock error and PTPsec detection",
         rows, header=("attack (us)", "clock error (us)", "cyclic check",
                       "localized link"))
    assert rows[0][2] == "silent"          # no false positive
    assert rows[-1][2] == "DETECTED"
    assert "sw1-sw2" in rows[-1][3]
