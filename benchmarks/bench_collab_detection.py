"""EXP-C2 — secure collaborative perception (paper §VII-B).

Regenerates the section's two claims as measurements:

* external vs internal attacker outcome under a secure channel
  ("secure communication alone is insufficient");
* internal-fabrication detection as a function of **redundancy** — the
  number of honest vehicles covering the contested spot ("such
  redundancy may not always be available").
"""

from repro.collab.attacks import ExternalInjector, InternalFabricator
from repro.collab.detection import SecureCollabFusion
from repro.collab.perception import CollabVehicle, PerceptionWorld, WorldObject


def _world(n_vehicles, spacing=15.0):
    objects = [WorldObject(1, 10.0, 10.0)]
    vehicles = [CollabVehicle(f"v{i}", x=i * spacing, y=0.0)
                for i in range(n_vehicles)]
    return PerceptionWorld(objects, vehicles)


def test_expc2_external_vs_internal(benchmark, show):
    world = _world(4)
    fusion = SecureCollabFusion(world)

    external = ExternalInjector(n_ghosts=5)
    ext_report = fusion.fuse(world.collect_shares() + external.forge_shares())

    insider = InternalFabricator(world.vehicles[0], ghost_positions=((25.0, 25.0),))
    fusion_no_xval = SecureCollabFusion(_world(4))
    fusion_no_xval.config = type(fusion.config)(cross_validate=False, quorum=1)
    naive_report = fusion_no_xval.run_rounds(
        1, lambda objs: insider.malicious_shares(objs))[0]

    fusion_xval = SecureCollabFusion(_world(4))
    xval_report = benchmark(
        lambda: fusion_xval.run_rounds(1, lambda objs: insider.malicious_shares(objs))[0])

    rows = [
        ("external injector vs secure channel",
         ext_report.dropped_unauthenticated, ext_report.ghosts_accepted),
        ("internal fabricator vs secure channel only", 0,
         naive_report.ghosts_accepted),
        ("internal fabricator vs redundancy cross-validation", 0,
         xval_report.ghosts_accepted),
    ]
    show("§VII-B — attacker class vs defense (shares dropped / ghosts accepted)",
         rows, header=("attack vs defense", "dropped", "ghosts accepted"))
    assert ext_report.ghosts_accepted == 0
    assert naive_report.ghosts_accepted >= 1
    assert xval_report.ghosts_accepted == 0


def test_expc2_subtle_offset_insider(benchmark, show):
    """The harder insider of [48]: constant position offsets instead of
    ghosts — invisible to ghost/quorum checks, exposed by residual-bias
    analysis."""
    import numpy as np

    from repro.collab.attacks import PositionOffsetAttacker
    from repro.collab.detection import member_bias_estimates

    world = _world(4, spacing=12.0)
    attacker = PositionOffsetAttacker(world.vehicles[0], offset_x=2.0)

    def collect_biases():
        rounds = []
        for _ in range(10):
            shares = [s for v in world.vehicles[1:] for s in v.sense(world.objects)]
            shares.extend(attacker.malicious_shares(world.objects))
            rounds.append(shares)
        return member_bias_estimates(rounds)

    biases = benchmark(collect_biases)
    rows = [
        (member, f"{bias[0]:+.2f}", f"{bias[1]:+.2f}",
         f"{float(np.hypot(*bias)):.2f}",
         "FLAGGED" if float(np.hypot(*bias)) > 1.0 else "ok")
        for member, bias in sorted(biases.items())
    ]
    show("§VII-B — subtle position-offset insider: per-member residual bias "
         "(10 rounds, true offset +2.0 m in x)",
         rows, header=("member", "bias x", "bias y", "|bias|", "verdict"))
    magnitudes = {m: float(np.hypot(*b)) for m, b in biases.items()}
    assert max(magnitudes, key=magnitudes.get) == "v0"
    assert magnitudes["v0"] > 1.0


def test_expc2_detection_vs_redundancy(benchmark, show):
    def ghost_accepted_with_redundancy(n_vehicles: int) -> tuple[int, float]:
        # Ghost placed where `n_vehicles - 1` honest members also look.
        world = _world(n_vehicles, spacing=5.0)
        fusion = SecureCollabFusion(world)
        insider = InternalFabricator(world.vehicles[0],
                                     ghost_positions=((25.0, 25.0),))
        reports = fusion.run_rounds(5, lambda objs: insider.malicious_shares(objs))
        accepted = sum(r.ghosts_accepted for r in reports)
        return accepted, fusion.trust.score("v0")

    rows = []
    for n in (1, 2, 3, 5, 8):
        accepted, trust = ghost_accepted_with_redundancy(n)
        rows.append((n, n - 1, accepted, f"{trust:.2f}"))
    benchmark(ghost_accepted_with_redundancy, 4)
    show("§VII-B — internal fabrication vs available redundancy "
         "(5 rounds, ghosts accepted + attacker trust after)",
         rows, header=("vehicles", "honest witnesses", "ghosts accepted",
                       "attacker trust"))

    lone = ghost_accepted_with_redundancy(1)
    redundant = ghost_accepted_with_redundancy(5)
    # Without redundancy the insider wins every round; with redundancy
    # the ghost is rejected and the insider loses trust.
    assert lone[0] == 5
    assert redundant[0] == 0
    assert redundant[1] < 0.5
