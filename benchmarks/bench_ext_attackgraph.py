"""EXT-8 — formal attack-path reasoning and minimal hardening (§V-C).

Extension experiment for the paper's "ability to reason formally about
security properties": probabilistic attack paths to the safety-critical
functions of the Fig. 9 architecture, the compromise-probability
estimate before/after a unified security framework, and the minimal
interface cut that disconnects every entry point — plus the zone
gateway's default-deny containment of cross-zone masquerade.
"""

from repro.core.attackgraph import AttackGraph
from repro.ivn.gateway import GatewayFilter
from repro.sos.maas import build_maas_sos


def test_ext8_attack_paths_and_cut(benchmark, show):
    open_model = build_maas_sos().to_system_model()
    secured_model = build_maas_sos(secured_interfaces=True).to_system_model()
    graph = AttackGraph(open_model)
    secured_graph = AttackGraph(secured_model)

    target = "safety-functions"
    path = graph.most_likely_path(target)
    p_open = benchmark(graph.compromise_probability, target)
    p_secured = secured_graph.compromise_probability(target)
    cut = graph.minimal_hardening_cut(target)

    rows = [
        ("most likely path", " -> ".join(path.nodes)),
        ("its success probability", f"{path.probability:.3f}"),
        ("compromise probability (top-5 paths)", f"{p_open:.3f}"),
        ("after unified security framework", f"{p_secured:.3f}"),
        ("minimal hardening cut (interfaces)", len(cut)),
        ("cut edges", "; ".join(f"{u}->{v}" for u, v in sorted(cut))),
    ]
    show("EXT-8 / §V-C — attack paths to the safety functions", rows,
         header=("metric", "value"))
    assert path is not None and path.probability > 0
    assert p_secured < p_open
    assert cut


def test_ext8_gateway_containment(benchmark, show):
    permissive = GatewayFilter("permissive")
    permissive.allow("zoneA", "backbone", 0x000, 0x7FF)
    minimal = GatewayFilter("minimal")
    minimal.allow("zoneA", "backbone", 0x100, 0x10F)

    def spoof_attempts(gateway):
        # A compromised zone-A ECU tries every 11-bit id cross-zone.
        return sum(gateway.check("zoneA", "backbone", can_id).forwarded
                   for can_id in range(0x800))

    through_permissive = spoof_attempts(permissive)
    through_minimal = benchmark(spoof_attempts, minimal)
    rows = [
        ("allow-everything gateway", through_permissive, "2048 ids spoofable cross-zone"),
        ("minimal whitelist gateway", through_minimal, "only the zone's own 16 ids pass"),
    ]
    show("EXT-8 — cross-zone masquerade containment at the zone gateway",
         rows, header=("policy", "ids forwarded", "note"))
    assert through_permissive == 0x800
    assert through_minimal == 16
