"""BENCH-FAULTS — the fault injector's cost on the hot paths.

Simulators consult the injector wherever a fault *could* strike — per
CAN frame, per ranging exchange — so the no-fault fast path must be
effectively free.  Two claims are pinned here:

1. **The unscheduled probe is near-free.** ``FaultInjector.fires`` for
   a ``(kind, target)`` pair with no scheduled spec is a single dict
   probe; the bench asserts it costs < 5% of the per-frame CAN budget.
2. **Chaos campaigns are cheap.** A full five-scenario campaign on the
   virtual clock completes in tens of milliseconds — faults are modeled,
   never slept — so CI can run the chaos gate on every push.

The measured numbers are exported through the observability layer's
JSON metrics format into ``BENCH_FAULTS.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.faults import (
    FaultInjector,
    FaultKind,
    baseline_plan,
    chaos_scenario_names,
    run_chaos_campaign,
)
from repro.obs import MetricsRegistry

N_FRAMES = 400
N_PROBES = 200_000

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _bus_workload(n_frames: int = N_FRAMES) -> None:
    """Saturated CAN segment — the per-frame budget the gate is scaled to."""
    from repro.core.events import Simulator
    from repro.ivn.bus import BusNode, CanBus
    from repro.ivn.frames import CanFrame

    sim = Simulator()
    bus = CanBus(sim)
    bus.attach(BusNode("sender"))
    bus.attach(BusNode("receiver"))
    frame = CanFrame(0x100, b"\x11" * 8)
    for _ in range(n_frames):
        bus.send("sender", frame)
    sim.run()


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _probe_cost_s(iterations: int = N_PROBES) -> float:
    """Per-call cost of the no-fault fast path (nothing scheduled)."""
    injector = FaultInjector(baseline_plan(), base_seed=0)
    fired = False
    t0 = time.perf_counter()
    for _ in range(iterations):
        # zonal-can never has a babbling-idiot spec in the baseline plan,
        # so this is the one-dict-probe miss every hot path pays
        fired |= injector.fires(FaultKind.IVN_BABBLING_IDIOT, "zonal-can", 9.0)
    elapsed = time.perf_counter() - t0
    assert not fired and injector.count == 0
    return elapsed / iterations


def _loop_floor_s(iterations: int = N_PROBES) -> float:
    injector_count = 0
    t0 = time.perf_counter()
    for _ in range(iterations):
        pass
    assert injector_count == 0
    return (time.perf_counter() - t0) / iterations


def _export(registry: MetricsRegistry) -> Path:
    path = _REPO_ROOT / "BENCH_FAULTS.json"
    path.write_text(json.dumps(registry.to_json_dict(), indent=2) + "\n")
    return path


def test_unscheduled_probe_is_within_the_frame_budget(show):
    """The acceptance gate: the no-fault fast path < 5% of per-frame work."""
    frame_s = _best_of(_bus_workload) / N_FRAMES
    probe_s = max(0.0, _probe_cost_s() - _loop_floor_s())
    overhead = probe_s / frame_s

    campaign_t0 = time.perf_counter()
    document = run_chaos_campaign(chaos_scenario_names(), "baseline",
                                  base_seed=0)
    campaign_s = time.perf_counter() - campaign_t0

    registry = MetricsRegistry()
    registry.gauge("bench.faults.probe.ns_per_check").set(probe_s * 1e9)
    registry.gauge("bench.faults.bus.ns_per_frame").set(frame_s * 1e9)
    registry.gauge("bench.faults.probe.frame_budget_fraction").set(overhead)
    registry.gauge("bench.faults.campaign.ms_five_scenarios").set(
        campaign_s * 1e3)
    registry.gauge("bench.faults.campaign.faults_injected").set(
        float(document["summary"]["faultsInjected"]))
    path = _export(registry)

    show("BENCH-FAULTS — injector cost on the hot paths",
         [("no-fault probe", f"{probe_s * 1e9:9.1f} ns",
           f"{overhead:6.2%} of frame"),
          ("can-bus frame", f"{frame_s * 1e9:9.0f} ns", "-"),
          ("chaos campaign (5 scenarios)", f"{campaign_s * 1e3:9.1f} ms",
           f"{document['summary']['faultsInjected']} faults")],
         header=("path", "cost", "note"))
    assert overhead < 0.05, (
        f"no-fault probe costs {overhead:.1%} of the per-frame budget "
        f"(probe {probe_s * 1e9:.1f} ns, frame {frame_s * 1e9:.0f} ns)")
    assert path.exists()


def test_armed_window_still_replays_identically(show):
    """Sanity: the timed path stays deterministic under repetition."""
    sequences = []
    for _ in range(2):
        injector = FaultInjector(baseline_plan(), base_seed=0)
        sequences.append([
            injector.fires(FaultKind.IVN_FRAME_DROP, "zonal-can", float(t))
            for t in range(8, 20)])
    show("BENCH-FAULTS — armed-window determinism",
         [("fires in [8, 20)", sum(sequences[0]), len(sequences[0]))],
         header=("window", "fired", "opportunities"))
    assert sequences[0] == sequences[1]
    assert any(sequences[0])
