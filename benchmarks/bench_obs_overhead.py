"""BENCH-OBS — the observability layer's cost on the hot paths.

Two claims are pinned here, per the ``repro.obs`` design contract:

1. **Disabled mode is near-free.** Call sites guard every hook with one
   ``OBS.enabled`` attribute read, so a disabled run pays a slot read
   and a branch per hook.  The bench times the guard itself and the
   per-frame CAN-bus hot path, and asserts the guards account for < 5%
   of per-frame work.
2. **Enabled mode stays usable.** Instrumented-vs-disabled throughput is
   measured on the CAN-bus and UWB-ranging hot paths and reported — the
   profiling tax you pay only when you ask for a trace.

The measured numbers are exported through the observability layer's own
JSON metrics format into ``BENCH_OBS.json`` at the repo root, seeding
the benchmark trajectory later perf PRs extend.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs import MetricsRegistry
from repro.obs.runtime import OBS, instrumented

#: Guard evaluations per bus frame: one in send(), one in the delivery
#: completion (each guarding an emit + counter/histogram update).
GUARDS_PER_FRAME = 2
N_FRAMES = 400
N_RANGINGS = 2000

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _bus_workload(n_frames: int = N_FRAMES) -> None:
    """Saturated CAN segment: every frame queued up front, arbitration
    and delivery drain the queue — the Fig. 3 hot path."""
    from repro.core.events import Simulator
    from repro.ivn.bus import BusNode, CanBus
    from repro.ivn.frames import CanFrame

    sim = Simulator()
    bus = CanBus(sim)
    bus.attach(BusNode("sender"))
    bus.attach(BusNode("receiver"))
    frame = CanFrame(0x100, b"\x11" * 8)
    for _ in range(n_frames):
        bus.send("sender", frame)
    sim.run()


def _ranging_workload(n: int = N_RANGINGS) -> None:
    """Back-to-back DS-TWR exchanges — the Fig. 2 hot path."""
    from repro.phy.ranging import ds_twr

    for _ in range(n):
        ds_twr(10.0, responder_drift_ppm=20.0)


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _guard_cost_s(iterations: int = 200_000) -> float:
    """Per-evaluation cost of the disabled-mode guard, on the real OBS."""
    obs = OBS
    assert not obs.enabled
    sink = 0
    t0 = time.perf_counter()
    for _ in range(iterations):
        if obs.enabled:
            sink += 1  # pragma: no cover - disabled mode never reaches this
    elapsed = time.perf_counter() - t0
    assert sink == 0
    return elapsed / iterations


def _loop_floor_s(iterations: int = 200_000) -> float:
    """Cost of the bare measurement loop, subtracted from the guard time."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        pass
    return (time.perf_counter() - t0) / iterations


def _measure(workload, n_items: int) -> tuple[float, float]:
    """(disabled, enabled) per-item seconds for one workload."""
    OBS.disable()
    disabled = _best_of(workload) / n_items
    with instrumented():
        enabled = _best_of(workload) / n_items
    OBS.disable()
    return disabled, enabled


def _export(registry: MetricsRegistry) -> Path:
    path = _REPO_ROOT / "BENCH_OBS.json"
    path.write_text(json.dumps(registry.to_json_dict(), indent=2) + "\n")
    return path


def test_disabled_overhead_on_can_bus_hot_path(show):
    """The acceptance gate: disabled-mode guards < 5% of per-frame work."""
    disabled_s, enabled_s = _measure(_bus_workload, N_FRAMES)
    guard_s = max(0.0, _guard_cost_s() - _loop_floor_s())
    overhead = GUARDS_PER_FRAME * guard_s / disabled_s

    rng_disabled_s, rng_enabled_s = _measure(_ranging_workload, N_RANGINGS)

    registry = MetricsRegistry()
    registry.gauge("bench.obs.bus.ns_per_frame_disabled").set(disabled_s * 1e9)
    registry.gauge("bench.obs.bus.ns_per_frame_enabled").set(enabled_s * 1e9)
    registry.gauge("bench.obs.bus.disabled_overhead_fraction").set(overhead)
    registry.gauge("bench.obs.guard.ns_per_check").set(guard_s * 1e9)
    registry.gauge("bench.obs.ranging.ns_per_call_disabled").set(rng_disabled_s * 1e9)
    registry.gauge("bench.obs.ranging.ns_per_call_enabled").set(rng_enabled_s * 1e9)
    path = _export(registry)

    show("BENCH-OBS — instrumentation overhead on the hot paths",
         [("can-bus frame", f"{disabled_s * 1e9:9.0f}", f"{enabled_s * 1e9:9.0f}",
           f"{enabled_s / disabled_s:5.2f}x"),
          ("ds-twr ranging", f"{rng_disabled_s * 1e9:9.0f}",
           f"{rng_enabled_s * 1e9:9.0f}",
           f"{rng_enabled_s / rng_disabled_s:5.2f}x"),
          ("guard check", f"{guard_s * 1e9:9.1f}", "-", "-")],
         header=("hot path", "disabled ns", "enabled ns", "ratio"))
    assert overhead < 0.05, (
        f"disabled-mode guards cost {overhead:.1%} of the per-frame budget "
        f"(guard {guard_s * 1e9:.1f} ns, frame {disabled_s * 1e9:.0f} ns)")
    assert path.exists()


def test_enabled_mode_collects_on_both_paths(show):
    """Sanity: the same workloads produce events/metrics when enabled."""
    with instrumented() as obs:
        _bus_workload(50)
        _ranging_workload(50)
        frames = obs.metrics.counter("ivn.bus.frames_delivered").value
        rangings = obs.metrics.counter("phy.ranging.measurements").value
    show("BENCH-OBS — enabled-mode collection sanity",
         [("frames delivered", frames), ("rangings recorded", rangings)],
         header=("counter", "value"))
    assert frames == 50
    assert rangings == 50


def test_sampled_mode_cuts_enabled_overhead(show):
    """The sampling gate: 1-in-8 emission cuts the enabled-mode tax.

    ``instrumented(sample_every=8)`` admits one span/event observation
    in eight on the high-rate hot paths while exact counters keep
    counting every item.  The pin: the sampled run keeps < 70% of the
    full enabled-mode overhead (measured above disabled-mode cost) on
    the ranging hot path — in practice it keeps far less, but the gate
    must stay robust on noisy CI boxes.
    """
    disabled_s, enabled_s = _measure(_ranging_workload, N_RANGINGS)
    with instrumented(sample_every=8):
        sampled_s = _best_of(_ranging_workload) / N_RANGINGS
    OBS.disable()

    with instrumented(sample_every=8) as obs:
        _ranging_workload(100)
        counted = obs.metrics.counter("phy.ranging.measurements").value
        admitted = len(obs.events)

    full_overhead = max(enabled_s - disabled_s, 1e-12)
    sampled_overhead = max(sampled_s - disabled_s, 0.0)
    ratio = sampled_overhead / full_overhead

    # Merge into BENCH_OBS.json rather than rewriting it — the overhead
    # test seeds the file with the full-rate gauges.
    path = _REPO_ROOT / "BENCH_OBS.json"
    document = (json.loads(path.read_text()) if path.exists()
                else {"counters": {}, "gauges": {}, "histograms": {}})
    document["gauges"]["bench.obs.ranging.ns_per_call_sampled_8"] = sampled_s * 1e9
    document["gauges"]["bench.obs.ranging.sampled_overhead_fraction"] = ratio
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    show("BENCH-OBS — 1-in-8 sampling on the ranging hot path",
         [("disabled", f"{disabled_s * 1e9:9.0f}", "-"),
          ("enabled (full)", f"{enabled_s * 1e9:9.0f}", "1.00"),
          ("enabled (1-in-8)", f"{sampled_s * 1e9:9.0f}", f"{ratio:.2f}")],
         header=("mode", "ns/call", "overhead kept"))
    assert counted == 100, "sampling must never touch exact counters"
    assert admitted == 13, f"expected 13 of 100 events admitted, got {admitted}"
    assert ratio < 0.7, (
        f"1-in-8 sampling kept {ratio:.0%} of the enabled-mode overhead "
        f"(sampled {sampled_s * 1e9:.0f} ns vs full {enabled_s * 1e9:.0f} ns)")
