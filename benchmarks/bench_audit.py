"""BENCH-AUDIT — cost and stability of the self-audit engine.

The audit runs on every CI push and is meant to be cheap enough that
nobody ever hesitates to add a checker.  This bench pins three
properties:

1. **Full-tree cost.** Parsing every module under ``src/repro`` once
   plus running the whole catalog must complete well under a second.
2. **Parse-once contract.** The shared context is the expensive part;
   running the catalog over an already-parsed context must cost a
   fraction of the parse, so adding checkers stays near-free.
3. **Byte-identical output.** The JSON document for the same tree must
   not vary across runs — the audit is itself subject to the repo's
   determinism promise.

The measured numbers are exported through the observability layer's
JSON metrics format into ``BENCH_AUDIT.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.audit import AuditContext, AuditEngine, validate_audit_dict
from repro.obs import MetricsRegistry

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Parse + full catalog over the shipped tree, per run (seconds) —
#: generous on CI hardware (the parse dominates; the catalog itself
#: runs in a fraction of it), tight enough to catch a checker that
#: starts re-walking the tree pathologically.
FULL_TREE_BUDGET_S = 1.5


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_full_tree_audit_cost(show, benchmark):
    engine = AuditEngine()
    registry = MetricsRegistry()

    parse_s = _best_of(AuditContext.parse)
    context = AuditContext.parse()
    check_s = _best_of(lambda: engine.run(context))
    full_s = _best_of(lambda: AuditEngine().run(AuditContext.parse()))
    report = engine.run(context)

    registry.gauge("bench.audit.parse_ms").set(parse_s * 1e3)
    registry.gauge("bench.audit.check_ms").set(check_s * 1e3)
    registry.gauge("bench.audit.full_tree_ms").set(full_s * 1e3)
    registry.gauge("bench.audit.modules").set(float(report.modules_audited))
    registry.gauge("bench.audit.checkers").set(float(len(report.rules_run)))
    registry.gauge("bench.audit.findings").set(float(len(report.findings)))
    registry.gauge("bench.audit.suppressed").set(float(len(report.suppressed)))
    path = _REPO_ROOT / "BENCH_AUDIT.json"
    path.write_text(json.dumps(registry.to_json_dict(), indent=2) + "\n")

    show("BENCH-AUDIT — full-tree self-audit",
         [("parse (shared context)", f"{parse_s * 1e3:7.2f}"),
          ("catalog over parsed context", f"{check_s * 1e3:7.2f}"),
          ("parse + catalog", f"{full_s * 1e3:7.2f}"),
          ("modules", report.modules_audited),
          ("checkers", len(report.rules_run)),
          ("findings", len(report.findings))],
         header=("stage", "ms"))
    benchmark(lambda: engine.run(context))
    assert full_s < FULL_TREE_BUDGET_S, f"full audit took {full_s:.2f}s"
    # the parse-once contract: the catalog must not dominate the parse
    assert check_s < parse_s * 3, (
        f"catalog ({check_s * 1e3:.1f}ms) should stay within ~3x the parse "
        f"({parse_s * 1e3:.1f}ms); a checker is re-walking the tree "
        "pathologically")


def test_output_is_byte_identical(show):
    documents = []
    for _ in range(3):
        engine = AuditEngine()
        report = engine.run(AuditContext.parse())
        document = report.to_json_dict(engine.checkers)
        validate_audit_dict(document)
        documents.append(json.dumps(document, sort_keys=True))
    assert documents[0] == documents[1] == documents[2]
    show("BENCH-AUDIT — determinism",
         [("runs compared", 3),
          ("document bytes", len(documents[0])),
          ("byte-identical", "yes")],
         header=("property", "value"))


def test_shipped_tree_gates_clean():
    report = AuditEngine().run()
    assert report.exit_code() == 0, report.to_table()
