"""EXP-R1 — holistic multi-layer security (paper §VIII).

Regenerates the closing argument as a measured ablation: enabling the
paper's defenses one layer at a time and counting residual attacks —
"security measures implemented at different layers will not be effective
unless they are designed to work in synergy" — plus the REACT-style
response engine escalating through a multi-alert incident.
"""

from repro.core.analysis import LayeredSecurityAnalyzer, ablate_layers
from repro.core.layers import Layer
from repro.core.response import ResponseEngine, SecurityAlert, Severity
from repro.core.threats import default_catalog


def test_expr1_layer_ablation(benchmark, show):
    catalog = default_catalog()
    rows_raw = benchmark(ablate_layers, catalog)
    rows = [(title, residual, f"{coverage:.0%}")
            for title, residual, coverage in rows_raw]
    show("§VIII — defenses enabled layer by layer: residual attacks",
         rows, header=("+ layer enabled", "residual attacks", "coverage"))
    assert rows_raw[-1][1] == 0

    # The weakest-layer effect: strong network defenses alone leave the
    # remote attacker plenty of targets at other layers.
    analyzer = LayeredSecurityAnalyzer(catalog)
    network_only = {d.name for d in catalog.defenses_on_layer(Layer.NETWORK)}
    remote_attacks = analyzer.exploitable_by(0, network_only)
    assert remote_attacks  # still exploitable remotely


def test_expr1_response_escalation(benchmark, show):
    def incident():
        engine = ResponseEngine(escalation_threshold=2,
                                critical_components={"brake-ecu"})
        decisions = []
        for t in range(6):
            decisions.append(engine.handle(SecurityAlert(
                float(t), Layer.NETWORK, "brake-ecu", "can-masquerade",
                Severity.WARNING if t < 3 else Severity.CRITICAL)))
        return engine, decisions

    engine, decisions = benchmark(incident)
    rows = [(f"t={d.alert.time:.0f}", d.alert.severity.name,
             d.action.name, d.escalation_level) for d in decisions]
    show("§VIII — intrusion response escalating through an incident "
         "(safety-critical brake ECU)",
         rows, header=("time", "severity", "response", "escalation"))
    assert decisions[-1].action >= decisions[0].action
    assert "brake-ecu" in engine.isolated_components()
