"""Legacy setup shim: the offline environment lacks the `wheel` package,
so editable installs fall back to `setup.py develop` via --no-use-pep517."""

from setuptools import setup

setup()
