"""The campaign JSON document: schema validation and renderers."""

import copy
import json

import pytest

from repro.lint.report import SchemaError
from repro.redteam import (plan_scenario, render_campaigns, render_summary,
                           run_redteam_campaign, validate_redteam_dict)

ALL_SCENARIOS = ["pkes-legacy", "onboard-insecure", "onboard-hardened",
                 "cariad-breach", "maas-platform"]


@pytest.fixture(scope="module")
def document():
    return run_redteam_campaign(ALL_SCENARIOS, base_seed=7)


class TestDocument:
    def test_validates_against_schema(self, document):
        validate_redteam_dict(document)

    def test_summary_reflects_scenarios(self, document):
        summary = document["summary"]
        assert summary["scenarioCount"] == len(ALL_SCENARIOS)
        assert summary["defeatedScenarios"] == ["onboard-hardened"]
        assert summary["campaignCount"] >= 4
        cheapest = summary["cheapest"]
        assert cheapest["totalCost"] == min(
            c["totalCost"] for s in document["scenarios"]
            for c in s["campaigns"])

    def test_base_seed_carried_verbatim(self, document):
        assert document["baseSeed"] == 7

    def test_steps_carry_defense_and_grants(self, document):
        for scenario in document["scenarios"]:
            for campaign in scenario["campaigns"]:
                for step in campaign["steps"]:
                    assert step["defense"]
                    assert all(":" in grant for grant in step["grants"])

    def test_byte_identical_per_scenario_and_seed(self):
        first = json.dumps(run_redteam_campaign(ALL_SCENARIOS, base_seed=7),
                           sort_keys=True)
        second = json.dumps(run_redteam_campaign(ALL_SCENARIOS, base_seed=7),
                            sort_keys=True)
        assert first == second


class TestSchemaRejections:
    def _broken(self, document, mutate):
        broken = copy.deepcopy(document)
        mutate(broken)
        with pytest.raises(SchemaError):
            validate_redteam_dict(broken)

    def test_rejects_wrong_version(self, document):
        self._broken(document, lambda d: d.update(version="2.0"))

    def test_rejects_wrong_tool_name(self, document):
        self._broken(document,
                     lambda d: d["tool"].update(name="other-tool"))

    def test_rejects_extra_top_level_key(self, document):
        self._broken(document, lambda d: d.update(extra=1))

    def test_rejects_inconsistent_defeated_flag(self, document):
        def mutate(d):
            d["scenarios"][0]["defeated"] = \
                not d["scenarios"][0]["defeated"]
        self._broken(document, mutate)

    def test_rejects_wrong_campaign_count(self, document):
        self._broken(document,
                     lambda d: d["summary"].update(campaignCount=999))

    def test_rejects_total_cost_mismatch(self, document):
        def mutate(d):
            for scenario in d["scenarios"]:
                if scenario["campaigns"]:
                    scenario["campaigns"][0]["totalCost"] += 1.0
                    return
        self._broken(document, mutate)

    def test_rejects_bad_rank(self, document):
        def mutate(d):
            for scenario in d["scenarios"]:
                if scenario["campaigns"]:
                    scenario["campaigns"][0]["rank"] = 99
                    return
        self._broken(document, mutate)

    def test_rejects_unknown_layer_in_step(self, document):
        def mutate(d):
            for scenario in d["scenarios"]:
                if scenario["campaigns"]:
                    scenario["campaigns"][0]["steps"][0]["layer"] = "warp"
                    return
        self._broken(document, mutate)


class TestRenderers:
    def test_summary_names_cheapest_campaign(self):
        text = render_summary(plan_scenario("pkes-legacy"))
        assert "pkes-legacy" in text
        assert "cheapest: keyfob => immobilizer" in text

    def test_summary_marks_defeated_target(self):
        text = render_summary(plan_scenario("onboard-hardened"))
        assert "DEFEATED" in text

    def test_campaigns_render_hops_and_defenses(self):
        text = render_campaigns(plan_scenario("pkes-legacy"))
        assert "#1 keyfob => immobilizer" in text
        assert "defeated by:" in text
        assert "D1 " in text  # the availability disruption renders too

    def test_top_limits_rendered_campaigns(self):
        result = plan_scenario("onboard-insecure")
        full = render_campaigns(result)
        top = render_campaigns(result, top=1)
        assert full.count("#") > top.count("#")
        assert "#1 " in top
