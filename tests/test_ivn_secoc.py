"""Tests for SECOC: freshness management, truncated MACs, replay defeat."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ivn.attacks import ReplayAttacker, blind_forgery_attempts
from repro.ivn.secoc import (
    PROFILE_1,
    PROFILE_3,
    FreshnessManager,
    SecOcChannel,
    SecOcProfile,
    SecuredPdu,
)

KEY = b"\x55" * 16


class TestProfiles:
    def test_profile1_classic_can_friendly(self):
        # 8-bit FV + 24-bit MAC = 4 bytes of trailer: fits classic CAN
        # alongside 4 payload bytes.
        assert PROFILE_1.overhead_bytes == 4

    def test_forgery_probability(self):
        assert PROFILE_1.forgery_probability == pytest.approx(2.0**-24)
        assert PROFILE_3.forgery_probability == pytest.approx(2.0**-64)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            SecOcProfile("bad", freshness_bits=8, mac_bits=0)
        with pytest.raises(ValueError):
            SecOcProfile("bad", freshness_bits=8, mac_bits=12)
        with pytest.raises(ValueError):
            SecOcProfile("bad", freshness_bits=65, mac_bits=24)


class TestFreshnessManager:
    def test_tx_counters_monotone_per_pdu(self):
        manager = FreshnessManager(8)
        assert manager.next_tx(1) == 1
        assert manager.next_tx(1) == 2
        assert manager.next_tx(2) == 1  # independent per PDU id

    def test_reconstruction_simple(self):
        manager = FreshnessManager(8)
        manager.commit_rx(1, 100)
        assert manager.reconstruct(1, 101 & 0xFF) == 101

    def test_reconstruction_across_wraparound(self):
        manager = FreshnessManager(8)
        manager.commit_rx(1, 250)
        # Truncated value 5 < 250 & 0xFF: must roll into the next window.
        assert manager.reconstruct(1, 5) == 256 + 5

    def test_commit_requires_increase(self):
        manager = FreshnessManager(8)
        manager.commit_rx(1, 10)
        with pytest.raises(ValueError):
            manager.commit_rx(1, 10)

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            FreshnessManager(0)

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=1000), st.integers(min_value=1, max_value=20))
    def test_reconstruct_inverts_truncate_property(self, start, step):
        manager = FreshnessManager(8)
        manager.commit_rx(7, start)
        nxt = start + step
        if step < 256:  # within one window the reconstruction is exact
            assert manager.reconstruct(7, nxt & 0xFF) == nxt


class TestSecOcChannel:
    def test_secure_verify_roundtrip(self):
        tx = SecOcChannel(KEY)
        rx = SecOcChannel(KEY)
        pdu = tx.secure(0x100, b"\x01\x02\x03\x04")
        assert rx.verify(pdu)

    def test_sequence_of_pdus(self):
        tx = SecOcChannel(KEY)
        rx = SecOcChannel(KEY)
        for i in range(20):
            assert rx.verify(tx.secure(0x100, bytes([i])))

    def test_tampered_payload_rejected(self):
        tx = SecOcChannel(KEY)
        rx = SecOcChannel(KEY)
        pdu = tx.secure(0x100, b"\x01\x02")
        forged = SecuredPdu(pdu.pdu_id, b"\xff\x02", pdu.truncated_freshness,
                            pdu.truncated_mac)
        assert not rx.verify(forged)

    def test_wrong_key_rejected(self):
        tx = SecOcChannel(KEY)
        rx = SecOcChannel(b"\x56" * 16)
        assert not rx.verify(tx.secure(0x100, b"\x01"))

    def test_replay_rejected_by_freshness(self):
        tx = SecOcChannel(KEY)
        rx = SecOcChannel(KEY)
        attacker = ReplayAttacker()
        pdu = tx.secure(0x100, b"\x01")
        attacker.observe(pdu)
        assert rx.verify(pdu)
        # Verbatim replay: the receiver reconstructs a *future* freshness
        # for the stale truncation, so the MAC no longer matches.
        for replayed in attacker.replay_all():
            assert not rx.verify(replayed)

    def test_cross_pdu_confusion_rejected(self):
        tx = SecOcChannel(KEY)
        rx = SecOcChannel(KEY)
        pdu = tx.secure(0x100, b"\x01")
        moved = SecuredPdu(0x200, pdu.payload, pdu.truncated_freshness,
                           pdu.truncated_mac)
        assert not rx.verify(moved)

    def test_wire_payload_length(self):
        tx = SecOcChannel(KEY, PROFILE_1)
        pdu = tx.secure(0x100, b"\x01\x02\x03\x04")
        assert len(pdu.wire_payload(PROFILE_1)) == 4 + PROFILE_1.overhead_bytes


class TestBlindForgery:
    def test_short_mac_hit_rate_matches_theory(self):
        tiny = SecOcProfile("tiny", freshness_bits=8, mac_bits=8)
        hits = blind_forgery_attempts(tiny, 20000, seed_label="f8")
        expected = 20000 / 256
        assert 0.4 * expected <= hits <= 2.0 * expected

    def test_long_mac_never_hits_in_small_sample(self):
        hits = blind_forgery_attempts(PROFILE_3, 5000, seed_label="f64")
        assert hits == 0

    def test_negative_attempts_rejected(self):
        with pytest.raises(ValueError):
            blind_forgery_attempts(PROFILE_1, -1)
