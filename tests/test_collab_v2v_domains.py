"""Tests for signed V2V shares and the cross-domain profiles."""

import pytest

from repro.collab.perception import CollabVehicle, PerceptionWorld, SharedDetection, WorldObject
from repro.collab.v2v import SignedShare, V2vChannel
from repro.core.domains import DOMAIN_PROFILES, build_domain_model
from repro.core.layers import Layer
from repro.core.metrics import attack_surface
from repro.core.threats import default_catalog
from repro.ssi.did import KeyPair
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.wallet import Wallet


@pytest.fixture()
def v2v_world():
    registry = VerifiableDataRegistry()
    channel = V2vChannel(registry)
    wallets = {name: Wallet.create(name, registry) for name in ("car-a", "car-b")}
    return registry, channel, wallets


class TestSignedShares:
    def test_signed_share_verifies(self, v2v_world):
        _, channel, wallets = v2v_world
        detection = SharedDetection("car-a", 10.0, 20.0)
        share = V2vChannel.sign(wallets["car-a"], detection, round_index=0)
        verified = channel.verify(share)
        assert verified is not None
        assert verified.x == 10.0
        assert channel.stats["verified"] == 1

    def test_unregistered_sender_rejected(self, v2v_world):
        _, channel, _ = v2v_world
        ghost_key = KeyPair.from_seed_label("ghost-attacker")
        share = SignedShare("did:vreg:ghost", 5.0, 5.0, 0, b"")
        share = SignedShare(share.reporter_did, share.x, share.y, 0,
                            ghost_key.sign(share.signing_input()))
        assert channel.verify(share) is None
        assert channel.stats["rejected"] == 1

    def test_forged_signature_rejected(self, v2v_world):
        _, channel, wallets = v2v_world
        detection = SharedDetection("car-a", 10.0, 20.0)
        share = V2vChannel.sign(wallets["car-a"], detection, 0)
        tampered = SignedShare(share.reporter_did, 99.0, share.y,
                               share.round_index, share.signature)
        assert channel.verify(tampered) is None

    def test_impersonation_rejected(self, v2v_world):
        # car-b signs a share claiming to be car-a: the registry key for
        # car-a does not verify car-b's signature.
        _, channel, wallets = v2v_world
        draft = SignedShare(str(wallets["car-a"].did), 1.0, 2.0, 0, b"")
        forged = SignedShare(draft.reporter_did, draft.x, draft.y, 0,
                             wallets["car-b"].keypair.sign(draft.signing_input()))
        assert channel.verify(forged) is None

    def test_batch_filters_bad_shares(self, v2v_world):
        _, channel, wallets = v2v_world
        good = V2vChannel.sign(wallets["car-a"], SharedDetection("car-a", 1, 2), 0)
        bad = SignedShare("did:vreg:nobody", 3.0, 4.0, 0, b"\x00" * 64)
        detections = channel.verify_batch([good, bad])
        assert len(detections) == 1

    def test_end_to_end_with_fusion(self, v2v_world):
        # Signed shares flow into the fusion pipeline.
        from repro.collab.detection import SecureCollabFusion

        registry, channel, _ = v2v_world
        vehicles = [CollabVehicle(f"did:vreg:fleet-{i}", x=i * 10.0, y=0.0)
                    for i in range(3)]
        wallets = [Wallet.create(f"fleet-{i}", registry) for i in range(3)]
        world = PerceptionWorld([WorldObject(1, 10.0, 5.0)], vehicles)
        signed = []
        for vehicle, wallet in zip(vehicles, wallets):
            for detection in vehicle.sense(world.objects):
                signed.append(V2vChannel.sign(wallet, detection, 0))
        fusion = SecureCollabFusion(world)
        report = fusion.fuse(channel.verify_batch(signed))
        assert len(report.confirmed) == 1


class TestDomainProfiles:
    def test_all_profiles_cover_every_layer_with_attacks(self):
        # §I's generality claim: each domain has a component at every
        # layer the catalog attacks.
        catalog = default_catalog()
        attacked_layers = {a.layer for a in catalog.attacks.values()}
        for name, profile in DOMAIN_PROFILES.items():
            missing = attacked_layers - profile.layers_covered()
            assert not missing, f"{name} missing layers {missing}"

    @pytest.mark.parametrize("name", sorted(DOMAIN_PROFILES))
    def test_model_builds_and_analyzes(self, name):
        model = build_domain_model(DOMAIN_PROFILES[name])
        report = attack_surface(model)
        assert report.entry_points >= 1
        assert report.reachable_components >= 1

    @pytest.mark.parametrize("name", sorted(DOMAIN_PROFILES))
    def test_securing_interfaces_shrinks_surface_in_every_domain(self, name):
        open_model = build_domain_model(DOMAIN_PROFILES[name])
        secured = build_domain_model(DOMAIN_PROFILES[name], secured=True)
        assert (attack_surface(secured).reachable_components
                <= attack_surface(open_model).reachable_components)

    def test_profiles_have_safety_critical_components(self):
        for profile in DOMAIN_PROFILES.values():
            assert any(c.criticality == 5 for c in profile.components)

    def test_physical_layer_present_everywhere(self):
        for profile in DOMAIN_PROFILES.values():
            assert Layer.PHYSICAL in profile.layers_covered()
