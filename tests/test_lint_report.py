"""Report rendering: golden JSON document, schema validation, tables."""

import pytest

from repro import __version__
from repro.core.entities import Component, SystemModel
from repro.core.layers import Layer
from repro.lint import (AnalysisTarget, Linter, SchemaError, Severity,
                        rules_by_id, validate_report_dict)


def exposed_brake_target():
    """Deterministic one-finding target: SEC005 on component 'ecu'."""
    model = SystemModel("golden")
    model.add_component(Component("ecu", Layer.NETWORK, criticality=5,
                                  exposed=True))
    return AnalysisTarget(name="golden", model=model)


def golden_linter():
    return Linter([rules_by_id()["SEC005"]])


#: The full expected document for the scenario above.  The fingerprint
#: is sha256("SEC005|ecu")[:16] per the documented Finding.fingerprint
#: formula — a change here is a breaking change for stored baselines.
GOLDEN_REPORT = {
    "version": "1.0",
    "tool": {"name": "repro-seclint", "version": __version__},
    "target": "golden",
    "rules": [
        {
            "id": "SEC005",
            "title": "safety-critical component directly exposed",
            "layer": "network",
            "severity": "critical",
            "paperRef": "Fig. 1",
            "remediation": "front safety-critical components with a gateway "
                           "or DMZ; never expose them to external attackers "
                           "directly",
        },
    ],
    "findings": [
        {
            "ruleId": "SEC005",
            "severity": "critical",
            "layer": "network",
            "subject": "ecu",
            "message": "criticality-5 component is itself an external entry point",
            "paperRef": "Fig. 1",
            "remediation": "front safety-critical components with a gateway "
                           "or DMZ; never expose them to external attackers "
                           "directly",
            "fingerprint": "fe42dc25fe32842d",
        },
    ],
    "suppressed": [],
    "summary": {"total": 1, "bySeverity": {"critical": 1}},
}


class TestGoldenReport:
    def test_json_document_matches_golden(self):
        linter = golden_linter()
        report = linter.run(exposed_brake_target())
        assert report.to_json_dict(linter.enabled_rules()) == GOLDEN_REPORT

    def test_golden_document_validates(self):
        validate_report_dict(GOLDEN_REPORT)


class TestSchemaValidation:
    def make_valid(self):
        linter = golden_linter()
        report = linter.run(exposed_brake_target())
        return report.to_json_dict(linter.enabled_rules())

    def test_missing_top_level_key_rejected(self):
        document = self.make_valid()
        del document["summary"]
        with pytest.raises(SchemaError, match="top-level keys"):
            validate_report_dict(document)

    def test_wrong_version_rejected(self):
        document = self.make_valid()
        document["version"] = "9.9"
        with pytest.raises(SchemaError, match="schema version"):
            validate_report_dict(document)

    def test_bad_severity_rejected(self):
        document = self.make_valid()
        document["findings"][0]["severity"] = "catastrophic"
        with pytest.raises(SchemaError, match="bad severity"):
            validate_report_dict(document)

    def test_extra_finding_key_rejected(self):
        document = self.make_valid()
        document["findings"][0]["extra"] = "nope"
        with pytest.raises(SchemaError, match="keys"):
            validate_report_dict(document)

    def test_inconsistent_summary_rejected(self):
        document = self.make_valid()
        document["summary"]["total"] = 7
        with pytest.raises(SchemaError, match="summary.total"):
            validate_report_dict(document)

    def test_severity_counts_must_sum(self):
        document = self.make_valid()
        document["summary"]["bySeverity"] = {"critical": 1, "low": 1}
        with pytest.raises(SchemaError, match="sum"):
            validate_report_dict(document)


class TestTable:
    def test_clean_table_one_liner(self):
        model = SystemModel("fine")
        model.add_component(Component("ecu", Layer.NETWORK, criticality=3))
        report = Linter().run(AnalysisTarget.from_model(model))
        assert "clean" in report.to_table()
        assert "0 findings" in report.to_table()

    def test_findings_table_mentions_rule_and_subject(self):
        linter = golden_linter()
        table = linter.run(exposed_brake_target()).to_table()
        assert "SEC005" in table
        assert "ecu" in table
        assert "critical" in table
        assert "1 finding(s)" in table

    def test_counts_by_severity(self):
        linter = golden_linter()
        report = linter.run(exposed_brake_target())
        assert report.counts_by_severity() == {Severity.CRITICAL: 1}
        assert report.worst_severity() is Severity.CRITICAL
