"""Tests for multi-service mobility SSI and offline tokens ([33], [34])."""

import pytest

from repro.ssi.mobility import (
    MobilityServiceDirectory,
    OfflineTokenBook,
    SpendRecord,
)
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.trust import TrustPolicy
from repro.ssi.wallet import Wallet

NOW = 1_750_000_000.0


@pytest.fixture()
def directory():
    registry = VerifiableDataRegistry()
    policy = TrustPolicy(registry)
    directory = MobilityServiceDirectory(registry, policy)
    for service in ("charging", "parking", "tolling"):
        directory.register_operator(service, Wallet.create(f"op-{service}", registry))
    vehicle = Wallet.create("ev-multi", registry)
    return registry, directory, vehicle


class TestMultiService:
    def test_one_identity_serves_all_services(self, directory):
        _, directory, vehicle = directory
        for service in ("charging", "parking", "tolling"):
            directory.subscribe(vehicle, service, now=NOW)
            assert directory.authorize(vehicle, service, now=NOW + 10), service
        assert directory.services_per_identity(vehicle) == 3

    def test_unsubscribed_service_denied(self, directory):
        _, directory, vehicle = directory
        directory.subscribe(vehicle, "charging", now=NOW)
        assert directory.authorize(vehicle, "charging", now=NOW + 10)
        assert not directory.authorize(vehicle, "parking", now=NOW + 10)

    def test_operators_are_independent_anchors(self, directory):
        registry, directory, vehicle = directory
        # A parking contract signed by the charging operator is rejected:
        # each operator anchors only its own credential type.
        charging_op = directory.operators["charging"]
        vehicle.store(charging_op.issue(
            credential_type="ParkingContract", subject=vehicle.did,
            claims={"service": "parking"}, issued_at=NOW))
        assert not directory.authorize(vehicle, "parking", now=NOW + 10)

    def test_unknown_service_rejected(self, directory):
        registry, directory, _ = directory
        with pytest.raises(ValueError):
            directory.register_operator("teleportation", Wallet.create("op-x", registry))


@pytest.fixture()
def token_world():
    registry = VerifiableDataRegistry()
    issuer = Wallet.create("mobility-bank", registry)
    holder = Wallet.create("ev-wallet", registry)
    book = OfflineTokenBook(issuer, registry)
    return registry, issuer, holder, book


class TestOfflineTokens:
    def test_offline_verification_with_cached_keys(self, token_world):
        _, issuer, holder, book = token_world
        token = book.issue_token(holder, 10)
        proof = book.spend_proof(token, holder, "toll-gate-7")
        assert book.verify_offline(
            token, proof, "toll-gate-7",
            cached_issuer_key=issuer.keypair.public,
            cached_holder_key=holder.keypair.public)

    def test_forged_token_rejected_offline(self, token_world):
        from repro.ssi.mobility import OfflineToken

        _, issuer, holder, book = token_world
        forged = OfflineToken("tok-999", str(issuer.did), str(holder.did),
                              1000, b"\x00" * 64)
        proof = book.spend_proof(forged, holder, "toll-gate-7")
        assert not book.verify_offline(
            forged, proof, "toll-gate-7",
            cached_issuer_key=issuer.keypair.public,
            cached_holder_key=holder.keypair.public)

    def test_stolen_token_unusable_without_holder_key(self, token_world):
        registry, issuer, holder, book = token_world
        thief = Wallet.create("thief", registry)
        token = book.issue_token(holder, 10)
        proof = book.spend_proof(token, thief, "toll-gate-7")
        assert not book.verify_offline(
            token, proof, "toll-gate-7",
            cached_issuer_key=issuer.keypair.public,
            cached_holder_key=holder.keypair.public)

    def test_proof_bound_to_merchant(self, token_world):
        _, issuer, holder, book = token_world
        token = book.issue_token(holder, 10)
        proof = book.spend_proof(token, holder, "merchant-a")
        assert not book.verify_offline(
            token, proof, "merchant-b",
            cached_issuer_key=issuer.keypair.public,
            cached_holder_key=holder.keypair.public)

    def test_double_spend_caught_at_reconciliation(self, token_world):
        # The [34] trade-off: offline double-spend succeeds at both
        # merchants but reconciliation attributes it provably.
        _, issuer, holder, book = token_world
        token = book.issue_token(holder, 10)
        proofs = {m: book.spend_proof(token, holder, m)
                  for m in ("merchant-a", "merchant-b")}
        for merchant, proof in proofs.items():
            assert book.verify_offline(
                token, proof, merchant,
                cached_issuer_key=issuer.keypair.public,
                cached_holder_key=holder.keypair.public)
        records = [SpendRecord(token.token_id, m, str(holder.did), p)
                   for m, p in proofs.items()]
        conflicts = book.reconcile(records)
        assert token.token_id in conflicts
        assert len(conflicts[token.token_id]) == 2

    def test_honest_spends_reconcile_clean(self, token_world):
        _, _, holder, book = token_world
        t1 = book.issue_token(holder, 5)
        t2 = book.issue_token(holder, 5)
        records = [
            SpendRecord(t1.token_id, "a", str(holder.did), b""),
            SpendRecord(t2.token_id, "b", str(holder.did), b""),
        ]
        assert book.reconcile(records) == {}

    def test_value_validation(self, token_world):
        _, _, holder, book = token_world
        with pytest.raises(ValueError):
            book.issue_token(holder, 0)
