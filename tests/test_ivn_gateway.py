"""Tests for zone-gateway frame filtering."""

import pytest

from repro.ivn.gateway import ForwardingRule, GatewayFilter


@pytest.fixture()
def gateway():
    gw = GatewayFilter("zc-left")
    # Zone A's ECUs legitimately publish 0x100-0x10F toward the backbone.
    gw.allow("zoneA", "backbone", 0x100, 0x10F)
    # The backbone may push diagnostics 0x700 into zone A.
    gw.allow("backbone", "zoneA", 0x700)
    return gw


class TestForwarding:
    def test_allowed_id_forwarded(self, gateway):
        decision = gateway.check("zoneA", "backbone", 0x105)
        assert decision.forwarded
        assert decision.rule is not None

    def test_default_deny(self, gateway):
        decision = gateway.check("zoneA", "backbone", 0x200)
        assert not decision.forwarded
        assert "no rule" in decision.reason

    def test_direction_matters(self, gateway):
        assert gateway.check("backbone", "zoneA", 0x700).forwarded
        assert not gateway.check("zoneA", "backbone", 0x700).forwarded

    def test_cross_zone_masquerade_contained(self, gateway):
        # A compromised zone-A ECU spoofs the brake id 0x0A0 (owned by
        # zone B): the gateway drops it at the boundary.
        decision = gateway.check("zoneA", "backbone", 0x0A0)
        assert not decision.forwarded

    def test_stats_counted(self, gateway):
        gateway.check("zoneA", "backbone", 0x100)
        gateway.check("zoneA", "backbone", 0x999)
        assert gateway.stats == {"forwarded": 1, "dropped": 1}


class TestExposure:
    def test_exposure_count(self, gateway):
        assert gateway.exposure_count("zoneA", "backbone") == 16
        assert gateway.exposure_count("backbone", "zoneA") == 1
        assert gateway.exposure_count("zoneB", "backbone") == 0

    def test_reachable_ids(self, gateway):
        assert gateway.reachable_ids("zoneA", "backbone") == [(0x100, 0x10F)]

    def test_minimization_shrinks_exposure(self):
        # The §V-C argument at the gateway: a wide "allow everything"
        # rule vs the minimal per-signal whitelist.
        permissive = GatewayFilter("permissive")
        permissive.allow("zoneA", "backbone", 0x000, 0x7FF)
        minimal = GatewayFilter("minimal")
        minimal.allow("zoneA", "backbone", 0x100, 0x10F)
        assert (minimal.exposure_count("zoneA", "backbone")
                < permissive.exposure_count("zoneA", "backbone"))


class TestValidation:
    def test_rule_bounds(self):
        with pytest.raises(ValueError):
            ForwardingRule("a", "b", 5, 4)
        with pytest.raises(ValueError):
            ForwardingRule("a", "b", -1, 4)
