"""Smoke tests: every example script runs to completion.

The examples are the library's public face; a refactor that breaks one
should fail the suite, not a user's first run.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example narrates its steps
    assert "Traceback" not in result.stderr
