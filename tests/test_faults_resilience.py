"""Retry/backoff, circuit breaker, watchdog, and health monitor."""

import random

import pytest

from repro.core.rng import python_rng
from repro.faults import (
    BreakerOpen,
    BreakerState,
    CircuitBreaker,
    HealthMonitor,
    RetryBudgetExceeded,
    RetryPolicy,
    RetryStats,
    VirtualClock,
    Watchdog,
    retry_with_backoff,
)


class Transient(Exception):
    pass


class Permanent(Exception):
    pass


def flaky(failures, exc=Transient):
    """An op that raises ``exc`` the first ``failures`` calls, then passes."""
    calls = {"n": 0}

    def op():
        calls["n"] += 1
        if calls["n"] <= failures:
            raise exc(f"failure {calls['n']}")
        return "ok"

    return op, calls


class TestVirtualClock:
    def test_advances_and_rejects_rewind(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        with pytest.raises(ValueError, match="advances"):
            clock.advance(-0.1)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay_s=0.1, factor=2.0, max_delay_s=0.3,
                             jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_s(i, rng) for i in range(4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_stays_within_band_and_is_seed_deterministic(self):
        policy = RetryPolicy(base_delay_s=1.0, factor=1.0, max_delay_s=1.0,
                             jitter=0.2)
        rng_a = python_rng("jitter", 7)
        rng_b = python_rng("jitter", 7)
        draws_a = [policy.delay_s(0, rng_a) for _ in range(50)]
        draws_b = [policy.delay_s(0, rng_b) for _ in range(50)]
        assert draws_a == draws_b
        assert all(0.8 <= d <= 1.2 for d in draws_a)
        assert len(set(draws_a)) > 1


class TestRetryWithBackoff:
    def run(self, op, **kwargs):
        stats = RetryStats()
        clock = VirtualClock()
        kwargs.setdefault("policy", RetryPolicy(max_attempts=3, jitter=0.0))
        kwargs.setdefault("rng", random.Random(0))
        kwargs.setdefault("retry_on", (Transient,))
        result = retry_with_backoff(op, clock=clock, stats=stats, **kwargs)
        return result, stats, clock

    def test_first_try_success_never_waits(self):
        op, calls = flaky(0)
        result, stats, clock = self.run(op)
        assert result == "ok" and calls["n"] == 1
        assert stats.to_dict() == {"calls": 1, "attempts": 1, "retries": 0,
                                   "recovered": 0, "exhausted": 0}
        assert clock.now == 0.0

    def test_recovers_after_transient_failures(self):
        op, calls = flaky(2)
        result, stats, clock = self.run(op)
        assert result == "ok" and calls["n"] == 3
        assert stats.retries == 2 and stats.recovered == 1
        assert clock.now == pytest.approx(0.1 + 0.2)  # modeled backoff

    def test_exhausts_after_max_attempts(self):
        op, calls = flaky(99)
        stats = RetryStats()
        with pytest.raises(Transient):
            retry_with_backoff(op, policy=RetryPolicy(max_attempts=3,
                                                      jitter=0.0),
                               rng=random.Random(0), clock=VirtualClock(),
                               retry_on=(Transient,), stats=stats)
        assert calls["n"] == 3 and stats.exhausted == 1

    def test_permanent_errors_propagate_without_retry(self):
        op, calls = flaky(99, exc=Permanent)
        with pytest.raises(Permanent):
            self.run(op)
        assert calls["n"] == 1  # no retry budget spent on permanent failure

    def test_budget_stops_backoff_before_sleeping_it_away(self):
        op, calls = flaky(99)
        stats = RetryStats()
        with pytest.raises(RetryBudgetExceeded) as info:
            retry_with_backoff(op, policy=RetryPolicy(max_attempts=5,
                                                      base_delay_s=1.0,
                                                      jitter=0.0),
                               rng=random.Random(0), clock=VirtualClock(),
                               budget_s=0.5, retry_on=(Transient,),
                               stats=stats)
        assert isinstance(info.value.__cause__, Transient)
        assert calls["n"] == 1 and stats.exhausted == 1

    def test_on_retry_callback_sees_each_retry(self):
        seen = []
        op, _ = flaky(2)
        self.run(op, on_retry=lambda index, exc: seen.append(index))
        assert seen == [0, 1]


class TestCircuitBreaker:
    def make(self, clock=None, **kwargs):
        clock = clock or VirtualClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("recovery_time_s", 3.0)
        return CircuitBreaker("backend", clock=clock, **kwargs), clock

    def trip(self, breaker):
        for _ in range(breaker.failure_threshold):
            with pytest.raises(Transient):
                breaker.call(self.boom)

    @staticmethod
    def boom():
        raise Transient("down")

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make()
        self.trip(breaker)
        assert breaker.state is BreakerState.OPEN and breaker.opens == 1

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make()
        for _ in range(2):
            with pytest.raises(Transient):
                breaker.call(self.boom)
        breaker.call(lambda: "ok")
        with pytest.raises(Transient):
            breaker.call(self.boom)
        assert breaker.state is BreakerState.CLOSED

    def test_open_rejects_without_executing(self):
        breaker, _ = self.make()
        self.trip(breaker)
        calls = {"n": 0}

        def op():
            calls["n"] += 1
            return "ok"

        with pytest.raises(BreakerOpen):
            breaker.call(op)
        assert calls["n"] == 0 and breaker.rejections == 1

    def test_half_open_probe_closes_on_success(self):
        breaker, clock = self.make()
        self.trip(breaker)
        clock.advance(3.0)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make()
        self.trip(breaker)
        clock.advance(3.0)
        with pytest.raises(Transient):
            breaker.call(self.boom)
        assert breaker.state is BreakerState.OPEN and breaker.opens == 2

    def test_half_open_can_require_multiple_probes(self):
        breaker, clock = self.make(half_open_successes=2)
        self.trip(breaker)
        clock.advance(3.0)
        breaker.call(lambda: "ok")
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.call(lambda: "ok")
        assert breaker.state is BreakerState.CLOSED

    def test_to_dict_and_validation(self):
        breaker, _ = self.make()
        assert breaker.to_dict() == {"name": "backend", "opens": 0,
                                     "rejections": 0, "finalState": "closed"}
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker("x", clock=VirtualClock(), failure_threshold=0)


class TestWatchdogAndHealth:
    def test_watchdog_expires_silent_components(self):
        dog = Watchdog(timeout_s=2.0)
        dog.beat("ecu-a", 0.0)
        dog.beat("ecu-b", 3.0)
        assert dog.expired(1.5) == []
        assert dog.expired(4.0) == ["ecu-a"]
        assert dog.expired(6.0) == ["ecu-a", "ecu-b"]
        with pytest.raises(ValueError, match="timeout"):
            Watchdog(timeout_s=0.0)

    def test_health_monitor_windows_and_latest(self):
        monitor = HealthMonitor(window=4)
        assert monitor.latest("phy") is None
        assert monitor.failure_fraction("phy") == 0.0
        for ok in (False, False, False, True, True):
            monitor.report("phy", ok)
        # the oldest False fell out of the 4-wide window
        assert monitor.failure_fraction("phy") == pytest.approx(0.5)
        assert monitor.latest("phy") is True
        assert monitor.components() == ["phy"]


class TestRetryJitterResumeDeterminism:
    """Jittered delays must be a pure function of the rng stream, so a
    resumed process (fresh clock, fresh breaker state, mid-campaign
    wall time) replays exactly the backoff schedule the original run
    would have produced."""

    POLICY = RetryPolicy(max_attempts=5, base_delay_s=0.5, factor=2.0,
                         max_delay_s=6.0, jitter=0.25)

    def delays(self, seed):
        rng = python_rng("retry/backoff", seed)
        return [self.POLICY.delay_s(i, rng) for i in range(4)]

    def test_same_seed_same_schedule(self):
        assert self.delays(11) == self.delays(11)

    def test_different_seed_different_schedule(self):
        assert self.delays(11) != self.delays(12)

    def test_schedule_is_independent_of_clock_state(self):
        """A clock resumed at t=1234.5 sees the same delays as t=0."""
        schedules = []
        for start in (0.0, 1234.5):
            clock = VirtualClock()
            if start:
                clock.advance(start)
            seen = []
            op, _ = flaky(3)
            retry_with_backoff(
                op, policy=self.POLICY, rng=python_rng("retry/backoff", 11),
                clock=clock,
                on_retry=lambda i, exc, c=clock, s=start, seen=seen:
                    seen.append(round(c.now - s, 9)))
            schedules.append(seen)
        assert schedules[0] == schedules[1]
        # and the waits really are the seeded jittered delays
        # (on_retry fires before the delay, so entry i has slept the
        # first i delays)
        expected = self.delays(11)[:3]
        cumulative = [sum(expected[:i]) for i in range(3)]
        assert schedules[0] == pytest.approx(cumulative)

    def test_interleaved_call_sites_do_not_share_jitter(self):
        """Two call sites with their own streams keep their own
        schedules even when their retries interleave on one clock."""
        clock = VirtualClock()
        rng_a = python_rng("retry/site-a", 3)
        rng_b = python_rng("retry/site-b", 3)
        seq_a = [self.POLICY.delay_s(i, rng_a) for i in range(2)]
        seq_b = [self.POLICY.delay_s(i, rng_b) for i in range(2)]
        # replay both with fresh streams, interleaved draw order
        rng_a2 = python_rng("retry/site-a", 3)
        rng_b2 = python_rng("retry/site-b", 3)
        inter_a = [self.POLICY.delay_s(0, rng_a2)]
        inter_b = [self.POLICY.delay_s(0, rng_b2)]
        inter_a.append(self.POLICY.delay_s(1, rng_a2))
        inter_b.append(self.POLICY.delay_s(1, rng_b2))
        assert (inter_a, inter_b) == (seq_a, seq_b)


class TestBreakerHalfOpenDiscipline:
    """HALF_OPEN is a probation window, not an amnesty: probe failures
    reopen immediately, and probe credit never survives a reopen."""

    def make(self, **kwargs):
        clock = VirtualClock()
        kwargs.setdefault("failure_threshold", 2)
        kwargs.setdefault("recovery_time_s", 5.0)
        breaker = CircuitBreaker("dep", clock=clock, **kwargs)
        return breaker, clock

    def trip(self, breaker):
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_probe_failure_reopens_and_restarts_recovery(self):
        breaker, clock = self.make()
        self.trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()                       # OPEN -> HALF_OPEN
        breaker.record_failure()                     # probe fails
        assert breaker.state is BreakerState.OPEN and breaker.opens == 2
        # the recovery window restarts from the reopen, not the first open
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_probe_credit_resets_across_reopens(self):
        breaker, clock = self.make(half_open_successes=2)
        self.trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()                     # 1 of 2 probes
        breaker.record_failure()                     # interleaved failure
        assert breaker.state is BreakerState.OPEN
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()                     # 1 of 2 again —
        assert breaker.state is BreakerState.HALF_OPEN   # old credit gone
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_single_failure_in_half_open_beats_many_successes(self):
        breaker, clock = self.make(half_open_successes=3)
        self.trip(breaker)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        breaker.record_success()                     # 2 of 3
        breaker.record_failure()                     # still fatal
        assert breaker.state is BreakerState.OPEN and breaker.opens == 2

    def test_open_window_rejects_while_half_open_admits(self):
        breaker, clock = self.make()
        self.trip(breaker)
        assert not breaker.allow() and not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()                       # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        # closed-loop: a successful probe closes; traffic resumes
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED and breaker.allow()
