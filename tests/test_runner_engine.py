"""The sweep scheduler: parallelism, retry, caching, seeds, and obs."""

import sys

import pytest

from repro.core.rng import derive_seed
from repro.experiments import Experiment
from repro.obs.events import EventKind
from repro.obs.runtime import OBS, instrumented
from repro.runner import ResultCache, SweepRunner, parse_artifacts

SCRIPT_OK = """\
import os, time
time.sleep(0.02)
print("=== {exp_id} table ===")
print("seed", os.environ.get("REPRO_EXP_SEED"))
print("base", os.environ.get("REPRO_BASE_SEED", "<unset>"))
"""

SCRIPT_FAIL = "import sys\nprint('boom')\nsys.exit(3)\n"
SCRIPT_HANG = "import time\ntime.sleep(60)\n"


def make_experiments(directory, scripts):
    """scripts: {exp_id: source}; writes files and returns Experiments."""
    experiments = []
    for exp_id, source in scripts.items():
        name = f"{exp_id.lower()}.py"
        (directory / name).write_text(source)
        experiments.append(Experiment(exp_id, "-", "synthetic", name))
    return experiments


def make_runner(experiments, directory, **kwargs):
    kwargs.setdefault("use_cache", False)
    kwargs.setdefault("timeout_s", 30.0)
    return SweepRunner(experiments, bench_dir=directory,
                       command_template=(sys.executable, "{bench}"),
                       digest_paths=[], **kwargs)


class TestScheduling:
    def test_parallel_matches_sequential_results(self, tmp_path):
        scripts = {f"SYN{i}": SCRIPT_OK.format(exp_id=f"SYN{i}")
                   for i in range(4)}
        experiments = make_experiments(tmp_path, scripts)
        sequential = make_runner(experiments, tmp_path, jobs=1).run()
        parallel = make_runner(experiments, tmp_path, jobs=3).run()

        assert [r.exp_id for r in sequential.results] == \
               [r.exp_id for r in parallel.results]
        assert [r.status for r in sequential.results] == \
               [r.status for r in parallel.results] == ["passed"] * 4
        assert [r.artifacts for r in sequential.results] == \
               [r.artifacts for r in parallel.results]

    def test_results_keep_registry_order(self, tmp_path):
        scripts = {exp_id: SCRIPT_OK.format(exp_id=exp_id)
                   for exp_id in ("B", "A", "C")}
        experiments = make_experiments(tmp_path, scripts)
        report = make_runner(experiments, tmp_path, jobs=3).run()
        assert [r.exp_id for r in report.results] == ["B", "A", "C"]

    def test_failure_is_reported_not_raised(self, tmp_path):
        experiments = make_experiments(tmp_path, {"BAD": SCRIPT_FAIL})
        report = make_runner(experiments, tmp_path).run()
        result = report.results[0]
        assert result.status == "failed" and result.exit_code == 3
        assert not result.ok and report.exit_code() == 1
        assert result.retries == 0  # deterministic failures are not retried
        assert "boom" in result.output_tail

    def test_jobs_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="jobs"):
            make_runner([], tmp_path, jobs=0)


class TestTimeoutAndRetry:
    def test_timeout_that_consumed_the_budget_is_not_retried(self, tmp_path):
        # A hung worker burns its whole timeout budget; granting the retry
        # a fresh full timeout would double the sweep's worst case, so the
        # scheduler skips the retry when nothing meaningful remains.
        experiments = make_experiments(tmp_path, {"SLOW": SCRIPT_HANG})
        report = make_runner(experiments, tmp_path, timeout_s=0.3).run()
        result = report.results[0]
        assert result.status == "timeout"
        assert result.retries == 0
        assert "timed out" in result.error
        assert "retry skipped: timeout budget exhausted" in result.error
        assert report.exit_code() == 1

    def test_retry_gets_remaining_budget_not_fresh_timeout(self, tmp_path):
        # An injected crash that consumed 2s of a 5s budget must leave the
        # retry with exactly the remaining 3s.
        experiments = make_experiments(
            tmp_path, {"X": SCRIPT_OK.format(exp_id="X")})
        seen: list[tuple[int, float]] = []

        def hook(spec, attempt):
            seen.append((attempt, spec["timeout_s"]))
            if attempt == 0:
                return {"id": spec["exp_id"], "status": "error",
                        "exitCode": -1, "durationS": 2.0,
                        "seed": spec["seed"], "artifacts": [],
                        "outputTail": "", "error": "injected crash"}
            return None

        report = make_runner(experiments, tmp_path, timeout_s=5.0,
                             fault_hook=hook).run()
        result = report.results[0]
        assert result.status == "passed" and result.retries == 1
        assert seen == [(0, 5.0), (1, pytest.approx(3.0))]

    def test_injected_worker_crash_fault_is_retried_within_budget(self, tmp_path):
        # The repro.faults regression: a FaultPlan worker-crash windowed
        # [0, 1) kills only the first attempt; the sweep recovers on the
        # retry using the remaining budget.
        from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec

        experiments = make_experiments(
            tmp_path, {"X": SCRIPT_OK.format(exp_id="X")})
        injector = FaultInjector(FaultPlan("crash-test", (
            FaultSpec(FaultKind.RUNNER_WORKER_CRASH, "X", 0.0, 1.0,
                      probability=1.0, magnitude=0.4),
        )), base_seed=0)
        report = make_runner(experiments, tmp_path, timeout_s=10.0,
                             fault_hook=injector.worker_crash_hook()).run()
        result = report.results[0]
        assert result.status == "passed" and result.retries == 1
        assert injector.count == 1

    def test_injected_crash_consuming_full_budget_is_terminal(self, tmp_path):
        from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec

        experiments = make_experiments(
            tmp_path, {"X": SCRIPT_OK.format(exp_id="X")})
        injector = FaultInjector(FaultPlan("crash-hard", (
            FaultSpec(FaultKind.RUNNER_WORKER_CRASH, "X", 0.0, 1.0,
                      probability=1.0, magnitude=1.0),
        )), base_seed=0)
        report = make_runner(experiments, tmp_path, timeout_s=10.0,
                             fault_hook=injector.worker_crash_hook()).run()
        result = report.results[0]
        assert result.status == "error" and result.retries == 0
        assert "retry skipped: timeout budget exhausted" in result.error

    def test_launch_error_is_retried_once(self, tmp_path):
        experiments = make_experiments(tmp_path, {"X": SCRIPT_OK})
        runner = SweepRunner(experiments, bench_dir=tmp_path,
                             use_cache=False, timeout_s=5.0,
                             command_template=("/nonexistent-interpreter",
                                               "{bench}"),
                             digest_paths=[])
        result = runner.run().results[0]
        assert result.status == "error" and result.retries == 1
        assert "could not launch" in result.error

    def test_retry_disabled(self, tmp_path):
        experiments = make_experiments(tmp_path, {"SLOW": SCRIPT_HANG})
        report = make_runner(experiments, tmp_path, timeout_s=0.3,
                             retry=False).run()
        assert report.results[0].retries == 0


class TestCaching:
    def test_warm_run_reports_cached(self, tmp_path):
        bench_dir = tmp_path / "benches"
        bench_dir.mkdir()
        scripts = {f"SYN{i}": SCRIPT_OK.format(exp_id=f"SYN{i}")
                   for i in range(2)}
        experiments = make_experiments(bench_dir, scripts)
        cache = ResultCache(tmp_path / "cache")

        cold = make_runner(experiments, bench_dir, use_cache=True,
                           cache=cache, jobs=2).run()
        warm = make_runner(experiments, bench_dir, use_cache=True,
                           cache=cache, jobs=2).run()
        assert [r.status for r in cold.results] == ["passed"] * 2
        assert [r.status for r in warm.results] == ["cached"] * 2
        assert all(r.ok for r in warm.results)
        # the cached result replays the original artifacts
        assert [r.artifacts for r in warm.results] == \
               [r.artifacts for r in cold.results]

    def test_editing_a_bench_invalidates_only_it(self, tmp_path):
        bench_dir = tmp_path / "benches"
        bench_dir.mkdir()
        scripts = {f"SYN{i}": SCRIPT_OK.format(exp_id=f"SYN{i}")
                   for i in range(3)}
        experiments = make_experiments(bench_dir, scripts)
        cache = ResultCache(tmp_path / "cache")
        make_runner(experiments, bench_dir, use_cache=True, cache=cache).run()

        (bench_dir / "syn1.py").write_text(
            SCRIPT_OK.format(exp_id="SYN1") + "# touched\n")
        report = make_runner(experiments, bench_dir, use_cache=True,
                             cache=cache).run()
        statuses = {r.exp_id: r.status for r in report.results}
        assert statuses == {"SYN0": "cached", "SYN1": "passed",
                            "SYN2": "cached"}

    def test_failures_are_never_cached(self, tmp_path):
        bench_dir = tmp_path / "benches"
        bench_dir.mkdir()
        experiments = make_experiments(bench_dir, {"BAD": SCRIPT_FAIL})
        cache = ResultCache(tmp_path / "cache")
        make_runner(experiments, bench_dir, use_cache=True, cache=cache).run()
        assert len(cache) == 0
        report = make_runner(experiments, bench_dir, use_cache=True,
                             cache=cache).run()
        assert report.results[0].status == "failed"

    def test_no_cache_skips_lookup_and_store(self, tmp_path):
        experiments = make_experiments(
            tmp_path, {"X": SCRIPT_OK.format(exp_id="X")})
        cache = ResultCache(tmp_path / "cache")
        make_runner(experiments, tmp_path, use_cache=False,
                    cache=cache).run()
        assert len(cache) == 0


class TestSeedSharding:
    def test_seeds_are_deterministic_and_distinct(self, tmp_path):
        runner = make_runner([], tmp_path)
        assert runner.seed_for("FIG1") == derive_seed("sweep/FIG1", 0)
        assert runner.seed_for("FIG1") != runner.seed_for("FIG2")

    def test_base_seed_reshards(self, tmp_path):
        plain = make_runner([], tmp_path)
        sharded = make_runner([], tmp_path, base_seed=7)
        assert plain.seed_for("FIG1") != sharded.seed_for("FIG1")
        assert sharded.seed_for("FIG1") == derive_seed("sweep/FIG1", 7)

    def test_worker_receives_seed_env(self, tmp_path):
        experiments = make_experiments(
            tmp_path, {"X": SCRIPT_OK.format(exp_id="X")})
        report = make_runner(experiments, tmp_path, base_seed=5).run()
        rows = report.results[0].artifacts[0]["rows"]
        assert rows[0] == f"seed {derive_seed('sweep/X', 5)}"
        assert rows[1] == "base 5"


class TestObservability:
    def test_sweep_emits_events_and_metrics(self, tmp_path):
        experiments = make_experiments(
            tmp_path, {"X": SCRIPT_OK.format(exp_id="X")})
        with instrumented():
            report = make_runner(experiments, tmp_path).run()
            counters = OBS.metrics.to_json_dict()["counters"]
            spans = list(OBS.tracer.roots)
        assert counters["runner.scheduled"] == 1
        assert counters["runner.completed"] == 1
        assert counters["runner.passed"] == 1
        assert spans[0].name == "runner.sweep"
        assert [child.name for child in spans[0].children] == ["runner.exp.X"]
        kinds = [event.kind for event in report.events]
        assert kinds == [EventKind.EXPERIMENT_START,
                         EventKind.EXPERIMENT_DONE]
        assert report.events[0].t <= report.events[1].t

    def test_sweep_timeline_renders_without_obs(self, tmp_path):
        experiments = make_experiments(
            tmp_path, {"X": SCRIPT_OK.format(exp_id="X")})
        report = make_runner(experiments, tmp_path).run()
        rendered = report.render_timeline()
        assert "experiment-start" in rendered
        assert "experiment-done" in rendered


class TestArtifactParsing:
    def test_tables_extracted_with_progress_noise_filtered(self):
        stdout = ("collected\n\n=== Fig. X — demo ===\nrow a  1\n"
                  ".                  [100%]\nrow b  2\n\nother text\n"
                  "=== second ===\nonly row\n")
        artifacts = parse_artifacts(stdout)
        assert artifacts == [
            {"title": "Fig. X — demo", "rows": ["row a  1", "row b  2"]},
            {"title": "second", "rows": ["only row"]},
        ]

    def test_bare_separator_is_not_a_title(self):
        assert parse_artifacts("======\nrow\n") == []
