"""Determinism AST gate: no ambient randomness or wall-clock reads in src.

Every experiment, test, and benchmark in this repo must be reproducible
from ``REPRO_BASE_SEED`` alone, so production code may not reach for
ambient nondeterminism:

* ``random.<anything>`` via the stdlib module (module-level functions
  share hidden global state; seeded streams must come through
  ``repro.core.rng``);
* ``time.time()`` / ``time.time_ns()`` (wall-clock reads — model time
  is explicit ``now`` parameters);
* ``datetime.now()`` / ``datetime.utcnow()`` / ``date.today()``.

The checker walks the AST of every module under ``src/repro`` (the
seeded-stream implementation in ``core/rng.py`` is the one sanctioned
exception) and reports each offending call with file and line, so a
violation reads like a lint finding, not a needle in a diff.
"""

import ast
import pathlib

SRC_ROOT = pathlib.Path(__file__).parent.parent / "src" / "repro"

#: The module that wraps numpy's seeded generators; it may name-drop
#: whatever it wants.
ALLOWED = {SRC_ROOT / "core" / "rng.py"}

#: attribute calls on these module names that are banned outright
_BANNED_TIME_ATTRS = {"time", "time_ns"}
_BANNED_DATETIME_ATTRS = {"now", "utcnow", "today"}


class _Auditor(ast.NodeVisitor):
    def __init__(self, path: pathlib.Path) -> None:
        self.path = path
        self.violations: list[str] = []
        self._stdlib_random_names: set[str] = set()
        self._time_names: set[str] = set()
        self._datetime_classes: set[str] = set()

    def _flag(self, node: ast.AST, what: str) -> None:
        relative = self.path.relative_to(SRC_ROOT.parent)
        self.violations.append(f"{relative}:{node.lineno}: {what}")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._stdlib_random_names.add(local)
            if alias.name == "time":
                self._time_names.add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._flag(node, "from-import of stdlib random "
                             "(use repro.core.rng streams)")
        if node.module == "time":
            for alias in node.names:
                if alias.name in _BANNED_TIME_ATTRS:
                    self._flag(node, f"from time import {alias.name} "
                                     "(model time must be explicit)")
        if node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self._datetime_classes.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner in self._stdlib_random_names:
                self._flag(node, f"random.{func.attr}() uses the hidden "
                                 "global stream (use repro.core.rng)")
            if owner in self._time_names and func.attr in _BANNED_TIME_ATTRS:
                self._flag(node, f"time.{func.attr}() reads the wall clock")
            if (owner in self._datetime_classes
                    and func.attr in _BANNED_DATETIME_ATTRS
                    and not node.args and not node.keywords):
                self._flag(node, f"{owner}.{func.attr}() reads the wall clock")
        self.generic_visit(node)


def audit_file(path: pathlib.Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    auditor = _Auditor(path)
    auditor.visit(tree)
    return auditor.violations


def test_src_tree_is_free_of_ambient_nondeterminism():
    violations: list[str] = []
    audited = 0
    faults_audited = 0
    redteam_audited = 0
    sentinel_audited = 0
    ivn_audited = 0
    phy_audited = 0
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path in ALLOWED:
            continue
        audited += 1
        if path.parent.name == "faults":
            faults_audited += 1
        if path.parent.name == "redteam":
            redteam_audited += 1
        if path.parent.name == "sentinel":
            sentinel_audited += 1
        if path.parent.name == "ivn":
            ivn_audited += 1
        if path.parent.name == "phy":
            phy_audited += 1
        violations += audit_file(path)
    assert audited > 35  # the walk actually covered the tree
    # the fault-injection package is exactly where ambient randomness
    # would silently break byte-identical chaos replay
    assert faults_audited >= 7
    # the campaign planner promises byte-identical rankings per
    # (scenario, seed); ambient nondeterminism there breaks BENCH-REDTEAM
    assert redteam_audited >= 6
    # the streaming alarm engine promises byte-identical detection
    # reports per (scenario, seed); ambient nondeterminism there breaks
    # BENCH-SENTINEL and the twin CI gates
    assert sentinel_audited >= 7
    # the batched hot-path kernels (bus fast path, memoized frame
    # timing, cached pulse templates, vectorized TWR) promise
    # byte-identical outputs vs their scalar twins; ambient
    # nondeterminism there breaks BENCH-KERNELS and the equivalence CI
    assert ivn_audited >= 15
    assert phy_audited >= 12
    assert not violations, "\n".join(violations)


class TestCheckerCatchesViolations:
    """The meta-tests: the auditor must actually detect each pattern."""

    def _audit_source(self, source, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(source)
        tree = ast.parse(source)
        auditor = _Auditor(SRC_ROOT / "snippet.py")
        auditor.visit(tree)
        return auditor.violations

    def test_flags_stdlib_random_calls(self, tmp_path):
        out = self._audit_source(
            "import random\nx = random.random()\n", tmp_path)
        assert any("hidden global stream" in v for v in out)

    def test_flags_random_from_import(self, tmp_path):
        out = self._audit_source("from random import choice\n", tmp_path)
        assert any("from-import" in v for v in out)

    def test_flags_wall_clock(self, tmp_path):
        out = self._audit_source("import time\nt = time.time()\n", tmp_path)
        assert any("wall clock" in v for v in out)

    def test_flags_argless_datetime_now(self, tmp_path):
        out = self._audit_source(
            "from datetime import datetime\nd = datetime.now()\n", tmp_path)
        assert any("wall clock" in v for v in out)

    def test_allows_numpy_generator_annotations(self, tmp_path):
        out = self._audit_source(
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> float:\n"
            "    return float(rng.random())\n", tmp_path)
        assert out == []

    def test_allows_explicit_now_parameters(self, tmp_path):
        out = self._audit_source(
            "def verify(now: float) -> bool:\n    return now > 0\n", tmp_path)
        assert out == []

    def test_allows_monotonic_clock(self, tmp_path):
        # monotonic() measures durations, not wall-clock identity; the
        # benchmark harness legitimately uses it
        out = self._audit_source(
            "import time\nduration = time.monotonic()\n", tmp_path)
        assert out == []
