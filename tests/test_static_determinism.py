"""Determinism gate: the src tree stays clean under ``repro.audit``.

Every experiment, test, and benchmark in this repo must be reproducible
from ``REPRO_BASE_SEED`` alone.  The AST gate that used to live in this
file (ambient randomness, wall-clock reads) is now rule ``AUD001`` of
the plugin-based self-audit engine in :mod:`repro.audit`; this test is
a thin wrapper that runs the *full* catalog over ``src/repro`` and
keeps the original per-package coverage floors — the walk must actually
reach the packages where ambient nondeterminism would silently break
byte-identical replay.

Per-rule positive/negative fixtures live in ``test_audit_catalog.py``;
this file only asserts the shipped tree's verdict.
"""

from repro.audit import AuditContext, AuditEngine


def _run():
    context = AuditContext.parse()
    report = AuditEngine().run(context)
    return context, report


def test_src_tree_is_free_of_ambient_nondeterminism():
    context, report = _run()

    packages = context.packages_audited()
    assert len(context) > 35  # the walk actually covered the tree
    # the fault-injection package is exactly where ambient randomness
    # would silently break byte-identical chaos replay
    assert packages.get("faults", 0) >= 7
    # the campaign planner promises byte-identical rankings per
    # (scenario, seed); ambient nondeterminism there breaks BENCH-REDTEAM
    assert packages.get("redteam", 0) >= 6
    # the streaming alarm engine promises byte-identical detection
    # reports per (scenario, seed); ambient nondeterminism there breaks
    # BENCH-SENTINEL and the twin CI gates
    assert packages.get("sentinel", 0) >= 7
    # the batched hot-path kernels (bus fast path, memoized frame
    # timing, cached pulse templates, vectorized TWR) promise
    # byte-identical outputs vs their scalar twins; ambient
    # nondeterminism there breaks BENCH-KERNELS and the equivalence CI
    assert packages.get("ivn", 0) >= 15
    assert packages.get("phy", 0) >= 12
    # the campaign engine promises byte-identical reports across crash,
    # kill, and resume; ambient nondeterminism there breaks the WAL
    # replay contract and BENCH-CAMPAIGN
    assert packages.get("campaign", 0) >= 6

    violations = [f"{f.subject}: {f.message}" for f in report.findings]
    assert not violations, "\n".join(violations)


def test_full_catalog_ran():
    _, report = _run()
    assert len(report.rules_run) >= 8
    assert "AUD001" in report.rules_run  # the ported determinism gate


def test_suppressions_carry_justifications():
    """Inline pragmas keep findings visible instead of deleting them."""
    _, report = _run()
    for finding in report.suppressed:
        assert finding.rule_id.startswith("AUD")
        assert finding.subject  # still locatable
