"""Tests for the discrete-event kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, lambda l=label: fired.append(l))
    sim.run()
    assert fired == list("abcde")


def test_run_until_stops_the_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_advances_clock_when_queue_empty():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_nested_scheduling():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(0.5, lambda: fired.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == [("outer", 1.0), ("inner", 1.5)]


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.processed_events == 0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    times = []
    sim.schedule(1.0, lambda: sim.schedule_at(4.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [4.0]


def test_max_events_bound():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_run_until_ignores_canceled_head_event():
    """Regression: a canceled event at the heap head whose time <= until
    must not let a live event past ``until`` fire (the old code peeked
    only ``_queue[0].time`` and then ran the next live event
    unconditionally)."""
    sim = Simulator()
    fired = []
    early = sim.schedule(1.0, lambda: fired.append("early"))
    sim.schedule(5.0, lambda: fired.append("late"))
    early.cancel()
    sim.run(until=2.0)
    assert fired == []
    assert sim.now == 2.0
    sim.run()
    assert fired == ["late"]
    assert sim.now == 5.0


def test_run_until_with_all_events_canceled():
    sim = Simulator()
    for delay in (0.5, 1.0, 1.5):
        sim.schedule(delay, lambda: None).cancel()
    sim.run(until=3.0)
    assert sim.now == 3.0
    assert sim.processed_events == 0


def test_peek_time_skips_canceled_heads():
    sim = Simulator()
    a = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.peek_time() == 1.0
    a.cancel()
    assert sim.peek_time() == 2.0
    assert sim.pending_events == 1  # the canceled head was lazily popped


def test_peek_time_empty_queue():
    assert Simulator().peek_time() is None


def test_live_events_excludes_canceled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.live_events() == [keep]


def test_advance_to_commits_clock_and_count():
    sim = Simulator()
    sim.advance_to(4.5, processed=3)
    assert sim.now == 4.5
    assert sim.processed_events == 3
    with pytest.raises(ValueError):
        sim.advance_to(1.0)
    with pytest.raises(ValueError):
        sim.advance_to(9.0, processed=-1)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_clock_is_monotone(delays):
    sim = Simulator()
    observed = []
    for d in delays:
        sim.schedule(d, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
