"""Cross-module integration tests: the paper's layers working together.

Each test exercises a flow that crosses at least two subpackages,
mirroring §VIII's demand that layer defenses "work in synergy".
"""

import pytest

from repro.core.layers import Layer
from repro.core.response import ResponseAction, ResponseEngine, SecurityAlert, Severity
from repro.core.threats import default_catalog
from repro.datalayer.access import DataConsumer, DataOwner, KeyTrustee
from repro.datalayer.breach import run_breach
from repro.ivn.canal import CanalCodec
from repro.ivn.macsec import MacsecPort, MkaSession
from repro.ivn.scenarios import _deserialize_macsec, _serialize_macsec
from repro.phy.channel import Channel
from repro.phy.hrp import HrpRangingSession
from repro.phy.attacks import GhostPeakAttack
from repro.phy.pulses import HRP_CONFIG
from repro.sos.cascade import CascadeSimulator
from repro.sos.maas import build_maas_sos
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.wallet import Wallet

NOW = 1_750_000_000.0


class TestPhyToResponse:
    """Physical-layer detections feed the cross-layer response engine."""

    def test_rejected_rangings_escalate_to_isolation(self):
        session = HrpRangingSession(b"\x61" * 16)
        engine = ResponseEngine(escalation_threshold=2)
        for i in range(6):
            channel = Channel(10.0, snr_db=15.0, seed_label=f"int1-{i}")
            attack = GhostPeakAttack(advance_m=6.0, power=6.0,
                                     seed_label=f"int1a-{i}")
            outcome = session.measure(
                channel, attacker_signal=attack.waveform(channel, HRP_CONFIG))
            if not outcome.integrity_ok:
                engine.handle(SecurityAlert(
                    float(i), Layer.PHYSICAL, "uwb-anchor-3",
                    "uwb-distance-reduction", Severity.CRITICAL))
        assert "uwb-anchor-3" in engine.isolated_components()


class TestCanalMacsecTamper:
    """End-to-end MACsec over CANAL: tampering anywhere is caught at CC."""

    def _tunnel(self, tamper_byte: int | None):
        ecu, cc = MacsecPort("ecu"), MacsecPort("cc")
        MkaSession(b"\x62" * 16, [ecu, cc]).distribute_sak()
        frame = ecu.protect(b"steering setpoint 0x42")
        blob = _serialize_macsec(frame)
        tx, rx = CanalCodec(mode="can"), CanalCodec(mode="can")
        result = None
        for can_frame in tx.encapsulate(blob):
            payload = can_frame.payload
            if tamper_byte is not None and tamper_byte < len(payload):
                # A bus attacker flips a bit inside one CANAL segment.
                from repro.ivn.frames import CanFrame

                mutated = bytearray(payload)
                mutated[tamper_byte] ^= 0x01
                can_frame = CanFrame(can_frame.can_id, bytes(mutated))
                tamper_byte = None  # only once
            result = rx.reassemble(can_frame) or result
        if result is None:
            return None
        return cc.validate(_deserialize_macsec(result))

    def test_clean_tunnel_delivers(self):
        assert self._tunnel(None) == b"steering setpoint 0x42"

    def test_tampered_segment_payload_rejected_by_icv(self):
        # Flip a ciphertext byte (offset past the 5-byte CANAL header and
        # the 15-byte MACsec header) — reassembly succeeds but the GCM
        # ICV check at CC fails.
        assert self._tunnel(7) is None


class TestSsiDataAccess:
    """SSI identities as the principals of owner-controlled data access."""

    def test_did_bound_grants(self):
        registry = VerifiableDataRegistry()
        owner_wallet = Wallet.create("fleet-owner", registry)
        analyst_wallet = Wallet.create("crash-analyst", registry)

        trustees = [KeyTrustee(f"t{i}") for i in range(3)]
        owner = DataOwner(str(owner_wallet.did), trustees, threshold=2)
        protected = owner.publish("crash-data", b"impact telemetry")
        grant = owner.grant(str(analyst_wallet.did), "crash-data", now=NOW)

        analyst = DataConsumer(str(analyst_wallet.did))
        assert analyst.access(protected, grant, trustees, threshold=2,
                              now=NOW + 1) == b"impact telemetry"
        # An SSI identity without a grant gets nothing.
        impostor = DataConsumer("did:vreg:impostor")
        assert impostor.access(protected, grant, trustees, threshold=2,
                               now=NOW + 1) is None


class TestBreachToCascade:
    """A data-layer breach seeds a system-of-systems cascade."""

    def test_backend_breach_cascades_into_vehicle(self):
        breach = run_breach(n_vehicles=5, days=2)
        assert breach.chain_completed
        # The breached component is the cloud backend; feed the SoS model.
        model = build_maas_sos()
        sim = CascadeSimulator(model, seed_label="int-cascade")
        cascade = sim.run("cloud-backend", trials=200)
        assert cascade.p_safety_critical_hit > 0.5
        # The §V-C fix (smaller surface) corresponds to securing the
        # SoS interfaces: the same origin now rarely reaches safety
        # functions.
        hardened = CascadeSimulator(build_maas_sos(secured_interfaces=True),
                                    seed_label="int-cascade")
        assert (hardened.run("cloud-backend", trials=200).mean_blast_radius
                < cascade.mean_blast_radius)


class TestCatalogConsistency:
    """The default catalog's names match what the simulators implement."""

    @pytest.mark.parametrize("attack_name,module", [
        ("pkes-relay", "repro.phy.attacks"),
        ("uwb-distance-reduction", "repro.phy.attacks"),
        ("uwb-distance-enlargement", "repro.phy.attacks"),
        ("can-masquerade", "repro.ivn.attacks"),
        ("can-replay", "repro.ivn.attacks"),
        ("bus-flood-dos", "repro.ivn.attacks"),
        ("heap-dump-key-extraction", "repro.datalayer.killchain"),
        ("collab-internal-fabrication", "repro.collab.attacks"),
    ])
    def test_cataloged_attack_has_an_implementation(self, attack_name, module):
        import importlib

        catalog = default_catalog()
        assert attack_name in catalog.attacks
        importlib.import_module(module)  # the implementing module exists

    def test_response_engine_handles_every_cataloged_attack(self):
        catalog = default_catalog()
        engine = ResponseEngine()
        for i, attack in enumerate(catalog.attacks.values()):
            decision = engine.handle(SecurityAlert(
                float(i), attack.layer, f"component-{attack.layer.name}",
                attack.name, Severity.WARNING))
            assert decision.action >= ResponseAction.LOG_ONLY
