"""Tests for the system-of-systems layer: model, MaaS, STRIDE, cascades,
responsibility."""

import pytest

from repro.sos.cascade import CascadeSimulator
from repro.sos.maas import build_maas_sos
from repro.sos.model import SosModel, SosSystem, SystemInterface
from repro.sos.responsibility import OBLIGATIONS, ResponsibilityMatrix
from repro.sos.stride import StrideCategory, enumerate_threats, threats_by_level


class TestSosModel:
    def test_level_constraints(self):
        root = SosSystem("platform", 0)
        with pytest.raises(ValueError):
            root.add_child(SosSystem("deep", 2))
        with pytest.raises(ValueError):
            SosSystem("bad", 4)
        with pytest.raises(ValueError):
            SosModel(SosSystem("not-root", 1))

    def test_walk_covers_hierarchy(self):
        model = build_maas_sos()
        names = [s.name for s in model.root.walk()]
        assert "maas-sos" in names
        assert "safety-functions" in names
        assert len(names) == len(set(names))

    def test_connect_validates_endpoints(self):
        model = build_maas_sos()
        with pytest.raises(KeyError):
            model.connect(SystemInterface("ghost", "cloud-backend", "api"))

    def test_figure9_shape(self):
        model = build_maas_sos()
        assert len(model.systems(level=1)) == 4
        av_children = model.system("autonomous-vehicle").children
        assert {c.name for c in av_children} == {
            "vehicle-os", "self-driving-stack", "passenger-os"}
        sds_children = model.system("self-driving-stack").children
        assert {c.name for c in sds_children} == {"sense", "plan", "act"}

    def test_entry_points_include_gateways(self):
        model = build_maas_sos()
        entries = {s.name for s in model.entry_points()}
        assert "cloud-backend" in entries
        assert "platform-gateway" in entries

    def test_stakeholders_are_multiple(self):
        # §VI: distributed, shared hierarchy of responsibility.
        model = build_maas_sos()
        assert len(model.stakeholders()) >= 4

    def test_to_system_model_reachability(self):
        model = build_maas_sos()
        flat = model.to_system_model()
        reachable = flat.reachable_from("cloud-backend", only_unsecured=True)
        assert "safety-functions" in reachable  # the §VI-B cascade path
        secured = build_maas_sos(secured_interfaces=True).to_system_model()
        reachable_secured = secured.reachable_from("cloud-backend", only_unsecured=True)
        assert "safety-functions" not in reachable_secured


class TestStride:
    def test_unsecured_model_has_many_threats(self):
        model = build_maas_sos()
        threats = enumerate_threats(model)
        assert len(threats) > 20
        categories = {t.category for t in threats}
        assert StrideCategory.SPOOFING in categories
        assert StrideCategory.DENIAL_OF_SERVICE in categories

    def test_securing_interfaces_removes_most_threats(self):
        open_threats = len(enumerate_threats(build_maas_sos()))
        secured_threats = len(enumerate_threats(build_maas_sos(secured_interfaces=True)))
        assert secured_threats < open_threats / 2

    def test_realtime_interfaces_get_dos(self):
        model = build_maas_sos(secured_interfaces=True)
        threats = enumerate_threats(model)
        dos = [t for t in threats if t.category == StrideCategory.DENIAL_OF_SERVICE]
        assert dos
        assert all(t.interface.realtime for t in dos)

    def test_threats_by_level_covers_all_levels(self):
        counts = threats_by_level(build_maas_sos())
        assert set(counts) == {0, 1, 2, 3}
        assert sum(counts.values()) == len(enumerate_threats(build_maas_sos()))


class TestCascade:
    def test_blast_radius_larger_when_unsecured(self):
        unsecured = CascadeSimulator(build_maas_sos(), seed_label="c1")
        secured = CascadeSimulator(build_maas_sos(secured_interfaces=True),
                                   seed_label="c1")
        r_open = unsecured.run("cloud-backend", trials=300)
        r_sec = secured.run("cloud-backend", trials=300)
        assert r_open.mean_blast_radius > r_sec.mean_blast_radius

    def test_safety_critical_hit_probability(self):
        sim = CascadeSimulator(build_maas_sos(), seed_label="c2")
        result = sim.run("cloud-backend", trials=300)
        assert result.p_safety_critical_hit > 0.3  # §VI-B's cascade claim

    def test_origin_always_compromised(self):
        sim = CascadeSimulator(build_maas_sos(), p_unsecured=0.0,
                               p_secured=0.0, seed_label="c3")
        result = sim.run("sense", trials=10)
        assert result.mean_blast_radius == 1.0
        assert result.max_blast_radius == 1

    def test_certain_propagation_compromises_everything(self):
        sim = CascadeSimulator(build_maas_sos(), p_unsecured=1.0,
                               p_secured=1.0, seed_label="c4")
        result = sim.run("platform-gateway", trials=5)
        assert result.p_full_compromise == 1.0

    def test_sweep_covers_entry_points(self):
        sim = CascadeSimulator(build_maas_sos(), seed_label="c5")
        results = sim.sweep_origins(trials=50)
        origins = {r.origin for r in results}
        assert origins == {s.name for s in build_maas_sos().entry_points()}

    def test_validation(self):
        model = build_maas_sos()
        with pytest.raises(ValueError):
            CascadeSimulator(model, p_unsecured=0.2, p_secured=0.5)
        sim = CascadeSimulator(model)
        with pytest.raises(KeyError):
            sim.run("ghost")
        with pytest.raises(ValueError):
            sim.run("sense", trials=0)


class TestResponsibility:
    def test_empty_matrix_has_full_gaps(self):
        model = build_maas_sos()
        matrix = ResponsibilityMatrix(model)
        gaps = matrix.coverage_gaps()
        assert len(gaps) == len(list(model.root.walk())) * len(OBLIGATIONS)
        assert matrix.coverage_fraction() == 0.0

    def test_operator_default_fills_coverage(self):
        matrix = ResponsibilityMatrix(build_maas_sos())
        matrix.assign_by_operator()
        assert matrix.coverage_fraction() == 1.0
        assert matrix.coverage_gaps() == []

    def test_operator_default_leaves_seam_gaps(self):
        # The paper's point: per-operator ownership fragments incident
        # response at every cross-stakeholder interface.
        matrix = ResponsibilityMatrix(build_maas_sos())
        matrix.assign_by_operator()
        seams = matrix.seam_gaps()
        assert seams
        assert any("telematics" not in g.system for g in seams)

    def test_unified_owner_removes_seams(self):
        model = build_maas_sos()
        matrix = ResponsibilityMatrix(model)
        for system in model.root.walk():
            matrix.assign(system.name, "incident-response", "central-csirt")
        assert matrix.seam_gaps() == []

    def test_assignment_validation(self):
        matrix = ResponsibilityMatrix(build_maas_sos())
        with pytest.raises(ValueError):
            matrix.assign("sense", "making-coffee", "x")
        with pytest.raises(KeyError):
            matrix.assign("ghost", "threat-analysis", "x")
