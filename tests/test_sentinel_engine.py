"""The streaming engine: subscribe wiring, ticks, response closure."""

from repro.core.layers import Layer
from repro.core.response import ResponseEngine, Severity
from repro.obs.events import EventKind, EventLog
from repro.sentinel import (
    IGNORED_KINDS,
    MACHINE_PARAMS,
    AlarmState,
    CascadeCorrelator,
    SentinelEngine,
)


def storm(log, t, sender="babbler", frames=24):
    log.emit(EventKind.FRAME_SENT, Layer.NETWORK, "zonal-can", "storm",
             t=t, sender=sender, frames=frames)


class TestStreamingWiring:
    def test_attach_consumes_pushed_events(self):
        log = EventLog()
        engine = SentinelEngine("unit")
        engine.attach(log)
        storm(log, 0.0)
        assert engine.events_consumed == 1

    def test_unsubscribe_detaches_cleanly(self):
        log = EventLog()
        engine = SentinelEngine("unit")
        unsubscribe = engine.attach(log)
        storm(log, 0.0)
        unsubscribe()
        storm(log, 1.0)
        assert engine.events_consumed == 1

    def test_own_emissions_are_not_reconsumed(self):
        # The engine writes verdicts into the log it subscribes to; a
        # feedback loop here would recurse forever.
        log = EventLog()
        engine = SentinelEngine("unit")
        engine.attach(log)
        storm(log, 0.0)
        engine.tick(0.0)
        consumed = engine.events_consumed
        assert engine.events_emitted > 0
        assert consumed == 1  # only the storm frame

    def test_fault_injected_oracle_is_ignored(self):
        log = EventLog()
        engine = SentinelEngine("unit")
        engine.attach(log)
        log.emit(EventKind.FAULT_INJECTED, Layer.NETWORK, "injector",
                 "ground truth", t=0.0)
        assert engine.events_consumed == 0
        assert EventKind.FAULT_INJECTED in IGNORED_KINDS

    def test_sender_field_attributes_bus_events(self):
        log = EventLog()
        engine = SentinelEngine("unit")
        engine.attach(log)
        storm(log, 0.0, sender="ecu-7")
        engine.tick(0.0)
        assert ("ecu-7", "can-rate") in engine.machines


class TestTicks:
    def test_hard_storm_alarms_on_first_tick(self):
        log = EventLog()
        engine = SentinelEngine("unit")
        engine.attach(log)
        storm(log, 0.0, frames=24)
        transitions = engine.tick(0.0)
        assert [t.state for t in transitions] == [AlarmState.ALARM]
        assert engine.first_alarm_t == 0.0

    def test_soft_evidence_respects_hysteresis(self):
        suspect_after, alarm_after, _ = MACHINE_PARAMS["can-rate"]
        log = EventLog()
        engine = SentinelEngine("unit")
        engine.attach(log)
        for t in range(alarm_after):
            storm(log, float(t), frames=10)  # suspicious, not saturating
            engine.tick(float(t))
        machine = engine.machines[("babbler", "can-rate")]
        assert machine.state is AlarmState.ALARM
        assert machine.first_alarm_t == float(alarm_after - 1)

    def test_weak_risk_feeds_trust_but_not_the_ladder(self):
        log = EventLog()
        engine = SentinelEngine("unit", trigger_floor=0.3)
        engine.attach(log)
        log.emit(EventKind.RANGING, Layer.PHYSICAL, "uwb", "r",
                 t=0.0, residual_m=0.3)  # risk 0.2 < floor
        engine.tick(0.0)
        assert engine.machines == {}
        assert engine.trust.get("uwb").observations == 1

    def test_quiet_ticks_clear_and_close_incidents(self):
        log = EventLog()
        engine = SentinelEngine("unit")
        engine.attach(log)
        storm(log, 0.0)
        engine.tick(0.0)
        assert len(engine.correlator.open_incidents()) == 1
        clear_after = MACHINE_PARAMS["can-rate"][2]
        for t in range(1, int(clear_after) + 2):
            engine.tick(float(t))
        machine = engine.machines[("babbler", "can-rate")]
        assert machine.state is AlarmState.CLEARED
        assert engine.correlator.open_incidents() == []

    def test_silent_sources_decay(self):
        log = EventLog()
        engine = SentinelEngine("unit")
        engine.attach(log)
        log.emit(EventKind.CLOUD_REQUEST, Layer.DATA, "backend", "GET",
                 t=0.0, status="ok", latency_ms=50.0)
        engine.tick(0.0)
        engine.trust.get("backend").score = 0.9
        engine.tick(1.0)  # no telemetry at all
        assert engine.trust.get("backend").score < 0.9


class TestResponseClosure:
    def test_hard_alarm_raises_critical_and_isolates(self):
        log = EventLog()
        response = ResponseEngine()
        engine = SentinelEngine("unit", response=response)
        engine.attach(log)
        storm(log, 0.0)
        engine.tick(0.0)
        [decision] = [d for d in response.decisions
                      if d.alert.attack_name == "sentinel:can-rate"]
        assert decision.alert.severity is Severity.CRITICAL
        assert "babbler" in response.isolated_components()

    def test_soft_alarm_raises_warning(self):
        log = EventLog()
        response = ResponseEngine()
        engine = SentinelEngine("unit", response=response)
        engine.attach(log)
        for t in range(MACHINE_PARAMS["can-rate"][1]):
            storm(log, float(t), frames=10)
            engine.tick(float(t))
        alerts = [d.alert for d in response.decisions
                  if d.alert.attack_name == "sentinel:can-rate"]
        assert alerts and all(a.severity is Severity.WARNING for a in alerts)

    def test_trust_collapse_alerts_critical_once(self):
        log = EventLog()
        response = ResponseEngine()
        engine = SentinelEngine("unit", response=response)
        engine.attach(log)
        for t in range(6):
            storm(log, float(t))
            engine.tick(float(t))
        collapses = [d.alert for d in response.decisions
                     if d.alert.attack_name == "sentinel:trust-collapse"]
        assert len(collapses) == 1
        assert collapses[0].severity is Severity.CRITICAL
        assert engine.trust.collapsed() == ["babbler"]


class TestReporting:
    def test_incident_correlation_uses_injected_adjacency(self):
        log = EventLog()
        correlator = CascadeCorrelator({"babbler": {"uwb"}})
        engine = SentinelEngine("unit", correlator=correlator)
        engine.attach(log)
        storm(log, 0.0)
        log.emit(EventKind.RANGING, Layer.PHYSICAL, "uwb", "r",
                 t=0.0, residual_m=-3.0)  # hard physics gate
        engine.tick(0.0)
        [incident] = engine.correlator.incidents
        assert incident.sources == {"babbler", "uwb"}
        assert incident.to_dict()["crossLayer"] is True

    def test_to_dict_is_internally_consistent(self):
        log = EventLog()
        engine = SentinelEngine("unit")
        engine.attach(log)
        storm(log, 0.0)
        engine.tick(0.0)
        document = engine.to_dict()
        assert document["eventsConsumed"] == 1
        assert document["alarmedSources"] == ["babbler"]
        assert document["alarmTransitions"] == sum(
            m["transitions"] for m in document["machines"])
        assert document["firstAlarmT"] == 0.0

    def test_verdicts_land_on_the_shared_timeline(self):
        log = EventLog()
        engine = SentinelEngine("unit")
        engine.attach(log)
        storm(log, 0.0)
        engine.tick(0.0)
        kinds = {e.kind for e in log}
        assert EventKind.ALARM_TRANSITION in kinds
        assert EventKind.INCIDENT in kinds
        assert EventKind.TRUST_UPDATE in kinds
