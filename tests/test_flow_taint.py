"""Taint propagation, path witnesses, hardening cuts — and the PR's
acceptance criteria over the scenario fleet."""

import pytest

from repro.flow import (FlowEdge, FlowGraph, FlowNode, Protection, analyze,
                        propagate_taint, render_cut, render_summary,
                        render_witnesses)
from repro.lint.scenarios import build_scenario

INSECURE = ["pkes-legacy", "onboard-insecure", "cariad-breach", "maas-platform"]


def chain_graph(*protections):
    """n0 -> n1 -> ... with the given per-hop protections; n0 is the
    source, the last node a criticality-5 sink."""
    graph = FlowGraph("chain")
    count = len(protections) + 1
    for i in range(count):
        from repro.core.layers import Layer

        graph.add_node(FlowNode(
            f"n{i}", "component", Layer.NETWORK,
            criticality=5 if i == count - 1 else 2,
            source=i == 0, sink=i == count - 1))
    for i, protection in enumerate(protections):
        graph.add_edge(FlowEdge(f"n{i}", f"n{i + 1}", "interface", protection))
    return graph


class TestPropagation:
    def test_taint_crosses_open_edges_only(self):
        graph = chain_graph(Protection.NONE, Protection.TLS, Protection.NONE)
        tainted = propagate_taint(graph)
        assert set(tainted) == {"n0", "n1"}

    def test_source_has_no_parent_edge(self):
        graph = chain_graph(Protection.NONE)
        tainted = propagate_taint(graph)
        assert tainted["n0"] is None
        assert tainted["n1"].src == "n0"

    def test_weakness_reopens_protected_edge(self):
        graph = FlowGraph("t")
        from repro.core.layers import Layer

        graph.add_node(FlowNode("a", "component", Layer.NETWORK, source=True))
        graph.add_node(FlowNode("b", "component", Layer.NETWORK,
                                criticality=5, sink=True))
        graph.add_edge(FlowEdge("a", "b", "interface", Protection.SECOC,
                                weakness="24-bit MAC"))
        assert set(propagate_taint(graph)) == {"a", "b"}

    def test_bfs_finds_shortest_witness(self):
        # two routes to the sink: 1 hop direct, 2 hops via mid
        from repro.core.layers import Layer

        graph = FlowGraph("t")
        graph.add_node(FlowNode("src", "component", Layer.NETWORK, source=True))
        graph.add_node(FlowNode("mid", "component", Layer.NETWORK))
        graph.add_node(FlowNode("sink", "component", Layer.NETWORK,
                                criticality=5, sink=True))
        graph.add_edge(FlowEdge("src", "mid", "interface", Protection.NONE))
        graph.add_edge(FlowEdge("mid", "sink", "interface", Protection.NONE))
        graph.add_edge(FlowEdge("src", "sink", "interface", Protection.NONE))
        tainted = propagate_taint(graph)
        assert tainted["sink"].src == "src"


class TestAnalyze:
    def test_clean_chain_has_no_witnesses(self):
        graph = chain_graph(Protection.TLS, Protection.TLS)
        tainted = propagate_taint(graph)
        assert set(tainted) == {"n0"}

    def test_witness_structure(self):
        result = analyze(build_scenario("pkes-legacy"))
        (witness,) = result.witnesses
        assert witness.source == "keyfob"
        assert witness.sink == "immobilizer"
        assert witness.nodes == ("keyfob", "pkes-receiver", "body-control",
                                 "immobilizer")
        for line in witness.describe():
            assert "->" in line and ";" in line  # hop + suggestion

    def test_cut_disconnects_when_applied(self):
        """Securing exactly the cut edges makes the sink unreachable."""
        result = analyze(build_scenario("pkes-legacy"))
        cut = result.cuts["immobilizer"]
        assert cut
        model = result.graph.to_system_model()
        removed = model  # rebuild reachability without the cut edges
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(c.name for c in removed.components())
        for interface in removed.interfaces():
            pair = (interface.source, interface.target)
            if pair not in cut:
                graph.add_edge(*pair)
        assert not nx.has_path(graph, "keyfob", "immobilizer")

    def test_witness_for_lookup(self):
        result = analyze(build_scenario("pkes-legacy"))
        assert result.witness_for("immobilizer") is not None
        assert result.witness_for("keyfob") is None


class TestAcceptanceCriteria:
    """The PR gate: every insecure scenario yields a witnessed path and a
    non-empty hardening cut; the hardened scenario is path-clean."""

    @pytest.mark.parametrize("name", INSECURE)
    def test_insecure_scenario_has_witnessed_path(self, name):
        result = analyze(build_scenario(name))
        assert not result.path_clean
        assert len(result.witnesses) >= 1
        for witness in result.witnesses:
            assert len(witness.hops) >= 1
            assert witness.describe()

    @pytest.mark.parametrize("name", INSECURE)
    def test_insecure_scenario_has_nonempty_cut(self, name):
        result = analyze(build_scenario(name))
        assert any(result.cuts.get(w.sink) for w in result.witnesses), \
            result.cuts

    def test_hardened_scenario_is_path_clean(self):
        result = analyze(build_scenario("onboard-hardened"))
        assert result.path_clean, render_witnesses(result)

    @pytest.mark.parametrize("name", INSECURE + ["onboard-hardened"])
    def test_analysis_is_deterministic(self, name):
        def snapshot():
            result = analyze(build_scenario(name))
            return ([(w.source, w.sink, w.nodes) for w in result.witnesses],
                    {sink: sorted(cut) for sink, cut in result.cuts.items()})

        assert snapshot() == snapshot()


class TestRenderers:
    def test_summary_names_verdict(self):
        assert "PATH-CLEAN" in render_summary(
            analyze(build_scenario("onboard-hardened")))
        assert "unprotected" in render_summary(
            analyze(build_scenario("pkes-legacy")))

    def test_witnesses_render_hops(self):
        text = render_witnesses(analyze(build_scenario("pkes-legacy")))
        assert "keyfob => immobilizer" in text
        assert "[1]" in text and "[3]" in text

    def test_cut_renders_edges(self):
        text = render_cut(analyze(build_scenario("pkes-legacy")))
        assert "immobilizer" in text and "->" in text

    def test_clean_renders_benign_messages(self):
        result = analyze(build_scenario("onboard-hardened"))
        assert render_witnesses(result) == "no unprotected paths"
        assert "nothing to cut" in render_cut(result)
