"""Span nesting, timing, exception safety, and the disabled fast path."""

import pytest

from repro.obs.runtime import OBS, instrumented
from repro.obs.trace import NOOP_SPAN, Tracer


class TestNesting:
    def test_sequential_spans_are_siblings(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]
        assert all(not s.children for s in tracer.roots)

    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child-a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert tracer.span_count() == 4
        assert root.span_count() == 4

    def test_depth_tracks_open_spans(self):
        tracer = Tracer()
        assert tracer.depth == 0
        with tracer.span("outer"):
            assert tracer.depth == 1
            with tracer.span("inner"):
                assert tracer.depth == 2
        assert tracer.depth == 0

    def test_tags_via_kwargs_and_set_tag(self):
        tracer = Tracer()
        with tracer.span("tagged", layer="network") as span:
            span.set_tag("frames", 12)
        assert tracer.roots[0].tags == {"layer": "network", "frames": 12}


class TestTiming:
    def test_wall_time_measures_the_block(self):
        import time

        tracer = Tracer()
        with tracer.span("sleepy"):
            time.sleep(0.01)
        span = tracer.roots[0]
        assert span.wall_s >= 0.009
        assert span.cpu_s >= 0.0

    def test_child_wall_time_within_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                sum(range(1000))
        parent = tracer.roots[0]
        assert parent.children[0].wall_s <= parent.wall_s


class TestExceptionSafety:
    def test_exception_closes_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        span = tracer.roots[0]
        assert span.status == "error"
        assert "boom" in span.error
        assert span.wall_s >= 0.0
        assert tracer.depth == 0

    def test_exception_in_nested_span_unwinds_cleanly(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("inner failure")
        outer, = tracer.roots
        assert outer.status == "error"
        assert outer.children[0].status == "error"
        # The tracer is reusable afterwards.
        with tracer.span("next"):
            pass
        assert [s.name for s in tracer.roots] == ["outer", "next"]

    def test_ok_spans_have_no_error_key_in_json(self):
        tracer = Tracer()
        with tracer.span("fine"):
            pass
        assert "error" not in tracer.roots[0].to_dict()


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_noop(self):
        OBS.disable()
        span = OBS.span("anything", tag=1)
        assert span is NOOP_SPAN
        with span as inner:
            inner.set_tag("ignored", True)
        assert OBS.tracer.roots == [] or all(
            s.name != "anything" for s in OBS.tracer.roots)

    def test_enabled_span_is_recorded(self):
        with instrumented() as obs:
            with obs.span("recorded"):
                pass
            assert [s.name for s in obs.tracer.roots] == ["recorded"]

    def test_instrumented_restores_previous_state(self):
        OBS.disable()
        with instrumented():
            assert OBS.enabled
        assert not OBS.enabled
