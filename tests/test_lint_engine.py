"""Rule-engine mechanics: severities, registration, enable/disable, gating."""

import pytest

from repro.core.entities import Component, SystemModel
from repro.core.layers import Layer
from repro.lint import (CATALOG, AnalysisTarget, Finding, Linter, Rule,
                        Severity, full_catalog)


def make_rule(rule_id="TST001", severity=Severity.HIGH, subjects=("thing",)):
    def check(target):
        return [(s, f"{s} is misconfigured") for s in subjects]

    return Rule(rule_id, "test rule", Layer.NETWORK, severity,
                "§TEST", "fix the thing", check)


def empty_target(name="empty"):
    return AnalysisTarget(name=name)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.LOW < Severity.MEDIUM
        assert Severity.MEDIUM < Severity.HIGH < Severity.CRITICAL

    def test_from_name_case_insensitive(self):
        assert Severity.from_name("high") is Severity.HIGH
        assert Severity.from_name("CRITICAL") is Severity.CRITICAL

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.from_name("fatal")


class TestCatalog:
    def test_catalog_size(self):
        # The tentpole promises a catalog spanning every paper layer.
        assert len(CATALOG) >= 18

    def test_rule_ids_unique_and_stable_format(self):
        ids = [r.rule_id for r in CATALOG]
        assert len(ids) == len(set(ids))
        for rule_id in ids:
            assert rule_id[:3].isalpha() and rule_id[3:].isdigit()

    def test_every_layer_covered(self):
        layers = {r.layer for r in CATALOG}
        assert {Layer.PHYSICAL, Layer.NETWORK, Layer.SOFTWARE_PLATFORM,
                Layer.DATA, Layer.SYSTEM_OF_SYSTEMS} <= layers

    def test_metadata_populated(self):
        for rule in CATALOG:
            assert rule.title and rule.paper_ref and rule.remediation


class TestLinter:
    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule id"):
            Linter([make_rule("DUP001"), make_rule("DUP001")])

    def test_run_produces_findings_with_rule_metadata(self):
        linter = Linter([make_rule()])
        report = linter.run(empty_target())
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule_id == "TST001"
        assert finding.severity is Severity.HIGH
        assert finding.paper_ref == "§TEST"
        assert report.rules_run == ("TST001",)

    def test_disable_and_enable(self):
        linter = Linter([make_rule("TST001"), make_rule("TST002")])
        linter.disable("TST001")
        report = linter.run(empty_target())
        assert report.finding_rule_ids() == {"TST002"}
        assert report.rules_run == ("TST002",)
        linter.enable("TST001")
        assert linter.run(empty_target()).finding_rule_ids() == {"TST001", "TST002"}

    def test_disable_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            Linter([make_rule()]).disable("NOPE999")

    def test_findings_sorted_severity_first(self):
        linter = Linter([
            make_rule("AAA001", Severity.LOW),
            make_rule("ZZZ001", Severity.CRITICAL),
        ])
        report = linter.run(empty_target())
        assert [f.rule_id for f in report.findings] == ["ZZZ001", "AAA001"]

    def test_default_linter_uses_full_catalog(self):
        assert ({r.rule_id for r in Linter().rules}
                == {r.rule_id for r in full_catalog()})

    def test_full_catalog_appends_flow_and_rt_families(self):
        # the FLOW rules live in repro.flow and the RT rules in
        # repro.redteam, but both must always be part of the default
        # linter (lazy import, no catalog cycle)
        extra = {r.rule_id for r in full_catalog()} - {r.rule_id for r in CATALOG}
        assert extra == {"FLOW001", "FLOW002", "FLOW003", "FLOW004",
                         "RT001", "RT002", "RT003", "RT004"}


class TestFinding:
    def test_fingerprint_stable_across_message_changes(self):
        base = dict(rule_id="TST001", severity=Severity.HIGH,
                    layer=Layer.NETWORK, subject="ecu-1",
                    paper_ref="x", remediation="y")
        a = Finding(message="old wording", **base)
        b = Finding(message="new improved wording", **base)
        assert a.fingerprint == b.fingerprint
        assert len(a.fingerprint) == 16

    def test_fingerprint_distinguishes_subjects_and_rules(self):
        base = dict(severity=Severity.HIGH, layer=Layer.NETWORK,
                    message="m", paper_ref="x", remediation="y")
        assert (Finding(rule_id="A001", subject="s", **base).fingerprint
                != Finding(rule_id="A001", subject="t", **base).fingerprint)
        assert (Finding(rule_id="A001", subject="s", **base).fingerprint
                != Finding(rule_id="B001", subject="s", **base).fingerprint)


class TestGate:
    def test_exit_code_respects_gate(self):
        linter = Linter([make_rule(severity=Severity.MEDIUM)])
        report = linter.run(empty_target())
        assert report.exit_code(Severity.LOW) == 1
        assert report.exit_code(Severity.MEDIUM) == 1
        assert report.exit_code(Severity.HIGH) == 0
        assert report.exit_code(None) == 0

    def test_clean_report_exits_zero(self):
        model = SystemModel("clean")
        model.add_component(Component("ecu", Layer.NETWORK, criticality=3))
        report = Linter().run(AnalysisTarget.from_model(model))
        assert report.findings == ()
        assert report.exit_code(Severity.INFO) == 0
