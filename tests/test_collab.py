"""Tests for collaborative perception security and intersection competition."""

import pytest

from repro.collab.attacks import ExternalInjector, InternalFabricator
from repro.collab.detection import FusionConfig, SecureCollabFusion
from repro.collab.intersection import Arrival, IntersectionSim
from repro.collab.perception import CollabVehicle, PerceptionWorld, WorldObject


def dense_world():
    """Four vehicles, two objects, everything in everyone's range."""
    objects = [WorldObject(1, 10.0, 10.0), WorldObject(2, 40.0, -20.0)]
    vehicles = [CollabVehicle(f"v{i}", x=i * 15.0, y=0.0) for i in range(4)]
    return PerceptionWorld(objects, vehicles)


class TestPerception:
    def test_sensing_range_respected(self):
        vehicle = CollabVehicle("v", 0.0, 0.0, sensing_range_m=20.0, miss_prob=0.0)
        detections = vehicle.sense([WorldObject(1, 10, 0), WorldObject(2, 50, 0)])
        assert len(detections) == 1

    def test_shares_tagged_with_reporter(self):
        world = dense_world()
        shares = world.collect_shares()
        assert {s.reporter for s in shares} <= {v.name for v in world.vehicles}

    def test_coverage_counts_redundancy(self):
        world = dense_world()
        assert world.coverage_of(world.objects[0]) == 4

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            PerceptionWorld([], [CollabVehicle("v", 0, 0), CollabVehicle("v", 1, 1)])
        with pytest.raises(ValueError):
            PerceptionWorld([WorldObject(1, 0, 0), WorldObject(1, 1, 1)], [])


class TestHonestFusion:
    def test_all_objects_confirmed(self):
        world = dense_world()
        fusion = SecureCollabFusion(world)
        report = fusion.fuse(world.collect_shares())
        assert len(report.confirmed) == 2
        assert report.objects_missed == 0
        assert report.ghosts_accepted == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FusionConfig(quorum=0)
        with pytest.raises(ValueError):
            FusionConfig(gate_m=0.0)


class TestExternalAttacker:
    def test_blocked_by_authentication(self):
        world = dense_world()
        fusion = SecureCollabFusion(world)
        attacker = ExternalInjector(n_ghosts=5)
        shares = world.collect_shares() + attacker.forge_shares()
        report = fusion.fuse(shares)
        assert report.dropped_unauthenticated == 5
        assert report.ghosts_accepted == 0

    def test_succeeds_without_authentication(self):
        world = dense_world()
        fusion = SecureCollabFusion(world, FusionConfig(authenticate=False,
                                                        cross_validate=False,
                                                        quorum=1))
        attacker = ExternalInjector(n_ghosts=5, name="ext2")
        report = fusion.fuse(world.collect_shares() + attacker.forge_shares(area=200.0))
        assert report.ghosts_accepted >= 1

    def test_ghost_count_validation(self):
        with pytest.raises(ValueError):
            ExternalInjector(n_ghosts=0)


class TestInternalAttacker:
    def test_authentication_alone_is_insufficient(self):
        # The paper's core point: the insider's shares authenticate fine.
        world = dense_world()
        fusion = SecureCollabFusion(world, FusionConfig(cross_validate=False, quorum=1))
        attacker = InternalFabricator(world.vehicles[0],
                                      ghost_positions=((25.0, 25.0),))
        report = fusion.fuse(attacker.malicious_shares(world.objects)
                             + [s for v in world.vehicles[1:]
                                for s in v.sense(world.objects)])
        assert report.dropped_unauthenticated == 0
        assert report.ghosts_accepted >= 1

    def test_cross_validation_rejects_ghost_with_redundancy(self):
        world = dense_world()
        fusion = SecureCollabFusion(world)
        attacker = InternalFabricator(world.vehicles[0],
                                      ghost_positions=((25.0, 25.0),))
        reports = fusion.run_rounds(3, lambda objs: attacker.malicious_shares(objs))
        assert all(r.ghosts_accepted == 0 for r in reports)
        assert any(r.flagged_shares > 0 for r in reports)

    def test_ghost_without_redundancy_is_accepted(self):
        # §VII-B: "such redundancy may not always be available".
        objects = [WorldObject(1, 0.0, 0.0)]
        vehicles = [
            CollabVehicle("honest", 0.0, 0.0, sensing_range_m=30.0),
            CollabVehicle("insider", 200.0, 0.0, sensing_range_m=30.0),
        ]
        world = PerceptionWorld(objects, vehicles)
        fusion = SecureCollabFusion(world)
        attacker = InternalFabricator(vehicles[1], ghost_positions=((210.0, 0.0),))
        report = fusion.run_rounds(1, lambda objs: attacker.malicious_shares(objs))[0]
        assert report.ghosts_accepted == 1

    def test_repeated_lies_erode_trust_until_exclusion(self):
        world = dense_world()
        fusion = SecureCollabFusion(world)
        attacker = InternalFabricator(world.vehicles[0],
                                      ghost_positions=((25.0, 25.0),))
        fusion.run_rounds(10, lambda objs: attacker.malicious_shares(objs))
        assert fusion.trust.score("v0") < fusion.config.trust_threshold
        assert "v0" not in fusion.trust.trusted_members(fusion.config.trust_threshold)

    def test_suppression_attack_covered_by_other_vehicles(self):
        world = dense_world()
        fusion = SecureCollabFusion(world)
        attacker = InternalFabricator(world.vehicles[0],
                                      suppress_targets=((10.0, 10.0),))
        report = fusion.run_rounds(1, lambda objs: attacker.malicious_shares(objs))[0]
        assert report.objects_missed == 0  # redundancy compensates


class TestIntersection:
    def test_cooperative_traffic_flows(self):
        sim = IntersectionSim(seed_label="t1")
        arrivals = sim.generate_arrivals(40, policy_mix={"cooperative": 1.0})
        result = sim.run(arrivals)
        assert result.crossed == 40
        assert not result.deadlocked

    def test_selfish_vehicles_win_the_optimization_battle(self):
        sim = IntersectionSim(seed_label="t2")
        arrivals = sim.generate_arrivals(
            80, policy_mix={"cooperative": 0.5, "selfish": 0.5})
        result = sim.run(arrivals)
        assert result.preemptions > 0
        assert result.waits_by_policy["selfish"] < result.waits_by_policy["cooperative"]

    def test_regulation_removes_preemption_and_equalizes(self):
        sim = IntersectionSim(seed_label="t2")
        arrivals = sim.generate_arrivals(
            80, policy_mix={"cooperative": 0.5, "selfish": 0.5})
        unregulated = sim.run(arrivals)
        regulated = IntersectionSim(regulated=True, seed_label="t2").run(arrivals)
        assert regulated.preemptions == 0
        gap_unreg = (unregulated.waits_by_policy["cooperative"]
                     - unregulated.waits_by_policy["selfish"])
        gap_reg = abs(regulated.waits_by_policy["cooperative"]
                      - regulated.waits_by_policy["selfish"])
        assert gap_reg < gap_unreg

    def test_overpolite_cluster_deadlocks(self):
        sim = IntersectionSim(seed_label="t3")
        arrivals = [Arrival(0, approach, "deadlock-prone") for approach in range(4)]
        result = sim.run(arrivals, max_steps=100)
        assert result.deadlocked
        assert result.crossed == 0

    def test_regulation_breaks_the_deadlock(self):
        sim = IntersectionSim(regulated=True, seed_label="t3")
        arrivals = [Arrival(0, approach, "deadlock-prone") for approach in range(4)]
        result = sim.run(arrivals, max_steps=100)
        assert result.crossed == 4
        assert not result.deadlocked

    def test_single_polite_vehicle_eventually_crosses(self):
        sim = IntersectionSim(seed_label="t4")
        result = sim.run([Arrival(0, 0, "deadlock-prone")], max_steps=100)
        assert result.crossed == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Arrival(0, 0, "reckless")
        with pytest.raises(ValueError):
            Arrival(0, 5, "cooperative")
        sim = IntersectionSim()
        with pytest.raises(ValueError):
            sim.generate_arrivals(10, policy_mix={"cooperative": 0.5})


class TestProbationRehabilitation:
    def test_cleaned_attacker_regains_trust(self):
        world = dense_world()
        fusion = SecureCollabFusion(world)
        attacker = InternalFabricator(world.vehicles[0],
                                      ghost_positions=((25.0, 25.0),))
        # Phase 1: fabricate until excluded.
        fusion.run_rounds(10, lambda objs: attacker.malicious_shares(objs))
        threshold = fusion.config.trust_threshold
        assert fusion.trust.score("v0") < threshold
        # Phase 2: the compromise is cleaned; v0 reports honestly. Its
        # corroborating shares rebuild trust round by round.
        fusion.run_rounds(20, None)
        assert fusion.trust.score("v0") >= threshold

    def test_persisting_attacker_stays_excluded(self):
        world = dense_world()
        fusion = SecureCollabFusion(world)
        attacker = InternalFabricator(world.vehicles[0],
                                      ghost_positions=((25.0, 25.0),))
        fusion.run_rounds(25, lambda objs: attacker.malicious_shares(objs))
        # Still lying: ghosts keep the penalties coming faster than any
        # probation reward (honest detections do corroborate).
        assert fusion.trust.score("v0") < 0.5
