"""Tests for Message Time-of-Arrival Codes ([7])."""

import numpy as np
import pytest

from repro.phy.mtac import MtacCode, attack_acceptance_probability

KEY = b"\xC3" * 16


class TestHonestOperation:
    def test_honest_transmission_accepted(self):
        code = MtacCode(KEY)
        verdict = code.verify(0, code.transmit(0))
        assert verdict.accepted
        assert verdict.matching_fraction > 0.85  # only channel losses

    def test_assignment_deterministic_and_fresh(self):
        code = MtacCode(KEY)
        assert np.array_equal(code.slot_assignment(3), code.slot_assignment(3))
        assert not np.array_equal(code.slot_assignment(3), code.slot_assignment(4))

    def test_assignment_secret_per_key(self):
        a = MtacCode(KEY).slot_assignment(0)
        b = MtacCode(b"\xC4" * 16).slot_assignment(0)
        assert not np.array_equal(a, b)

    def test_lossy_channel_tolerated(self):
        code = MtacCode(KEY, accept_fraction=0.7)
        verdict = code.verify(1, code.transmit(1), pulse_loss_prob=0.15)
        assert verdict.accepted


class TestAdvanceAttack:
    def test_pure_guessing_rejected(self):
        code = MtacCode(KEY)
        for index in range(5):
            slots = code.advance_attack_slots(index)
            verdict = code.verify(index, slots)
            assert not verdict.accepted
            assert verdict.matching_fraction < 0.4

    def test_partial_knowledge_helps_but_insufficient(self):
        code = MtacCode(KEY)
        weak = code.verify(0, code.advance_attack_slots(0, known_fraction=0.0))
        strong = code.verify(0, code.advance_attack_slots(0, known_fraction=0.5))
        assert strong.matching_fraction > weak.matching_fraction
        assert not strong.accepted

    def test_full_knowledge_wins(self):
        # Sanity bound: an attacker knowing the whole assignment is the
        # legitimate sender.
        code = MtacCode(KEY)
        verdict = code.verify(0, code.advance_attack_slots(0, known_fraction=1.0))
        assert verdict.accepted

    def test_analytic_probability_negligible(self):
        p = attack_acceptance_probability(64, 8, 0.75)
        assert p < 1e-25

    def test_analytic_monotone_in_slots(self):
        probs = [attack_acceptance_probability(32, s, 0.5) for s in (2, 4, 8, 16)]
        assert probs == sorted(probs, reverse=True)

    def test_analytic_monotone_in_length(self):
        probs = [attack_acceptance_probability(n, 4, 0.5) for n in (8, 16, 32, 64)]
        assert probs == sorted(probs, reverse=True)

    def test_simulation_matches_theory_for_weak_code(self):
        # A deliberately weak code (2 slots, low threshold) where the
        # guessing attacker sometimes wins: Monte-Carlo vs binomial.
        code = MtacCode(KEY, n_pulses=16, slots_per_symbol=2,
                        accept_fraction=0.5)
        theory = attack_acceptance_probability(16, 2, 0.5)
        wins = sum(
            code.verify(i, code.advance_attack_slots(i), pulse_loss_prob=0.0).accepted
            for i in range(300)
        )
        assert abs(wins / 300 - theory) < 0.15


class TestValidation:
    def test_parameter_bounds(self):
        with pytest.raises(ValueError):
            MtacCode(KEY, n_pulses=4)
        with pytest.raises(ValueError):
            MtacCode(KEY, slots_per_symbol=1)
        with pytest.raises(ValueError):
            MtacCode(KEY, accept_fraction=0.0)

    def test_shape_mismatch(self):
        code = MtacCode(KEY)
        with pytest.raises(ValueError):
            code.verify(0, np.zeros(10))

    def test_known_fraction_bounds(self):
        code = MtacCode(KEY)
        with pytest.raises(ValueError):
            code.advance_attack_slots(0, known_fraction=1.5)
