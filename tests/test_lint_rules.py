"""One positive + one negative fixture per lint rule.

For every rule in the catalog: a *bad* target that must trigger exactly
that rule id, and a *good* target — the minimal fix — that must not.
Other rules may fire on either fixture; each case asserts only on its
own rule id.
"""

import dataclasses

import pytest

from repro.core.entities import Component, Interface, SystemModel
from repro.core.layers import Layer
from repro.core.threats import AccessLevel
from repro.lint import AnalysisTarget, GatewayBinding, Linter, full_catalog


# --------------------------------------------------------------------------
# shared fixture helpers
# --------------------------------------------------------------------------

def two_node_model(*, authenticated=False, encrypted=False, criticality=5,
                   layers=(Layer.NETWORK, Layer.NETWORK), exposed=True,
                   access=AccessLevel.REMOTE):
    model = SystemModel("fixture")
    model.add_component(Component("entry", layers[0], criticality=2,
                                  exposed=exposed))
    model.add_component(Component("ecu", layers[1], criticality=criticality))
    model.connect(Interface("entry", "ecu", "link", access,
                            authenticated=authenticated, encrypted=encrypted))
    return model


def target_with_model(model):
    return AnalysisTarget(name="fixture", model=model)


def secoc_target(profile):
    target = AnalysisTarget(name="fixture")
    target.secoc_profiles["pdus"] = profile
    return target


def cloud_target(service, mitigations=()):
    target = AnalysisTarget(name="fixture")
    target.add_cloud_service(service)
    target.mitigations = set(mitigations)
    return target


def simple_service(**endpoint_kwargs):
    from repro.datalayer.cloud import CloudService, Endpoint

    service = CloudService("svc")
    service.add_endpoint(Endpoint("/api", **endpoint_kwargs))
    return service


def credential_target(*, validity_s=365 * 86400.0, self_issued=False,
                      register_issuer=True, revoke=False, now=1000.0):
    from repro.ssi.did import Did, DidDocument, KeyPair
    from repro.ssi.registry import VerifiableDataRegistry
    from repro.ssi.vc import VerifiableCredential

    registry = VerifiableDataRegistry()
    issuer_did, issuer_key = Did("issuer"), KeyPair.from_seed_label("issuer")
    subject_did = issuer_did if self_issued else Did("subject")
    if register_issuer:
        registry.register(DidDocument.for_keypair(issuer_did, issuer_key))
    credential = VerifiableCredential.issue(
        credential_type="TestCredential", issuer=issuer_did,
        issuer_key=issuer_key, subject=subject_did,
        claims={"ok": True}, issued_at=0.0, validity_s=validity_s)
    if revoke:
        registry.revoke_credential(credential.credential_id, issuer_did)
    target = AnalysisTarget(name="fixture", registry=registry, now=now)
    target.add_credential(credential)
    return target


def gateway_target(*, toward_critical: bool, span: int = 16):
    from repro.ivn.gateway import GatewayFilter

    model = two_node_model()
    gateway = GatewayFilter("gw")
    binding = GatewayBinding(gateway)
    binding.attach("outside", "entry")
    binding.attach("inside", "ecu")
    if toward_critical:
        gateway.allow("outside", "inside", 0x100, 0x100 + span - 1)
    else:
        gateway.allow("inside", "outside", 0x100, 0x100 + span - 1)
    target = target_with_model(model)
    target.add_gateway(binding)
    return target


def lifecycle_target(rekey_fraction):
    from repro.ivn.keymgmt import KeyLifecycleManager
    from repro.ivn.macsec import MacsecPort, MkaSession

    session = MkaSession(b"\x28" * 16, [MacsecPort("a"), MacsecPort("b")])
    target = AnalysisTarget(name="fixture")
    target.lifecycle_managers.append(
        KeyLifecycleManager(session, rekey_fraction=rekey_fraction))
    return target


def cansec_target(encrypt):
    from repro.ivn.cansec import CansecZone

    target = AnalysisTarget(name="fixture")
    target.cansec_zones["zone"] = CansecZone(b"\x31" * 16, encrypt=encrypt)
    return target


def zonal_target(low_criticality):
    from repro.ivn.topology import Endpoint, Zone, ZonalArchitecture

    arch = ZonalArchitecture(telematics_exposed=False)
    arch.add_zone(Zone("zc", [
        Endpoint("brake", "can", criticality=5),
        Endpoint("other", "can", criticality=low_criticality),
    ]))
    return AnalysisTarget(name="fixture", zonal=arch)


def sos_target(*, third_party=False, realtime=False, secured=False,
               stakeholder="oem"):
    from repro.sos.model import SosModel, SosSystem, SystemInterface

    root = SosSystem("platform", 0, stakeholder="consortium")
    root.add_child(SosSystem("vehicle", 1, stakeholder=stakeholder,
                             safety_critical=True))
    root.add_child(SosSystem("backend", 1, stakeholder="operator",
                             exposed=True))
    model = SosModel(root)
    model.connect(SystemInterface("vehicle", "backend", "api",
                                  realtime=realtime, third_party=third_party,
                                  secured=secured))
    return AnalysisTarget(name="fixture", sos=model)


def pkes_target(policy):
    from repro.phy.pkes import PkesSystem

    target = AnalysisTarget(name="fixture")
    target.pkes_systems.append(PkesSystem(policy=policy))
    return target


def hrp_target(integrity_check):
    from repro.phy.hrp import HrpReceiver

    target = AnalysisTarget(name="fixture")
    target.hrp_receivers.append(HrpReceiver(integrity_check=integrity_check))
    return target


def key_domain_target(n_domains):
    target = AnalysisTarget(name="fixture")
    target.assign_key("key-1", *[f"zone-{i}" for i in range(n_domains)])
    return target


def registry_target(tampered):
    from repro.ssi.did import Did, DidDocument, KeyPair
    from repro.ssi.registry import VerifiableDataRegistry

    registry = VerifiableDataRegistry()
    for name in ("alpha", "beta"):
        registry.register(DidDocument.for_keypair(
            Did(name), KeyPair.from_seed_label(name)))
    if tampered:
        registry._ledger[0] = dataclasses.replace(
            registry._ledger[0], content_hash="f" * 64)
    return AnalysisTarget(name="fixture", registry=registry)


def cariad_target(mitigations=()):
    from repro.datalayer.breach import build_cariad_service

    service, _ = build_cariad_service(n_vehicles=2, days=1,
                                      mitigations=set(mitigations))
    return cloud_target(service, mitigations)


def secret_service(scopes, in_memory):
    from repro.datalayer.cloud import CloudService, Secret

    service = CloudService("svc")
    service.add_secret(Secret("key-1", frozenset(scopes),
                              in_process_memory=in_memory))
    return service


def bucket_service(encrypted):
    from repro.datalayer.cloud import CloudService, StorageBucket

    service = CloudService("svc")
    bucket = StorageBucket("records", required_scope="read")
    bucket.records.append({"vin": "V1", "encrypted": encrypted})
    service.add_bucket(bucket)
    return service


def rt_can_target(authenticated):
    """RT003 fixture: exposed node sharing a CAN segment with a
    safety-critical ECU — bus-off disruption unless authenticated."""
    model = SystemModel("fixture")
    model.add_component(Component("entry", Layer.NETWORK, criticality=2,
                                  exposed=True))
    model.add_component(Component("brake-ecu", Layer.NETWORK, criticality=5))
    model.connect(Interface("entry", "brake-ecu", "can", AccessLevel.REMOTE,
                            authenticated=authenticated))
    return target_with_model(model)


def flow_datastore_target(leaky):
    """FLOW002 fixture: public endpoint + heap key + populated bucket."""
    from repro.datalayer.cloud import (CloudService, Endpoint, Secret,
                                       StorageBucket)

    service = CloudService("svc")
    service.add_endpoint(Endpoint("/public", auth_required=not leaky))
    service.add_secret(Secret("master", frozenset({"read"}),
                              in_process_memory=leaky))
    bucket = StorageBucket("records", required_scope="read")
    bucket.records.append({"vin": "V1", "encrypted": True})
    service.add_bucket(bucket)
    return cloud_target(service)


# --------------------------------------------------------------------------
# the per-rule fixture table
# --------------------------------------------------------------------------

def _secoc(profile_name, freshness, mac):
    from repro.ivn.secoc import SecOcProfile

    return SecOcProfile(profile_name, freshness_bits=freshness, mac_bits=mac)


FIXTURES = {
    "SEC001": (lambda: target_with_model(two_node_model(authenticated=False)),
               lambda: target_with_model(two_node_model(authenticated=True))),
    "SEC002": (lambda: target_with_model(two_node_model(authenticated=False)),
               lambda: target_with_model(two_node_model(authenticated=True))),
    "SEC003": (lambda: target_with_model(two_node_model(
                   layers=(Layer.NETWORK, Layer.DATA), encrypted=False)),
               lambda: target_with_model(two_node_model(
                   layers=(Layer.NETWORK, Layer.DATA), encrypted=True))),
    "SEC004": (lambda: target_with_model(two_node_model(authenticated=False)),
               lambda: target_with_model(two_node_model(authenticated=True))),
    "SEC005": (lambda: target_with_model(_exposed_critical_model(True)),
               lambda: target_with_model(_exposed_critical_model(False))),
    "IVN001": (lambda: secoc_target(_secoc("p1", 8, 24)),
               lambda: secoc_target(_secoc("p3", 16, 64))),
    "IVN002": (lambda: secoc_target(_secoc("legacy", 0, 64)),
               lambda: secoc_target(_secoc("p3", 16, 64))),
    "IVN003": (lambda: secoc_target(_secoc("p1", 8, 64)),
               lambda: secoc_target(_secoc("p3", 16, 64))),
    "IVN004": (lambda: key_domain_target(2), lambda: key_domain_target(1)),
    "IVN005": (lambda: gateway_target(toward_critical=True),
               lambda: gateway_target(toward_critical=False)),
    "IVN006": (lambda: gateway_target(toward_critical=False, span=2048),
               lambda: gateway_target(toward_critical=False, span=16)),
    "IVN007": (lambda: lifecycle_target(0.98), lambda: lifecycle_target(0.8)),
    "IVN008": (lambda: cansec_target(False), lambda: cansec_target(True)),
    "IVN009": (lambda: zonal_target(1), lambda: zonal_target(3)),
    "DAT001": (lambda: cloud_target(simple_service(debug=True)),
               lambda: cloud_target(simple_service(debug=False))),
    "DAT002": (lambda: cloud_target(simple_service(auth_required=False)),
               lambda: cloud_target(simple_service(auth_required=True))),
    "DAT003": (lambda: cloud_target(secret_service({"read"}, True)),
               lambda: cloud_target(secret_service({"read"}, False))),
    "DAT004": (lambda: cloud_target(secret_service({"iam:mint"}, False)),
               lambda: cloud_target(secret_service({"telemetry:read"}, False))),
    "DAT005": (lambda: cloud_target(simple_service()),
               lambda: cloud_target(simple_service(),
                                    mitigations={"rate-limit-enumeration"})),
    "DAT006": (lambda: cloud_target(bucket_service(False)),
               lambda: cloud_target(bucket_service(True))),
    "DAT007": (lambda: cariad_target(),
               lambda: cariad_target({"disable-debug-endpoints"})),
    "SSI001": (lambda: credential_target(validity_s=100.0, now=1000.0),
               lambda: credential_target(now=1000.0)),
    "SSI002": (lambda: credential_target(self_issued=True),
               lambda: credential_target(self_issued=False)),
    "SSI003": (lambda: credential_target(register_issuer=False),
               lambda: credential_target(register_issuer=True)),
    "SSI004": (lambda: credential_target(revoke=True),
               lambda: credential_target(revoke=False)),
    "SSI005": (lambda: registry_target(tampered=True),
               lambda: registry_target(tampered=False)),
    "PHY001": (lambda: pkes_target("lf-rssi"), lambda: pkes_target("uwb-hrp")),
    "PHY002": (lambda: hrp_target(False), lambda: hrp_target(True)),
    "SOS001": (lambda: sos_target(third_party=True, secured=False),
               lambda: sos_target(third_party=True, secured=True)),
    "SOS002": (lambda: sos_target(realtime=True, secured=False),
               lambda: sos_target(realtime=True, secured=True)),
    "SOS003": (lambda: sos_target(stakeholder=""),
               lambda: sos_target(stakeholder="oem")),
    "FLOW001": (lambda: target_with_model(two_node_model(authenticated=False)),
                lambda: target_with_model(two_node_model(authenticated=True))),
    "FLOW002": (lambda: flow_datastore_target(True),
                lambda: flow_datastore_target(False)),
    "FLOW003": (lambda: gateway_target(toward_critical=True),
                lambda: gateway_target(toward_critical=False)),
    "FLOW004": (lambda: credential_target(validity_s=100.0, now=1000.0),
                lambda: credential_target(now=1000.0)),
    "RT001": (lambda: target_with_model(two_node_model(authenticated=False)),
              lambda: target_with_model(two_node_model(authenticated=True))),
    "RT002": (lambda: flow_datastore_target(True),
              lambda: flow_datastore_target(False)),
    "RT003": (lambda: rt_can_target(False), lambda: rt_can_target(True)),
    "RT004": (lambda: target_with_model(two_node_model(
                  layers=(Layer.PHYSICAL, Layer.NETWORK))),
              lambda: target_with_model(two_node_model(authenticated=True))),
}


def _exposed_critical_model(exposed):
    model = SystemModel("fixture")
    model.add_component(Component("brake", Layer.NETWORK, criticality=5,
                                  exposed=exposed))
    return model


def test_every_rule_has_fixtures():
    """Catalog-coverage meta-test: every rule in the *full* catalog
    (including the cross-package FLOW family) must ship one positive and
    one negative fixture; a new rule without fixtures fails here."""
    assert set(FIXTURES) == {rule.rule_id for rule in full_catalog()}
    for rule_id, pair in FIXTURES.items():
        assert len(pair) == 2, f"{rule_id}: need (bad, good) builders"
        assert all(callable(builder) for builder in pair), rule_id


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_fires_on_bad_fixture(rule_id):
    bad, _ = FIXTURES[rule_id]
    report = Linter().run(bad())
    assert rule_id in report.finding_rule_ids(), report.to_table()


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_silent_on_good_fixture(rule_id):
    _, good = FIXTURES[rule_id]
    report = Linter().run(good())
    assert rule_id not in report.finding_rule_ids(), report.to_table()


def test_rules_are_side_effect_free():
    """Linting twice yields identical findings (no state mutated)."""
    target = cariad_target()
    first = Linter().run(target)
    second = Linter().run(target)
    assert [f.to_dict() for f in first.findings] \
        == [f.to_dict() for f in second.findings]
