"""Hot-path instrumentation: each layer reports the right events — and
stays completely silent when the observability layer is disabled."""

from repro.core.layers import Layer
from repro.core.response import ResponseEngine, SecurityAlert, Severity
from repro.obs.events import EventKind
from repro.obs.runtime import OBS, instrumented


def _run_bus_frames(n=3):
    from repro.core.events import Simulator
    from repro.ivn.bus import BusNode, CanBus
    from repro.ivn.frames import CanFrame

    sim = Simulator()
    bus = CanBus(sim)
    bus.attach(BusNode("a"))
    bus.attach(BusNode("b"))
    for _ in range(n):
        bus.send("a", CanFrame(0x123, b"\x01" * 8))
    sim.run()


class TestDisabledSilence:
    def test_no_layer_emits_when_disabled(self):
        OBS.disable()
        before_events = len(OBS.events)
        before_metrics = len(OBS.metrics)
        _run_bus_frames()
        from repro.phy.ranging import ds_twr

        ds_twr(10.0)
        assert len(OBS.events) == before_events
        assert len(OBS.metrics) == before_metrics


class TestNetworkLayer:
    def test_bus_emits_send_and_delivery(self):
        with instrumented() as obs:
            _run_bus_frames(3)
            assert obs.metrics.counter("ivn.bus.frames_sent").value == 3
            assert obs.metrics.counter("ivn.bus.frames_delivered").value == 3
            assert len(obs.events.events(kind=EventKind.FRAME_SENT)) == 3
            assert len(obs.events.events(kind=EventKind.FRAME_DELIVERED)) == 3
            assert obs.metrics.histogram("ivn.bus.latency_s").count == 3
            assert obs.events.layers() == {Layer.NETWORK}

    def test_secoc_reports_verified_and_rejected(self):
        from dataclasses import replace

        from repro.ivn.secoc import PROFILE_3, SecOcChannel

        with instrumented() as obs:
            sender = SecOcChannel(b"\x22" * 16, PROFILE_3)
            receiver = SecOcChannel(b"\x22" * 16, PROFILE_3)
            assert receiver.verify(sender.secure(0x300, b"ok"))
            honest = sender.secure(0x300, b"evil")
            forged = replace(honest,
                             truncated_mac=bytes(len(honest.truncated_mac)))
            assert not receiver.verify(forged)
            assert len(obs.events.events(kind=EventKind.MAC_VERIFIED)) == 1
            rejected = obs.events.events(kind=EventKind.MAC_REJECTED)
            assert len(rejected) == 1
            assert rejected[0].source == "pdu-0x300"

    def test_busoff_emits_ids_alert_and_eviction(self):
        from repro.ivn.busoff import BusOffAttack, simulate_busoff

        with instrumented() as obs:
            simulate_busoff(BusOffAttack(), rounds=100, defend=True)
            outcome_events = obs.events.events(kind=EventKind.BUS_OFF)
            alert_events = obs.events.events(kind=EventKind.IDS_ALERT)
            # A defended run must at least raise the detector alert.
            assert alert_events or outcome_events


class TestPhysicalLayer:
    def test_ranging_observes_error_and_emits(self):
        from repro.phy.ranging import ds_twr, ss_twr

        with instrumented() as obs:
            ds_twr(12.0, extra_path_m=5.0)
            ss_twr(12.0)
            assert obs.metrics.counter("phy.ranging.measurements").value == 2
            events = obs.events.events(kind=EventKind.RANGING)
            assert {event.source for event in events} == {"ds-twr", "ss-twr"}
            assert obs.metrics.histogram("phy.ranging.error_m").count == 2


class TestDataLayer:
    def test_killchain_spans_and_attack_steps(self):
        from repro.datalayer.breach import run_breach

        with instrumented() as obs:
            run_breach()
            steps = obs.events.events(kind=EventKind.ATTACK_STEP)
            assert len(steps) >= 1
            assert all(event.layer is Layer.DATA for event in steps)
            spans = [span for span in obs.tracer.roots
                     if span.name == "datalayer.killchain"]
            assert spans and spans[0].tags["stages"] == 6
            succeeded = obs.metrics.counter(
                "datalayer.killchain.stages_succeeded").value
            assert succeeded == len(steps) or succeeded == len(steps) - 1


class TestCollaborationLayer:
    def test_trust_updates_emitted_only_on_change(self):
        from repro.collab.detection import TrustManager

        with instrumented() as obs:
            trust = TrustManager(["veh-a"])
            trust.penalize("veh-a")
            trust.reward_member("veh-a")
            events = obs.events.events(kind=EventKind.TRUST_UPDATE)
            assert len(events) == 2
            assert all(event.layer is Layer.COLLABORATION for event in events)
            # Rewarding at the ceiling changes nothing — no event.
            fresh = TrustManager(["veh-b"])
            fresh.reward_member("veh-b")
            assert len(obs.events.events(kind=EventKind.TRUST_UPDATE)) == 2


class TestResponseEngine:
    def _alert(self, confidence=1.0):
        return SecurityAlert(time=1.5, layer=Layer.NETWORK, component="ecu-7",
                             attack_name="busoff", severity=Severity.CRITICAL,
                             confidence=confidence)

    def test_alert_and_decision_reported(self):
        with instrumented() as obs:
            engine = ResponseEngine()
            decision = engine.handle(self._alert())
            alerts = obs.events.events(kind=EventKind.IDS_ALERT)
            actions = obs.events.events(kind=EventKind.RESPONSE_ACTION)
            assert len(alerts) == 1 and alerts[0].t == 1.5
            assert len(actions) == 1
            assert actions[0].fields["action"] == decision.action.name
            assert obs.metrics.counter("core.response.alerts").value == 1
            assert obs.metrics.counter("core.response.decisions").value == 1

    def test_low_confidence_branch_also_reported(self):
        with instrumented() as obs:
            ResponseEngine(min_confidence=0.9).handle(self._alert(0.1))
            actions = obs.events.events(kind=EventKind.RESPONSE_ACTION)
            assert len(actions) == 1
            assert actions[0].fields["action"] == "LOG_ONLY"

    def test_engine_works_with_obs_disabled(self):
        OBS.disable()
        engine = ResponseEngine()
        decision = engine.handle(self._alert())
        assert engine.decisions == [decision]
