"""The ``python -m repro flow`` subcommand: verdicts, witnesses, cuts,
JSON/SARIF output, gates, and baselines."""

import json

from repro.__main__ import main
from repro.lint import validate_report_dict
from repro.lint.sarif import validate_sarif_dict


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestVerdicts:
    def test_hardened_is_path_clean_and_exits_zero(self, capsys):
        code, out, _ = run_cli(capsys, "flow", "onboard-hardened")
        assert code == 0
        assert "PATH-CLEAN" in out

    def test_insecure_exits_nonzero_with_path_count(self, capsys):
        code, out, _ = run_cli(capsys, "flow", "onboard-insecure")
        assert code == 1
        assert "unprotected source->sink path" in out

    def test_all_covers_every_scenario(self, capsys):
        code, out, _ = run_cli(capsys, "flow", "all", "--gate", "none")
        assert code == 0
        for name in ("pkes-legacy", "cariad-breach", "onboard-insecure",
                     "onboard-hardened", "maas-platform"):
            assert name in out


class TestWitnessOutput:
    def test_paths_prints_hop_by_hop_witness(self, capsys):
        _, out, _ = run_cli(capsys, "flow", "pkes-legacy", "--paths")
        assert "keyfob => immobilizer" in out
        assert "[1] keyfob -> pkes-receiver" in out

    def test_cut_prints_hardening_edges(self, capsys):
        _, out, _ = run_cli(capsys, "flow", "pkes-legacy", "--cut")
        assert "secure 1 edge(s)" in out
        assert "body-control->immobilizer" in out


class TestMachineOutput:
    def test_json_validates_and_contains_only_flow_rules(self, capsys):
        code, out, _ = run_cli(capsys, "flow", "cariad-breach", "--json")
        assert code == 1
        document = json.loads(out)
        validate_report_dict(document)
        assert {r["id"] for r in document["rules"]} \
            == {"FLOW001", "FLOW002", "FLOW003", "FLOW004"}
        assert document["summary"]["total"] >= 1

    def test_sarif_validates(self, capsys):
        code, out, _ = run_cli(capsys, "flow", "onboard-insecure", "--sarif")
        assert code == 1
        document = json.loads(out)
        validate_sarif_dict(document)
        results = document["runs"][0]["results"]
        assert any(r["ruleId"] == "FLOW001" for r in results)

    def test_sarif_clean_run_has_no_results(self, capsys):
        code, out, _ = run_cli(capsys, "flow", "onboard-hardened", "--sarif")
        assert code == 0
        document = json.loads(out)
        validate_sarif_dict(document)
        assert document["runs"][0]["results"] == []


class TestGatesAndBaselines:
    def test_gate_none_reports_without_failing(self, capsys):
        code, _, _ = run_cli(capsys, "flow", "onboard-insecure",
                             "--gate", "none")
        assert code == 0

    def test_gate_critical_ignores_medium_findings(self, capsys):
        # maas-platform has FLOW001 criticals; onboard-insecure's FLOW003
        # mediums alone would pass a critical gate
        code, _, _ = run_cli(capsys, "flow", "maas-platform",
                             "--gate", "critical")
        assert code == 1

    def test_lint_baseline_also_suppresses_flow_findings(self, capsys,
                                                         tmp_path):
        path = tmp_path / "baseline.json"
        code, _, _ = run_cli(capsys, "lint", "onboard-insecure",
                             "--write-baseline", str(path))
        assert code == 0
        code, _, _ = run_cli(capsys, "flow", "onboard-insecure",
                             "--baseline", str(path))
        assert code == 0

    def test_flow_write_baseline_round_trip(self, capsys, tmp_path):
        path = tmp_path / "baseline.json"
        code, out, _ = run_cli(capsys, "flow", "onboard-insecure",
                               "--write-baseline", str(path))
        assert code == 0
        assert "wrote baseline" in out
        code, _, _ = run_cli(capsys, "flow", "onboard-insecure",
                             "--baseline", str(path))
        assert code == 0

    def test_missing_scenario_is_usage_error(self, capsys):
        code, _, err = run_cli(capsys, "flow")
        assert code == 2
        assert "scenario" in err

    def test_unknown_scenario_is_usage_error(self, capsys):
        code, _, err = run_cli(capsys, "flow", "bogus")
        assert code == 2
        assert "unknown scenario" in err
