"""Shard/campaign specs: validation, identity, matrix construction."""

import pytest

from repro.campaign import CampaignSpec, CampaignTool, ShardSpec


class TestShardSpec:
    def test_plan_tool_shard_round_trips(self):
        shard = ShardSpec(tool=CampaignTool.CHAOS, scenario="pkes-legacy",
                          plan="baseline", seed=3, duration=30)
        assert shard.shard_id == "chaos/pkes-legacy/baseline/s3"
        assert ShardSpec.from_dict(shard.to_dict()) == shard

    def test_static_tool_shard_round_trips(self):
        shard = ShardSpec(tool=CampaignTool.LINT, scenario="maas-platform",
                          seed=1)
        assert shard.shard_id == "lint/maas-platform/-/s1"
        assert shard.plan == "-" and shard.duration == 0
        assert ShardSpec.from_dict(shard.to_dict()) == shard

    def test_plan_tools_require_plan_and_duration(self):
        with pytest.raises(ValueError, match="fault plan"):
            ShardSpec(tool=CampaignTool.SENTINEL, scenario="pkes-legacy")
        with pytest.raises(ValueError, match="duration"):
            ShardSpec(tool=CampaignTool.CHAOS, scenario="pkes-legacy",
                      plan="baseline", duration=0)

    def test_static_tools_reject_plan_and_duration(self):
        with pytest.raises(ValueError, match="static"):
            ShardSpec(tool=CampaignTool.LINT, scenario="pkes-legacy",
                      plan="baseline")
        with pytest.raises(ValueError, match="static"):
            ShardSpec(tool=CampaignTool.FLOW, scenario="pkes-legacy",
                      duration=5)

    def test_basic_field_validation(self):
        with pytest.raises(ValueError, match="scenario"):
            ShardSpec(tool=CampaignTool.LINT, scenario="")
        with pytest.raises(ValueError, match="seed"):
            ShardSpec(tool=CampaignTool.LINT, scenario="x", seed=-1)

    def test_from_dict_rejects_mismatched_id(self):
        entry = ShardSpec(tool=CampaignTool.LINT, scenario="x").to_dict()
        entry["id"] = "lint/other/-/s0"
        with pytest.raises(ValueError, match="does not match"):
            ShardSpec.from_dict(entry)

    def test_from_dict_rejects_unknown_tool(self):
        entry = ShardSpec(tool=CampaignTool.LINT, scenario="x").to_dict()
        entry["tool"] = "fuzzer"
        with pytest.raises(ValueError, match="tool"):
            ShardSpec.from_dict(entry)


class TestCampaignSpec:
    def matrix(self, **kwargs):
        kwargs.setdefault("tools", ["chaos", "lint"])
        kwargs.setdefault("scenarios", ["pkes-legacy", "onboard-insecure"])
        kwargs.setdefault("plans", ["baseline", "severe"])
        kwargs.setdefault("seeds", [0, 1])
        return CampaignSpec.matrix(**kwargs)

    def test_matrix_cross_product_and_plan_collapse(self):
        spec = self.matrix()
        # chaos: 2 scenarios x 2 plans x 2 seeds; lint: 2 x 2 (no plans)
        assert len(spec) == 8 + 4
        ids = [shard.shard_id for shard in spec.shards]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        lint = [s for s in spec.shards if s.tool is CampaignTool.LINT]
        assert all(s.plan == "-" and s.duration == 0 for s in lint)

    def test_campaign_id_is_content_derived_and_stable(self):
        assert self.matrix().campaign_id == self.matrix().campaign_id
        assert self.matrix().campaign_id != \
            self.matrix(seeds=[0, 2]).campaign_id
        assert self.matrix(name="nightly").campaign_id == "nightly"

    def test_round_trip_and_id_check(self):
        spec = self.matrix()
        assert CampaignSpec.from_dict(spec.to_dict()).to_dict() == \
            spec.to_dict()
        entry = spec.to_dict()
        entry["id"] = "somethingelse"
        with pytest.raises(ValueError, match="does not match"):
            CampaignSpec.from_dict(entry)

    def test_shard_lookup(self):
        spec = self.matrix()
        shard = spec.shard("lint/pkes-legacy/-/s0")
        assert shard.scenario == "pkes-legacy"
        with pytest.raises(KeyError):
            spec.shard("lint/nope/-/s0")

    def test_rejects_duplicates_and_unsorted(self):
        a = ShardSpec(tool=CampaignTool.LINT, scenario="a")
        b = ShardSpec(tool=CampaignTool.LINT, scenario="b")
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(shards=(a, a))
        with pytest.raises(ValueError, match="sorted"):
            CampaignSpec(shards=(b, a))
        with pytest.raises(ValueError, match="at least one"):
            CampaignSpec(shards=())

    def test_matrix_validates_axes(self):
        with pytest.raises(ValueError, match="scenario"):
            self.matrix(scenarios=[])
        with pytest.raises(ValueError, match="plan"):
            self.matrix(plans=[])
        with pytest.raises(ValueError, match="seed"):
            self.matrix(seeds=[])
        with pytest.raises(ValueError, match="tool"):
            self.matrix(tools=[])
