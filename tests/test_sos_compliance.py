"""Tests for the regulatory compliance audit (paper §VI-B, [45])."""

import pytest

from repro.sos.compliance import DEFAULT_REQUIREMENTS, Audit, cal_for
from repro.sos.maas import build_maas_sos


@pytest.fixture()
def model():
    return build_maas_sos()


class TestCalAssignment:
    def test_safety_critical_exposed_gets_max_cal(self, model):
        # sense: safety-critical + exposed -> CAL 4.
        assert cal_for(model.system("sense"), model) == 4

    def test_comfort_function_gets_low_cal(self, model):
        assert cal_for(model.system("comfort-functions"), model) == 2

    def test_cal_range(self, model):
        cals = Audit(model).cal_assignment()
        assert all(2 <= cal <= 4 for cal in cals.values())

    def test_remote_interface_raises_feasibility(self, model):
        # vehicle-os has no direct exposure but safety criticality -> 3;
        # cloud-backend is exposed but not safety-critical -> 3.
        assert cal_for(model.system("cloud-backend"), model) == 3


class TestAudit:
    def test_no_evidence_all_gaps(self, model):
        audit = Audit(model)
        gaps = audit.gaps()
        assert gaps
        assert audit.compliance_fraction() == 0.0

    def test_higher_cal_means_more_requirements(self, model):
        audit = Audit(model)
        low = audit.applicable(model.system("comfort-functions"))
        high = audit.applicable(model.system("sense"))
        assert len(high) > len(low)
        assert {r.req_id for r in low} <= {r.req_id for r in high}

    def test_declared_evidence_closes_gap(self, model):
        audit = Audit(model)
        before = len(audit.gaps())
        audit.declare_evidence("sense", "RQ-01", "TARA-2026-03")
        assert len(audit.gaps()) == before - 1

    def test_full_evidence_full_compliance(self, model):
        audit = Audit(model)
        for system in model.root.walk():
            for requirement in audit.applicable(system):
                audit.declare_evidence(system.name, requirement.req_id, "doc")
        assert audit.compliance_fraction() == 1.0
        assert audit.gaps() == []

    def test_validation(self, model):
        audit = Audit(model)
        with pytest.raises(KeyError):
            audit.declare_evidence("ghost", "RQ-01", "x")
        with pytest.raises(ValueError):
            audit.declare_evidence("sense", "RQ-99", "x")

    def test_default_requirements_cover_r155_themes(self):
        titles = " ".join(r.title for r in DEFAULT_REQUIREMENTS)
        for theme in ("risk", "monitoring", "incident", "update", "supplier"):
            assert theme in titles
