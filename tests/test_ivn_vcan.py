"""Tests for VCID virtual networks over CAN XL."""

import pytest

from repro.ivn.frames import CanXlFrame
from repro.ivn.vcan import VcidSpoofAttacker, VirtualCanNetwork

SAFETY_VCID = 1
COMFORT_VCID = 2


@pytest.fixture()
def network():
    net = VirtualCanNetwork()
    net.attach("brake-ecu", {SAFETY_VCID})
    net.attach("steer-ecu", {SAFETY_VCID})
    net.attach("seat-ecu", {COMFORT_VCID})
    net.attach("compromised-seat", {COMFORT_VCID})
    return net


class TestVcidFiltering:
    def test_delivery_respects_vcid(self, network):
        network.send("brake-ecu", CanXlFrame(0x10, b"brake", vcid=SAFETY_VCID))
        assert len(network.receive("steer-ecu")) == 1
        assert network.receive("seat-ecu") == []

    def test_sender_does_not_self_receive(self, network):
        network.send("brake-ecu", CanXlFrame(0x10, b"x", vcid=SAFETY_VCID))
        assert network.receive("brake-ecu") == []

    def test_validation(self, network):
        with pytest.raises(ValueError):
            network.attach("brake-ecu", {3})
        with pytest.raises(ValueError):
            network.attach("new", {300})
        with pytest.raises(KeyError):
            network.send("ghost", CanXlFrame(0x1, b"x"))


class TestVcidSpoofing:
    def test_filtering_alone_is_not_security(self, network):
        # The compromised comfort node injects straight into the safety
        # network: VCID filtering happily delivers it.
        attacker = VcidSpoofAttacker("compromised-seat")
        attacker.spoof(network, target_vcid=SAFETY_VCID, payload=b"\xff brake hard")
        frames = network.receive("brake-ecu")
        assert len(frames) == 1  # delivered!

    def test_cansec_blocks_the_spoof(self, network):
        zone = network.secure_vcid(SAFETY_VCID, b"\x21" * 16)
        # Legitimate secured traffic flows.
        secured = zone.protect(CanXlFrame(0x10, b"brake 30%", vcid=SAFETY_VCID))
        network.send("steer-ecu", secured)
        # The spoofer injects an unauthenticated frame into the VCID.
        VcidSpoofAttacker("compromised-seat").spoof(
            network, target_vcid=SAFETY_VCID, payload=b"\xff brake hard")
        accepted = network.receive_verified("brake-ecu", SAFETY_VCID)
        assert accepted == [b"brake 30%"]

    def test_cross_vcid_replay_rejected(self, network):
        # Both networks secured with the *same* zone key (worst case);
        # the VCID still binds the frame because it is in the AAD.
        key = b"\x22" * 16
        safety_zone = network.secure_vcid(SAFETY_VCID, key)
        network.secure_vcid(COMFORT_VCID, key)
        captured = safety_zone.protect(
            CanXlFrame(0x10, b"unlock doors", vcid=SAFETY_VCID))
        attacker = VcidSpoofAttacker("compromised-seat")
        attacker.replay_into_vcid(network, captured, target_vcid=COMFORT_VCID)
        accepted = network.receive_verified("seat-ecu", COMFORT_VCID)
        assert accepted == []

    def test_unsecured_vcid_verification_raises(self, network):
        with pytest.raises(KeyError):
            network.receive_verified("seat-ecu", COMFORT_VCID)
