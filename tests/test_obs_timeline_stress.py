"""Timeline under load: merges at scale, live follow, ring wraparound.

The sentinel engine hangs off the ``subscribe`` hook, so the ordering
and delivery guarantees exercised here are load-bearing for detection:
a dropped or reordered notification is a missed alarm.
"""

from repro.core.layers import Layer
from repro.obs import Timeline, merge_events
from repro.obs.events import EventKind, EventLog


def burst(log, n, *, kind=EventKind.FRAME_SENT, layer=Layer.NETWORK,
          t0=0.0, dt=0.001):
    for i in range(n):
        log.emit(kind, layer, "src", f"e{i}", t=t0 + i * dt)
    return log


class TestMergeAtScale:
    def test_ten_streams_of_a_thousand_merge_sorted(self):
        logs = [burst(EventLog(capacity=2000), 1000, t0=float(i) * 0.1)
                for i in range(10)]
        merged = merge_events(*logs)
        assert len(merged) == 10_000
        times = [e.t for e in merged]
        assert times == sorted(times)

    def test_merge_is_stable_across_repeats(self):
        logs = [burst(EventLog(), 500), burst(EventLog(), 500)]
        first = merge_events(*logs)
        second = merge_events(*logs)
        assert [(e.t, e.seq, e.message) for e in first] == \
            [(e.t, e.seq, e.message) for e in second]

    def test_fully_tied_timestamps_keep_stream_then_seq_order(self):
        # worst case for the sort key: every event at the same t
        logs = [burst(EventLog(), 300, dt=0.0) for _ in range(3)]
        merged = merge_events(*logs)
        assert len(merged) == 900
        # stream position dominates, seq orders within a stream
        seqs = [e.seq for e in merged]
        assert seqs == list(range(300)) * 3

    def test_timeline_span_with_many_offset_streams(self):
        timeline = Timeline()
        for i in range(20):
            timeline.add(burst(EventLog(), 50), offset_s=float(i))
        assert timeline.span_s() == 19.0 + 49 * 0.001
        assert len(timeline.merged()) == 1000


class TestLiveFollow:
    def test_follow_replays_buffered_then_streams_live(self):
        log = burst(EventLog(), 3)
        timeline = Timeline()
        timeline.follow(log)
        assert len(timeline.merged()) == 3  # history copied in
        burst(log, 2, t0=1.0)
        assert len(timeline.merged()) == 5  # live events accumulate

    def test_subscriber_sees_offset_adjusted_clock(self):
        log = EventLog()
        timeline = Timeline()
        seen = []
        timeline.subscribe(lambda e: seen.append(e.t))
        timeline.follow(log, offset_s=2.0)
        log.emit(EventKind.FRAME_SENT, Layer.NETWORK, "s", "m", t=1.0)
        assert seen == [3.0]
        # merged view applies the same shift — subscriber and merge agree
        assert [e.t for e in timeline.merged()] == [3.0]

    def test_thousand_live_events_arrive_in_emission_order(self):
        log = EventLog(capacity=4096)
        timeline = Timeline()
        seen = []
        timeline.subscribe(lambda e: seen.append(e.seq))
        timeline.follow(log)
        burst(log, 1000)
        assert seen == list(range(1000))

    def test_multiple_followed_logs_fan_into_one_subscriber(self):
        bus, cloud = EventLog(), EventLog()
        timeline = Timeline()
        seen = []
        timeline.subscribe(lambda e: seen.append(e.source))
        timeline.follow(bus)
        timeline.follow(cloud)
        bus.emit(EventKind.FRAME_SENT, Layer.NETWORK, "bus", "m", t=0.0)
        cloud.emit(EventKind.CLOUD_REQUEST, Layer.DATA, "cloud", "m", t=0.0)
        assert seen == ["bus", "cloud"]

    def test_detach_stops_streaming_but_keeps_buffered_events(self):
        log = EventLog()
        timeline = Timeline()
        detach = timeline.follow(log)
        burst(log, 2)
        detach()
        burst(log, 2, t0=1.0)
        assert len(timeline.merged()) == 2

    def test_unsubscribe_mid_stream(self):
        log = EventLog()
        timeline = Timeline()
        seen = []
        unsubscribe = timeline.subscribe(lambda e: seen.append(e.seq))
        timeline.follow(log)
        burst(log, 5)
        unsubscribe()
        burst(log, 5, t0=1.0)
        assert len(seen) == 5


class TestRingWraparoundWithSubscribers:
    def test_subscribers_see_every_event_despite_ring_drops(self):
        # The ring bounds *storage*, not *delivery*: a subscriber attached
        # before the flood sees all 10k events even though the log only
        # retains the last 64. This is why the sentinel can use a small
        # ring — streaming detection never reads back the buffer.
        log = EventLog(capacity=64)
        seen = 0

        def count(event):
            nonlocal seen
            seen += 1

        log.subscribe(count)
        burst(log, 10_000)
        assert seen == 10_000
        assert len(log) == 64
        assert log.dropped == 10_000 - 64

    def test_followed_timeline_outlives_the_ring(self):
        log = EventLog(capacity=16)
        timeline = Timeline()
        timeline.follow(log)
        burst(log, 500)
        # the timeline's own stream buffered everything the ring dropped
        assert len(timeline.merged()) == 500
        assert len(log) == 16

    def test_wraparound_preserves_notification_order(self):
        log = EventLog(capacity=8)
        seqs = []
        log.subscribe(lambda e: seqs.append(e.seq))
        burst(log, 100)
        assert seqs == sorted(seqs)
        assert [e.seq for e in log] == seqs[-8:]
