"""The ``python -m repro sentinel`` subcommand."""

import json

from repro.__main__ import main
from repro.sentinel import validate_sentinel_dict


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestTextOutput:
    def test_single_scenario_renders_detection_story(self, capsys):
        code, out, _ = run_cli(capsys, "sentinel", "onboard-insecure",
                               "--plan", "severe")
        assert code == 0
        assert "sentinel: onboard-insecure" in out
        assert "first alarm: t=" in out
        assert "incident #" in out
        assert "service level:" in out
        assert "campaign 'severe'" in out

    def test_alarm_and_trust_tables_are_opt_in(self, capsys):
        _, plain, _ = run_cli(capsys, "sentinel", "onboard-insecure",
                              "--plan", "severe")
        assert "detector" not in plain.splitlines()[0]
        code, out, _ = run_cli(capsys, "sentinel", "onboard-insecure",
                               "--plan", "severe", "--alarms", "--trust")
        assert code == 0
        assert "detector" in out and "state" in out      # alarm table
        assert "phase" in out and "collapsed" in out     # trust table

    def test_all_covers_every_scenario(self, capsys):
        code, out, _ = run_cli(capsys, "sentinel", "all", "--duration", "20")
        assert code == 0
        for name in ("pkes-legacy", "onboard-insecure", "onboard-hardened",
                     "cariad-breach", "maas-platform"):
            assert f"sentinel: {name}" in out


class TestMachineOutput:
    def test_json_validates(self, capsys):
        code, out, _ = run_cli(capsys, "sentinel", "maas-platform", "--json")
        assert code == 0
        document = json.loads(out)
        validate_sentinel_dict(document)
        assert document["scenarios"][0]["scenario"] == "maas-platform"

    def test_report_file_is_byte_identical_across_runs(self, capsys,
                                                       tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for path in (first, second):
            code, _, err = run_cli(capsys, "sentinel", "onboard-insecure",
                                   "--plan", "severe", "--base-seed", "42",
                                   "--report", str(path))
            assert code == 0 and "wrote sentinel report" in err
        assert first.read_bytes() == second.read_bytes()
        validate_sentinel_dict(json.loads(first.read_text()))

    def test_base_seed_changes_the_report(self, capsys, tmp_path):
        paths = []
        for seed in ("0", "1"):
            path = tmp_path / f"seed{seed}.json"
            run_cli(capsys, "sentinel", "onboard-insecure",
                    "--base-seed", seed, "--report", str(path))
            paths.append(path)
        assert paths[0].read_bytes() != paths[1].read_bytes()


class TestGates:
    def test_clean_gate_passes_on_hardened_baseline(self, capsys):
        code, _, err = run_cli(capsys, "sentinel", "onboard-hardened",
                               "--gate", "clean")
        assert code == 0
        assert "failed" not in err

    def test_clean_gate_fails_on_insecure_severe(self, capsys):
        code, _, err = run_cli(capsys, "sentinel", "onboard-insecure",
                               "--plan", "severe", "--gate", "clean")
        assert code == 1
        assert "gate 'clean' failed" in err
        assert "ALARM incident(s)" in err

    def test_detect_gate_passes_on_insecure_severe(self, capsys):
        code, _, err = run_cli(capsys, "sentinel", "onboard-insecure",
                               "--plan", "severe", "--gate", "detect")
        assert code == 0
        assert "failed" not in err

    def test_detect_gate_fails_on_hardened_baseline(self, capsys):
        code, _, err = run_cli(capsys, "sentinel", "onboard-hardened",
                               "--gate", "detect")
        assert code == 1
        assert "no ALARM raised" in err


class TestBadInput:
    def test_missing_scenario_lists_available(self, capsys):
        code, _, err = run_cli(capsys, "sentinel")
        assert code == 2
        assert "onboard-hardened" in err

    def test_unknown_scenario_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "sentinel", "no-such-scenario")
        assert code == 2
        assert "unknown sentinel scenario" in err

    def test_unknown_plan_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "sentinel", "onboard-hardened",
                               "--plan", "no-such-plan")
        assert code == 2
        assert "unknown fault plan" in err
