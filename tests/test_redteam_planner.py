"""The campaign planner: acceptance-criteria pins and search invariants.

The headline properties from the issue: every insecure scenario yields
at least one ranked *multi-stage* campaign with a per-step defense,
``onboard-hardened`` yields zero, and planning is deterministic —
identical inputs give identical rankings.
"""

import pytest

from repro.flow import analyze
from repro.lint import build_scenario
from repro.redteam import plan, plan_scenario
from repro.redteam.capability import control

INSECURE = ["pkes-legacy", "onboard-insecure", "cariad-breach",
            "maas-platform"]
ALL_SCENARIOS = INSECURE + ["onboard-hardened"]


class TestAcceptanceCriteria:
    @pytest.mark.parametrize("name", INSECURE)
    def test_insecure_scenario_yields_multi_stage_campaign(self, name):
        result = plan_scenario(name)
        assert not result.defeated
        multi = [c for c in result.campaigns if c.multi_stage]
        assert multi, f"{name}: no multi-stage campaign"
        for campaign in result.campaigns:
            for step in campaign.steps:
                assert step.defense  # per-step breaking defense

    def test_hardened_scenario_defeats_full_library(self):
        result = plan_scenario("onboard-hardened")
        assert result.defeated
        assert result.campaigns == []
        assert result.disruptions == []

    def test_pkes_relay_chain_reaches_immobilizer(self):
        result = plan_scenario("pkes-legacy")
        campaign = result.campaign_for("immobilizer")
        assert campaign is not None
        assert campaign.entry.technique == "pkes-relay"
        assert len(campaign.steps) == 4
        assert campaign.layers == ("physical", "network")

    def test_cariad_campaign_reaches_the_bucket(self):
        result = plan_scenario("cariad-breach")
        sinks = result.campaign_sinks()
        assert any("bucket" in sink or "store" in sink for sink in sinks)


class TestDeterminism:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_plan_twice_is_identical(self, name):
        first = plan_scenario(name)
        second = plan_scenario(name)
        assert first.library == second.library
        assert first.campaigns == second.campaigns
        assert first.disruptions == second.disruptions
        assert first.acquired == second.acquired

    @pytest.mark.parametrize("name", INSECURE)
    def test_campaigns_ranked_cheapest_first(self, name):
        result = plan_scenario(name)
        costs = [c.total_cost for c in result.campaigns]
        assert costs == sorted(costs)


class TestSearchInvariants:
    @pytest.mark.parametrize("name", INSECURE)
    def test_first_step_is_always_an_entry_attack(self, name):
        for campaign in plan_scenario(name).campaigns:
            assert campaign.entry.is_entry

    @pytest.mark.parametrize("name", INSECURE)
    def test_steps_form_a_closed_capability_chain(self, name):
        """Each step's requirements are granted by earlier steps."""
        for campaign in plan_scenario(name).campaigns:
            held = set()
            for step in campaign.steps:
                assert step.requires <= held, campaign.goal.label
                held |= step.grants

    @pytest.mark.parametrize("name", INSECURE)
    def test_total_cost_sums_unique_steps(self, name):
        for campaign in plan_scenario(name).campaigns:
            assert campaign.total_cost == pytest.approx(
                sum(step.cost for step in campaign.steps))
            ids = [step.attack_id for step in campaign.steps]
            assert len(ids) == len(set(ids))  # shared prereqs counted once

    @pytest.mark.parametrize("name", INSECURE)
    def test_acquired_costs_are_cheapest(self, name):
        """No attack could deliver a capability cheaper than recorded."""
        result = plan_scenario(name)
        acquired = result.acquired
        for attack in result.library:
            if not all(r in acquired for r in attack.requires):
                continue
            offered = attack.cost + sum(acquired[r] for r in attack.requires)
            for capability in attack.grants:
                assert capability in acquired
                assert acquired[capability] <= offered + 1e-9, \
                    f"{attack.attack_id} undercuts {capability.label}"

    def test_goal_of_each_campaign_is_its_sink(self):
        result = plan_scenario("pkes-legacy")
        for campaign in result.campaigns:
            assert campaign.goal == control(campaign.sink)

    def test_campaign_for_unknown_sink_is_none(self):
        assert plan_scenario("pkes-legacy").campaign_for("no-such") is None

    def test_plan_accepts_precomputed_flow_result(self):
        target = build_scenario("pkes-legacy")
        flow = analyze(target)
        result = plan(target, result=flow)
        assert result.flow is flow
        assert not result.defeated

    def test_empty_campaign_rejected(self):
        from repro.redteam import Campaign

        with pytest.raises(ValueError, match="at least one step"):
            Campaign(scenario="x", goal=control("y"), steps=())
