"""The ``python -m repro chaos`` subcommand."""

import json

from repro.__main__ import main
from repro.faults import validate_chaos_dict


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestTextOutput:
    def test_single_scenario_renders_layers_and_level(self, capsys):
        code, out, _ = run_cli(capsys, "chaos", "onboard-hardened")
        assert code == 0
        assert "onboard-hardened" in out
        for label in ("physical", "network", "data", "software_platform"):
            assert label in out
        assert "service level" in out
        assert "campaign 'baseline'" in out

    def test_all_covers_every_scenario(self, capsys):
        code, out, _ = run_cli(capsys, "chaos", "all", "--duration", "20")
        assert code == 0
        for name in ("pkes-legacy", "onboard-insecure", "onboard-hardened",
                     "cariad-breach", "maas-platform"):
            assert name in out


class TestMachineOutput:
    def test_json_validates(self, capsys):
        code, out, _ = run_cli(capsys, "chaos", "maas-platform", "--json")
        assert code == 0
        document = json.loads(out)
        validate_chaos_dict(document)
        assert document["scenarios"][0]["scenario"] == "maas-platform"

    def test_report_file_is_byte_identical_across_runs(self, capsys,
                                                       tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for path in (first, second):
            code, _, err = run_cli(capsys, "chaos", "onboard-hardened",
                                   "--plan", "severe", "--base-seed", "42",
                                   "--report", str(path))
            assert code == 0 and "wrote chaos report" in err
        assert first.read_bytes() == second.read_bytes()
        validate_chaos_dict(json.loads(first.read_text()))

    def test_base_seed_changes_the_report(self, capsys, tmp_path):
        paths = []
        for seed in ("0", "1"):
            path = tmp_path / f"seed{seed}.json"
            run_cli(capsys, "chaos", "onboard-insecure",
                    "--base-seed", seed, "--report", str(path))
            paths.append(path)
        assert paths[0].read_bytes() != paths[1].read_bytes()


class TestUsageErrors:
    def test_missing_scenario_lists_available(self, capsys):
        code, _, err = run_cli(capsys, "chaos")
        assert code == 2
        assert "onboard-hardened" in err

    def test_unknown_scenario(self, capsys):
        code, _, err = run_cli(capsys, "chaos", "warp-core")
        assert code == 2
        assert "unknown chaos scenario" in err

    def test_unknown_plan(self, capsys):
        code, _, err = run_cli(capsys, "chaos", "pkes-legacy",
                               "--plan", "apocalypse")
        assert code == 2
        assert "unknown fault plan" in err
