"""Trace reports: renderers, JSON schema validator, and timeline merge."""

import copy
import json

import pytest

from repro.core.layers import Layer
from repro.obs import (SchemaError, TraceReport, Timeline, instrumented,
                       merge_events, render_metrics_table, render_span_tree,
                       validate_trace_dict)
from repro.obs.events import EventKind, EventLog
from repro.obs.metrics import MetricsRegistry


def sample_report():
    """A small but fully populated report built through the real hooks."""
    with instrumented() as obs:
        with obs.span("scenario", profile="PROFILE_3"):
            with obs.span("bus-exchange"):
                obs.count("frames", 3)
                obs.observe("latency_s", 0.004)
            obs.emit(EventKind.FRAME_SENT, Layer.NETWORK, "bus",
                     "id=0x300", t=0.1, can_id=0x300)
            obs.emit(EventKind.MAC_REJECTED, Layer.NETWORK, "pdu-0x300",
                     "forged", t=0.2)
            obs.emit(EventKind.RANGING, Layer.PHYSICAL, "ds-twr",
                     "12.3m", t=0.3)
        return TraceReport.from_instrumentation(
            "unit-test", result={"verified": 7, "ok": True})


class TestJsonDocument:
    def test_document_passes_its_own_validator(self):
        document = sample_report().to_json_dict()
        validate_trace_dict(document)
        # and survives a JSON round trip
        validate_trace_dict(json.loads(json.dumps(document)))

    def test_summary_reflects_contents(self):
        document = sample_report().to_json_dict()
        assert document["summary"]["spans"] == 2
        assert document["summary"]["events"] == 3
        assert document["summary"]["layers"] == ["network", "physical"]
        assert document["summary"]["byKind"]["frame-sent"] == 1
        assert document["summary"]["droppedEvents"] == 0

    def test_dropped_events_surface_in_summary_and_table(self):
        with instrumented(capacity=2) as obs:
            for index in range(5):
                obs.emit(EventKind.RANGING, Layer.PHYSICAL, "ds-twr",
                         f"m{index}", t=float(index))
            report = TraceReport.from_instrumentation("unit-test")
        document = report.to_json_dict()
        validate_trace_dict(document)
        assert document["summary"]["droppedEvents"] == 3
        assert "dropped 3 event(s)" in report.to_table()

    def test_error_span_round_trips(self):
        with instrumented() as obs:
            with pytest.raises(RuntimeError):
                with obs.span("doomed"):
                    raise RuntimeError("kaput")
            document = TraceReport.from_instrumentation("x").to_json_dict()
        validate_trace_dict(document)
        assert document["spans"][0]["status"] == "error"
        assert "kaput" in document["spans"][0]["error"]


MUTATIONS = [
    ("drop-version", lambda d: d.pop("version")),
    ("bad-version", lambda d: d.update(version="2.0")),
    ("bad-tool", lambda d: d["tool"].update(name="someone-else")),
    ("extra-top-key", lambda d: d.update(surprise=1)),
    ("span-negative-wall", lambda d: d["spans"][0].update(wallMs=-1.0)),
    ("span-bad-status", lambda d: d["spans"][0].update(status="meh")),
    ("span-error-on-ok", lambda d: d["spans"][0].update(error="no")),
    ("span-child-bad",
     lambda d: d["spans"][0]["children"][0].pop("cpuMs")),
    ("event-bad-kind", lambda d: d["events"][0].update(kind="nope")),
    ("event-bad-layer", lambda d: d["events"][0].update(layer="nope")),
    ("event-extra-key", lambda d: d["events"][0].update(extra=1)),
    ("event-nested-field",
     lambda d: d["events"][0]["fields"].update(deep={"a": 1})),
    ("metrics-missing-section", lambda d: d["metrics"].pop("gauges")),
    ("hist-missing-p99",
     lambda d: d["metrics"]["histograms"]["latency_s"].pop("p99")),
    ("result-nested", lambda d: d["result"].update(nested=[1, 2])),
    ("summary-wrong-span-count", lambda d: d["summary"].update(spans=99)),
    ("summary-wrong-event-count", lambda d: d["summary"].update(events=99)),
    ("summary-unsorted-layers",
     lambda d: d["summary"].update(layers=["physical", "network"])),
    ("summary-wrong-bykind",
     lambda d: d["summary"]["byKind"].update(ranging=5)),
    ("summary-dropped-missing", lambda d: d["summary"].pop("droppedEvents")),
    ("summary-dropped-negative",
     lambda d: d["summary"].update(droppedEvents=-1)),
    ("summary-dropped-bool", lambda d: d["summary"].update(droppedEvents=True)),
]


class TestValidatorRejections:
    @pytest.mark.parametrize("label,mutate", MUTATIONS,
                             ids=[m[0] for m in MUTATIONS])
    def test_mutation_raises_schema_error(self, label, mutate):
        document = copy.deepcopy(sample_report().to_json_dict())
        mutate(document)
        with pytest.raises(SchemaError):
            validate_trace_dict(document)

    def test_schema_error_is_a_value_error(self):
        assert issubclass(SchemaError, ValueError)


class TestRenderers:
    def test_span_tree_shows_nesting_and_timings(self):
        report = sample_report()
        tree = render_span_tree(report.spans)
        lines = tree.splitlines()
        assert "scenario" in lines[0] and "wall=" in lines[0]
        assert lines[1].startswith("  ") and "bus-exchange" in lines[1]

    def test_metrics_table_lists_all_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(1.0)
        table = render_metrics_table(registry)
        assert "counter" in table and "gauge" in table and "histogram" in table
        assert "p95=" in table

    def test_empty_renderers_do_not_crash(self):
        assert "no spans" in render_span_tree([])
        assert "no metrics" in render_metrics_table(MetricsRegistry())

    def test_to_table_mentions_layers_and_counts(self):
        text = sample_report().to_table()
        assert "unit-test" in text
        assert "network" in text and "physical" in text
        assert "3 event(s)" in text


class TestTimelineMerge:
    def _log(self, layer, kind, times):
        log = EventLog()
        for t in times:
            log.emit(kind, layer, "src", f"at {t}", t=t)
        return log

    def test_offset_shifts_stream_onto_shared_clock(self):
        chain = self._log(Layer.DATA, EventKind.ATTACK_STEP, [0.0, 1.0])
        bus = self._log(Layer.NETWORK, EventKind.FRAME_SENT, [0.0, 1.0])
        merged = merge_events(chain, bus, offsets=[0.0, 0.5])
        assert [e.t for e in merged] == [0.0, 0.5, 1.0, 1.5]
        assert [e.layer for e in merged] == [
            Layer.DATA, Layer.NETWORK, Layer.DATA, Layer.NETWORK]

    def test_seq_breaks_timestamp_ties_within_a_stream(self):
        log = self._log(Layer.NETWORK, EventKind.FRAME_SENT, [1.0, 1.0, 1.0])
        merged = merge_events(log)
        assert [e.seq for e in merged] == [0, 1, 2]

    def test_cross_stream_ties_keep_streams_contiguous(self):
        # regression: ties on t used to be broken by seq values from
        # *different* streams, interleaving them arbitrarily — each
        # stream numbers its own events from 0
        first = self._log(Layer.DATA, EventKind.ATTACK_STEP, [1.0, 1.0])
        second = self._log(Layer.NETWORK, EventKind.FRAME_SENT, [1.0, 1.0])
        merged = merge_events(first, second)
        assert [(e.layer, e.seq) for e in merged] == [
            (Layer.DATA, 0), (Layer.DATA, 1),
            (Layer.NETWORK, 0), (Layer.NETWORK, 1)]

    def test_cross_stream_ties_after_offset_shift(self):
        # two streams colliding at t=2.0 only after the offset is applied
        first = self._log(Layer.DATA, EventKind.ATTACK_STEP, [2.0])
        second = self._log(Layer.NETWORK, EventKind.FRAME_SENT, [0.0])
        merged = merge_events(first, second, offsets=[0.0, 2.0])
        assert [e.layer for e in merged] == [Layer.DATA, Layer.NETWORK]
        merged = merge_events(second, first, offsets=[2.0, 0.0])
        assert [e.layer for e in merged] == [Layer.NETWORK, Layer.DATA]

    def test_offsets_length_mismatch_rejected(self):
        log = self._log(Layer.NETWORK, EventKind.FRAME_SENT, [0.0])
        with pytest.raises(ValueError, match="offsets"):
            merge_events(log, offsets=[0.0, 1.0])

    def test_timeline_accumulates_and_renders(self):
        timeline = Timeline()
        timeline.add(self._log(Layer.DATA, EventKind.ATTACK_STEP, [0.0, 2.0]))
        timeline.add(self._log(Layer.NETWORK, EventKind.BUS_OFF, [0.0]),
                     offset_s=3.0)
        assert timeline.layers() == {Layer.DATA, Layer.NETWORK}
        assert timeline.span_s() == 3.0
        rendered = timeline.render()
        assert rendered.splitlines()[-1].startswith("t=    3.000000")
        assert "[network]" in rendered and "[data" in rendered

    def test_render_truncation_note(self):
        log = self._log(Layer.NETWORK, EventKind.FRAME_SENT,
                        [float(i) for i in range(10)])
        rendered = Timeline().add(log).render(limit=4)
        assert "6 more event(s) truncated" in rendered
