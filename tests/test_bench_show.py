"""The benchmark harness's table formatter (``benchmarks/conftest.py``).

The ``show`` fixture used to compute column widths from the *first* row
and ``zip`` silently truncated longer rows — ragged tables either
crashed with ``IndexError`` or dropped cells.  These tests load the
bench conftest by path and pin the padded behavior.
"""

import importlib.util
from pathlib import Path

_CONFTEST = Path(__file__).resolve().parent.parent / "benchmarks" / "conftest.py"
_spec = importlib.util.spec_from_file_location("bench_conftest", _CONFTEST)
bench_conftest = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_conftest)

format_table = bench_conftest.format_table


class TestFormatTable:
    def test_regular_table_with_header(self):
        text = format_table("Fig. X", [("a", 1), ("bb", 22)],
                            header=("col", "n"))
        lines = text.splitlines()
        assert lines[1] == "=== Fig. X ==="
        assert lines[2].split() == ["col", "n"]
        assert set(lines[3]) <= {"-", " "}  # the separator under the header
        assert lines[4].split() == ["a", "1"]

    def test_longer_row_than_header_keeps_all_cells(self):
        # the old zip() silently dropped the trailing cells
        text = format_table("t", [("a", 1, "extra")], header=("c1", "c2"))
        assert "extra" in text

    def test_shorter_row_than_widest_does_not_crash(self):
        # the old range(len(table[0])) indexing raised IndexError here
        text = format_table("t", [("a", "b", "c"), ("only",)])
        assert "only" in text and "c" in text

    def test_empty_rows_render_title_only(self):
        text = format_table("empty", [])
        assert text.strip() == "=== empty ==="

    def test_cells_are_stringified_and_aligned(self):
        text = format_table("t", [("name", 1.5), ("x", 100)])
        lines = text.splitlines()[2:]
        assert lines[0].index("1.5") == lines[1].index("100")


class TestShowFixture:
    def test_show_prints_ragged_table(self, capsys):
        # simulate the fixture body directly: format + print
        print(format_table("ragged", [("a",), ("b", "c")],
                           header=("h1", "h2", "h3")))
        out = capsys.readouterr().out
        assert "=== ragged ===" in out
        assert "h3" in out and "c" in out
