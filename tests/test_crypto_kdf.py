"""HKDF tests against RFC 5869 test vectors."""

import pytest

from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract, hmac_sha256


def test_rfc5869_case_1():
    ikm = bytes.fromhex("0b" * 22)
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm)
    assert prk == bytes.fromhex(
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )
    okm = hkdf_expand(prk, info, 42)
    assert okm == bytes.fromhex(
        "3cb25f25faacd57a90434f64d0362f2a"
        "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_rfc5869_case_3_zero_salt_info():
    ikm = bytes.fromhex("0b" * 22)
    okm = hkdf(ikm, salt=b"", info=b"", length=42)
    assert okm == bytes.fromhex(
        "8da4e775a563c18f715f802a063c5a31"
        "b8a11f5c5ee1879ec3454e5f3c738d2d"
        "9d201395faa4b61a96c8"
    )


def test_hkdf_length_and_determinism():
    out1 = hkdf(b"secret", salt=b"s", info=b"i", length=64)
    out2 = hkdf(b"secret", salt=b"s", info=b"i", length=64)
    assert out1 == out2
    assert len(out1) == 64
    assert hkdf(b"secret", salt=b"s", info=b"j", length=64) != out1


def test_hkdf_expand_limit():
    with pytest.raises(ValueError):
        hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)


def test_hmac_sha256_rfc4231_case_2():
    key = b"Jefe"
    data = b"what do ya want for nothing?"
    assert hmac_sha256(key, data) == bytes.fromhex(
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    )
