"""Fault taxonomy, spec validation, and the shipped campaign plans."""

import pytest

from repro.core.layers import Layer
from repro.faults import (
    KIND_LAYER,
    FaultKind,
    FaultPlan,
    FaultSpec,
    baseline_plan,
    get_plan,
    plan_names,
    severe_plan,
)


class TestFaultSpec:
    def test_window_is_half_open(self):
        spec = FaultSpec(FaultKind.IVN_FRAME_DROP, "zonal-can", 2.0, 5.0)
        assert not spec.active(1.9)
        assert spec.active(2.0)
        assert spec.active(4.9)
        assert not spec.active(5.0)

    def test_degenerate_window_rejected(self):
        with pytest.raises(ValueError, match="start < end"):
            FaultSpec(FaultKind.IVN_FRAME_DROP, "zonal-can", 5.0, 5.0)

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(FaultKind.CLOUD_OUTAGE, "backend", 0.0, 1.0,
                      probability=1.5)

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError, match="magnitude"):
            FaultSpec(FaultKind.CLOUD_OUTAGE, "backend", 0.0, 1.0,
                      magnitude=-0.1)

    def test_to_dict_carries_the_paper_layer(self):
        spec = FaultSpec(FaultKind.SSI_REGISTRY_DOWN, "did-registry", 0.0, 4.0)
        doc = spec.to_dict()
        assert doc["layer"] == "software_platform"
        assert doc["kind"] == "ssi-registry-unavailable"
        assert set(doc) == {"kind", "target", "layer", "start", "end",
                            "probability", "magnitude"}


class TestFaultPlan:
    def test_needs_a_name(self):
        with pytest.raises(ValueError, match="name"):
            FaultPlan("", ())

    def test_window_is_the_hull_over_specs(self):
        plan = FaultPlan("p", (
            FaultSpec(FaultKind.IVN_FRAME_DROP, "a", 3.0, 7.0),
            FaultSpec(FaultKind.CLOUD_OUTAGE, "b", 1.0, 5.0),
        ))
        assert plan.window() == (1.0, 7.0)
        assert FaultPlan("empty", ()).window() == (0.0, 0.0)

    def test_for_kind_filters(self):
        plan = baseline_plan()
        drops = plan.for_kind(FaultKind.IVN_FRAME_DROP)
        assert len(drops) == 1 and drops[0].target == "zonal-can"


class TestShippedPlans:
    def test_registry_round_trip(self):
        assert plan_names() == ["baseline", "severe"]
        assert get_plan("baseline").name == "baseline"
        with pytest.raises(KeyError, match="unknown fault plan"):
            get_plan("apocalypse")

    def test_every_kind_has_a_layer(self):
        assert set(KIND_LAYER) == set(FaultKind)

    def test_plans_cover_every_paper_layer_with_faults(self):
        for plan in (baseline_plan(), severe_plan()):
            layers = {KIND_LAYER[spec.kind] for spec in plan.specs}
            assert layers == {Layer.PHYSICAL, Layer.NETWORK, Layer.DATA,
                              Layer.SOFTWARE_PLATFORM,
                              Layer.SYSTEM_OF_SYSTEMS}

    def test_severe_is_strictly_wider_than_baseline(self):
        base_start, base_end = baseline_plan().window()
        sev_start, sev_end = severe_plan().window()
        assert sev_end - sev_start > base_end - base_start
