"""Audit report contracts: golden JSON, schema validation, SARIF
round-trip, baselines, inline pragmas, and engine/registry hygiene."""

import json
import textwrap

import pytest

from repro.audit import (
    AuditContext,
    AuditEngine,
    AuditFinding,
    Checker,
    SchemaError,
    all_checkers,
    to_sarif_dict,
    validate_audit_dict,
)
from repro.audit.engine import register
from repro.lint import Baseline, Severity
from repro.lint.sarif import validate_sarif_dict


@pytest.fixture
def dirty_tree(tmp_path):
    """A tree that trips AUD001 (stdlib random) and AUD006 (mutable
    default) — enough findings to exercise every report surface."""
    root = tmp_path / "repro"
    (root / "faults").mkdir(parents=True)
    (root / "faults" / "jitter.py").write_text(textwrap.dedent("""\
        import random

        def jitter(bins=[]):
            bins.append(random.random())
            return bins
    """))
    return root


def _report(root, baseline=None):
    engine = AuditEngine()
    context = AuditContext.parse(root)
    return engine, engine.run(context, baseline=baseline)


# -- JSON ------------------------------------------------------------------


def test_json_document_validates(dirty_tree):
    engine, report = _report(dirty_tree)
    document = report.to_json_dict(engine.checkers)
    validate_audit_dict(document)
    assert document["summary"]["total"] == len(report.findings)
    assert document["summary"]["byRule"].keys() >= {"AUD001", "AUD006"}
    assert [r["id"] for r in document["rules"]] == sorted(
        r["id"] for r in document["rules"])


def test_json_output_is_byte_identical_across_runs(dirty_tree):
    engine1, report1 = _report(dirty_tree)
    engine2, report2 = _report(dirty_tree)
    assert (json.dumps(report1.to_json_dict(engine1.checkers), sort_keys=True)
            == json.dumps(report2.to_json_dict(engine2.checkers),
                          sort_keys=True))


@pytest.mark.parametrize("mutate", [
    lambda d: d.pop("version"),
    lambda d: d.update(version="99.0"),
    lambda d: d["tool"].update(name="other-tool"),
    lambda d: d.update(extra=1),
    lambda d: d["summary"].update(total=999),
    lambda d: d["audited"].update(modules=999),
    lambda d: d["findings"][0].pop("fingerprint"),
    lambda d: d["findings"][0].update(line=0),
    lambda d: d["findings"][0].update(severity="terrible"),
    lambda d: d["findings"][0].update(ruleId="SEC001"),
])
def test_schema_rejects_mutations(dirty_tree, mutate):
    engine, report = _report(dirty_tree)
    document = report.to_json_dict(engine.checkers)
    mutate(document)
    with pytest.raises(SchemaError):
        validate_audit_dict(document)


# -- SARIF -----------------------------------------------------------------


def test_sarif_round_trip(dirty_tree):
    engine, report = _report(dirty_tree)
    document = to_sarif_dict(report, engine.checkers)
    validate_sarif_dict(document)
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-audit"
    assert len(run["results"]) == len(report.findings)
    first = run["results"][0]
    location = first["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("jitter.py")
    assert location["region"]["startLine"] >= 1
    assert "audit/v1" in first["partialFingerprints"]


def test_sarif_fingerprints_match_audit_fingerprints(dirty_tree):
    engine, report = _report(dirty_tree)
    document = to_sarif_dict(report, engine.checkers)
    sarif_prints = {result["partialFingerprints"]["audit/v1"]
                    for result in document["runs"][0]["results"]}
    assert sarif_prints == {f.fingerprint for f in report.findings}


# -- baselines -------------------------------------------------------------


def test_baseline_round_trip_suppresses_everything(dirty_tree, tmp_path):
    engine, report = _report(dirty_tree)
    assert report.findings
    baseline = Baseline.from_report(report, comment="accepted")
    path = tmp_path / "audit-baseline.json"
    baseline.save(path)

    _, gated = _report(dirty_tree, baseline=Baseline.load(path))
    assert not gated.findings
    assert len(gated.suppressed) == len(report.findings)
    assert gated.exit_code() == 0


def test_baseline_does_not_hide_new_findings(dirty_tree, tmp_path):
    engine, report = _report(dirty_tree)
    baseline = Baseline.from_report(report)
    (dirty_tree / "faults" / "fresh.py").write_text(
        "import random\nx = random.random()\n")
    _, gated = _report(dirty_tree, baseline=baseline)
    assert gated.findings  # the new file is not in the baseline
    assert all(f.relpath.endswith("fresh.py") for f in gated.findings)


def test_fingerprint_survives_line_moves(dirty_tree):
    _, before = _report(dirty_tree)
    source = (dirty_tree / "faults" / "jitter.py").read_text()
    (dirty_tree / "faults" / "jitter.py").write_text(
        '"""Docstring pushes every line down."""\n\n' + source)
    _, after = _report(dirty_tree)
    assert ({f.fingerprint for f in before.findings}
            == {f.fingerprint for f in after.findings})
    assert ({f.line for f in before.findings}
            != {f.line for f in after.findings})


# -- inline pragmas --------------------------------------------------------


def test_inline_pragma_moves_finding_to_suppressed(tmp_path):
    root = tmp_path / "repro"
    (root / "faults").mkdir(parents=True)
    (root / "faults" / "guard.py").write_text(textwrap.dedent("""\
        def observe(op):
            try:
                return op()
            except Exception:  # audit: allow AUD005 observed then re-raised
                raise
    """))
    _, report = _report(root)
    assert not report.findings
    assert [f.rule_id for f in report.suppressed] == ["AUD005"]


def test_pragma_on_preceding_line_counts(tmp_path):
    root = tmp_path / "repro"
    (root / "faults").mkdir(parents=True)
    (root / "faults" / "guard.py").write_text(textwrap.dedent("""\
        def observe(op):
            try:
                return op()
            # audit: allow AUD005 observed then re-raised
            except Exception:
                raise
    """))
    _, report = _report(root)
    assert not report.findings
    assert [f.rule_id for f in report.suppressed] == ["AUD005"]


def test_pragma_for_wrong_rule_does_not_suppress(tmp_path):
    root = tmp_path / "repro"
    (root / "faults").mkdir(parents=True)
    (root / "faults" / "guard.py").write_text(textwrap.dedent("""\
        def observe(op):
            try:
                return op()
            except Exception:  # audit: allow AUD001 wrong rule named
                raise
    """))
    _, report = _report(root)
    assert [f.rule_id for f in report.findings] == ["AUD005"]


# -- engine / registry hygiene ---------------------------------------------


def test_exit_code_gates_on_severity(dirty_tree):
    _, report = _report(dirty_tree)
    assert report.exit_code() == 1
    assert report.exit_code(Severity.CRITICAL) == 0
    assert report.exit_code(None) == 0


def test_engine_rejects_duplicate_checkers():
    checkers = all_checkers()
    with pytest.raises(ValueError, match="duplicate"):
        AuditEngine([checkers[0], checkers[0]])


def test_register_rejects_bad_rule_ids():
    class Nameless(Checker):
        rule_id = "XYZ001"
        title = "t"
        remediation = "r"

    with pytest.raises(ValueError, match="AUD001"):
        register(Nameless)


def test_findings_are_sorted_deterministically(dirty_tree):
    _, report = _report(dirty_tree)
    key = [(f.rule_id, f.relpath, f.line, f.message) for f in report.findings]
    assert key == sorted(key)


def test_audit_finding_to_dict_shape():
    finding = AuditFinding(rule_id="AUD001", severity=Severity.HIGH,
                           relpath="repro/x.py", line=3, message="m",
                           remediation="r")
    document = finding.to_dict()
    assert set(document) == {"ruleId", "severity", "path", "line",
                             "message", "remediation", "fingerprint"}
    assert len(document["fingerprint"]) == 16
