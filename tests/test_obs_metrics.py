"""Counter/Gauge/Histogram aggregation and the metrics registry."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import OBS, instrumented


class TestCounter:
    def test_increments(self):
        counter = Counter("frames")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("frames").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("util")
        gauge.set(0.3)
        gauge.set(0.9)
        assert gauge.value == 0.9
        assert gauge.updates == 2


class TestHistogram:
    def test_summary_on_known_distribution(self):
        hist = Histogram("latency")
        for value in range(1, 101):           # 1..100
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == 50.0
        assert summary["p95"] == 95.0
        assert summary["p99"] == 99.0

    def test_percentiles_interleaved_with_observations(self):
        # Aggregation must survive out-of-order observes between queries.
        hist = Histogram("x")
        for value in (5.0, 1.0, 3.0):
            hist.observe(value)
        assert hist.percentile(100) == 5.0
        hist.observe(2.0)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(50) == 2.0

    def test_single_observation(self):
        hist = Histogram("one")
        hist.observe(7.0)
        summary = hist.summary()
        assert summary["p50"] == summary["p99"] == summary["mean"] == 7.0

    def test_empty_summary_and_percentile(self):
        hist = Histogram("empty")
        assert hist.summary()["count"] == 0
        with pytest.raises(ValueError, match="no observations"):
            hist.percentile(50)

    def test_percentile_range_checked(self):
        hist = Histogram("x")
        hist.observe(1.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            hist.percentile(101)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert len(registry) == 2

    def test_name_bound_to_one_shape(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_json_export_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(2.0)
        doc = registry.to_json_dict()
        assert doc["counters"] == {"c": 3}
        assert doc["gauges"] == {"g": 1.5}
        assert doc["histograms"]["h"]["count"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0


class TestDisabledMode:
    def test_hooks_are_noops_when_disabled(self):
        OBS.disable()
        before = len(OBS.metrics)
        OBS.count("ignored.counter")
        OBS.observe("ignored.histogram", 1.0)
        OBS.gauge("ignored.gauge", 2.0)
        assert len(OBS.metrics) == before

    def test_hooks_record_when_enabled(self):
        with instrumented() as obs:
            obs.count("seen.counter", 2)
            obs.observe("seen.histogram", 3.0)
            assert obs.metrics.counter("seen.counter").value == 2
            assert obs.metrics.histogram("seen.histogram").count == 1
