"""The sweep report: rendering, JSON export, and schema validation."""

import copy

import pytest

from repro.runner import SweepSchemaError, validate_sweep_dict
from repro.runner.engine import ExperimentResult
from repro.runner.report import SweepReport


def sample_report() -> SweepReport:
    results = [
        ExperimentResult("FIG1", "passed", 0, 1.25, 11, cache_key="a" * 64,
                         artifacts=[{"title": "Fig. 1", "rows": ["r1", "r2"]}]),
        ExperimentResult("FIG2", "cached", 0, 2.5, 22, cached=True,
                         cache_key="b" * 64),
        ExperimentResult("TAB1", "failed", 1, 0.5, 33, retries=0,
                         error="assert failed"),
        ExperimentResult("EXT-1", "timeout", -1, 0.3, 44, retries=1,
                         error="timed out after 0.3s"),
    ]
    return SweepReport(results, jobs=4, cache_enabled=True, base_seed=0,
                       wall_s=3.75, tree="t" * 64)


class TestReport:
    def test_ok_and_exit_code(self):
        report = sample_report()
        assert not report.ok and report.exit_code() == 1
        good = SweepReport(report.results[:2], jobs=1, cache_enabled=True,
                           base_seed=0, wall_s=1.0, tree="t")
        assert good.ok and good.exit_code() == 0

    def test_counts(self):
        assert sample_report().counts() == {
            "passed": 1, "cached": 1, "failed": 1, "errors": 0, "timeouts": 1}

    def test_table_mentions_everything(self):
        text = sample_report().to_table()
        assert "FIG1" in text and "cache hit" in text
        assert "after 1 retry" in text and "timed out" in text
        assert "4 experiment(s)" in text and "4 job(s)" in text


class TestSchema:
    def test_sample_document_validates(self):
        validate_sweep_dict(sample_report().to_json_dict())

    def test_summary_counts_enforced(self):
        document = sample_report().to_json_dict()
        document["summary"]["passed"] = 2
        with pytest.raises(SweepSchemaError, match="summary.passed"):
            validate_sweep_dict(document)

    @pytest.mark.parametrize("mutate, match", [
        (lambda d: d.pop("sweep"), "top-level keys"),
        (lambda d: d.update(version="9.9"), "schema version"),
        (lambda d: d["tool"].update(name="other"), "tool name"),
        (lambda d: d["sweep"].update(jobs=0), "jobs"),
        (lambda d: d["sweep"].update(wallS=-1.0), "wallS"),
        (lambda d: d["sweep"].update(treeDigest=""), "treeDigest"),
        (lambda d: d["experiments"][0].update(status="exploded"),
         "bad status"),
        (lambda d: d["experiments"][0].update(cached=True),
         "cached flag"),
        (lambda d: d["experiments"][0].update(durationS=-2), "durationS"),
        (lambda d: d["experiments"][0].pop("seed"), "keys"),
        (lambda d: d["experiments"][0]["artifacts"].append({"title": ""}),
         "artifact"),
        (lambda d: d["experiments"].append(
            copy.deepcopy(d["experiments"][0])), "duplicate id"),
        (lambda d: d["summary"].update(ok=True), "summary.ok"),
        (lambda d: d["summary"].update(total=99), "summary.total"),
    ])
    def test_mutations_rejected(self, mutate, match):
        document = sample_report().to_json_dict()
        mutate(document)
        with pytest.raises(SweepSchemaError, match=match):
            validate_sweep_dict(document)

    def test_duplicate_mutation_also_breaks_counts_first(self):
        # appending a duplicate changes counts too; ensure *some* schema
        # error fires even when counts break before the id check
        document = sample_report().to_json_dict()
        document["experiments"].append(
            copy.deepcopy(document["experiments"][0]))
        with pytest.raises(SweepSchemaError):
            validate_sweep_dict(document)
