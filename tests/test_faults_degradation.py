"""The FULL -> DEGRADED -> MINIMAL_RISK -> SAFE_STOP ladder."""

import pytest

from repro.core.layers import Layer
from repro.core.response import ResponseEngine, SecurityAlert, Severity
from repro.faults import DegradationManager, ServiceLevel


def drive(manager, reports):
    """Feed one component's pass/fail sequence, ticking after each report."""
    for t, ok in enumerate(reports):
        manager.report("phy", ok)
        manager.tick(float(t))
    return manager.level


class TestHealthDrivenDegradation:
    def test_sustained_failure_steps_down_one_level(self):
        manager = DegradationManager(degrade_streak=1)
        assert drive(manager, [True, False]) is ServiceLevel.DEGRADED

    def test_degrade_streak_filters_single_noisy_ticks(self):
        # one bad tick surrounded by good ones never reaches the streak
        manager = DegradationManager(degrade_streak=2)
        assert drive(manager, [True, False, True, True]) is ServiceLevel.FULL
        # two consecutive bad ticks do
        fresh = DegradationManager(degrade_streak=2)
        assert drive(fresh, [False, False]) is ServiceLevel.DEGRADED

    def test_flapping_component_cannot_walk_the_ladder_down(self):
        manager = DegradationManager(degrade_streak=2, recovery_streak=2)
        level = drive(manager, [True, False] * 10)
        assert level is ServiceLevel.FULL

    def test_stale_window_history_does_not_keep_degrading(self):
        # After the failure burst ends, the windowed fraction stays high
        # for several ticks — but a *currently passing* component must not
        # ratchet the vehicle further down on stale history alone.
        manager = DegradationManager(degrade_streak=1, allow_recovery=False)
        drive(manager, [False, False, True, True, True, True])
        assert manager.level is ServiceLevel.MINIMAL_RISK  # two bad ticks
        assert manager.min_level is ServiceLevel.MINIMAL_RISK

    def test_recovery_requires_a_healthy_streak(self):
        manager = DegradationManager(degrade_streak=1, recovery_streak=3)
        drive(manager, [False, True, True])
        assert manager.level is ServiceLevel.DEGRADED  # streak not reached
        drive_from = DegradationManager(degrade_streak=1, recovery_streak=3)
        assert drive(drive_from,
                     [False, True, True, True]) is ServiceLevel.FULL
        assert drive_from.time_to_recover() == 3.0

    def test_unhardened_posture_never_recovers(self):
        manager = DegradationManager(degrade_streak=1, recovery_streak=1,
                                     allow_recovery=False)
        assert drive(manager, [False] + [True] * 10) is ServiceLevel.DEGRADED

    def test_safe_stop_latches(self):
        manager = DegradationManager(degrade_streak=1, recovery_streak=1)
        drive(manager, [False, False, False])
        assert manager.level is ServiceLevel.SAFE_STOP
        assert drive(manager, [True] * 10) is ServiceLevel.SAFE_STOP

    def test_validation(self):
        with pytest.raises(ValueError, match="degrade_threshold"):
            DegradationManager(degrade_threshold=0.0)
        with pytest.raises(ValueError, match="streaks"):
            DegradationManager(degrade_streak=0)


def critical_alert(t=1.0, component="ecu-babbler"):
    return SecurityAlert(time=t, layer=Layer.NETWORK, component=component,
                         attack_name="babbling-idiot",
                         severity=Severity.CRITICAL)


class TestResponseEngineCoupling:
    def test_isolate_decision_forces_degraded_immediately(self):
        manager = DegradationManager()
        engine = ResponseEngine()
        manager.attach(engine)
        engine.handle(critical_alert())
        assert manager.level is ServiceLevel.DEGRADED
        assert manager.changes[0].reason.startswith("response isolate")

    def test_recovery_is_capped_by_the_response_floor(self):
        manager = DegradationManager(recovery_streak=2)
        engine = ResponseEngine()
        manager.attach(engine)
        engine.handle(critical_alert())
        drive(manager, [True] * 6)
        assert manager.level is ServiceLevel.DEGRADED  # floor holds
        manager.clear_response_floor()
        drive(manager, [True, True])
        assert manager.level is ServiceLevel.FULL

    def test_escalated_safe_stop_latches_through_the_subscription(self):
        manager = DegradationManager()
        engine = ResponseEngine(escalation_threshold=1)
        manager.attach(engine)
        for t in range(3):  # isolate -> degrade-function -> safe-stop
            engine.handle(critical_alert(t=float(t)))
        assert manager.level is ServiceLevel.SAFE_STOP
        manager.clear_response_floor()
        drive(manager, [True] * 10)
        assert manager.level is ServiceLevel.SAFE_STOP


class TestReporting:
    def test_to_dict_shape_and_timings(self):
        manager = DegradationManager(degrade_streak=1, recovery_streak=1)
        drive(manager, [True, False, True])
        doc = manager.to_dict()
        assert set(doc) == {"finalLevel", "minLevel", "changes",
                            "timeToDegradeS", "timeToRecoverS"}
        assert doc["finalLevel"] == "full" and doc["minLevel"] == "degraded"
        assert doc["timeToDegradeS"] == 1.0
        assert doc["timeToRecoverS"] == 2.0
        assert [c["level"] for c in doc["changes"]] == ["degraded", "full"]
