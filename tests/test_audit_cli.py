"""``python -m repro audit`` end to end: exit codes, output modes,
baseline workflow, and the shipped tree's gate."""

import json
import textwrap

import pytest

from repro.__main__ import main
from repro.audit import validate_audit_dict
from repro.lint.sarif import validate_sarif_dict


@pytest.fixture
def dirty_root(tmp_path):
    root = tmp_path / "repro"
    (root / "ivn").mkdir(parents=True)
    (root / "ivn" / "noise.py").write_text(textwrap.dedent("""\
        import numpy as np

        def noise():
            return np.random.default_rng(7)
    """))
    return root


def test_shipped_tree_passes_the_gate(capsys):
    assert main(["audit", "--gate"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_default_run_prints_table(capsys):
    assert main(["audit"]) == 0
    out = capsys.readouterr().out
    assert "modules" in out and "rules" in out


def test_dirty_tree_fails_the_gate(dirty_root, capsys):
    assert main(["audit", "--root", str(dirty_root), "--gate"]) == 1
    out = capsys.readouterr().out
    assert "AUD002" in out


def test_dirty_tree_without_gate_exits_zero(dirty_root, capsys):
    assert main(["audit", "--root", str(dirty_root)]) == 0
    assert "AUD002" in capsys.readouterr().out


def test_gate_threshold_is_respected(dirty_root, capsys):
    # AUD002 is high severity; a critical gate lets it through
    assert main(["audit", "--root", str(dirty_root),
                 "--gate", "critical"]) == 0
    assert main(["audit", "--root", str(dirty_root), "--gate", "high"]) == 1
    capsys.readouterr()


def test_json_output_validates(dirty_root, capsys):
    assert main(["audit", "--root", str(dirty_root), "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    validate_audit_dict(document)
    assert document["summary"]["byRule"] == {"AUD002": 1}
    assert {rule["id"] for rule in document["rules"]} >= {"AUD001", "AUD008"}


def test_sarif_output_validates(dirty_root, capsys):
    assert main(["audit", "--root", str(dirty_root), "--sarif"]) == 0
    document = json.loads(capsys.readouterr().out)
    validate_sarif_dict(document)
    assert document["runs"][0]["tool"]["driver"]["name"] == "repro-audit"


def test_rules_listing(capsys):
    assert main(["audit", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("AUD001", "AUD008"):
        assert rule_id in out


def test_baseline_workflow(dirty_root, tmp_path, capsys):
    baseline = tmp_path / "audit-baseline.json"
    assert main(["audit", "--root", str(dirty_root),
                 "--write-baseline", str(baseline)]) == 0
    assert baseline.exists()
    # with the baseline, the same tree gates clean
    assert main(["audit", "--root", str(dirty_root),
                 "--baseline", str(baseline), "--gate"]) == 0
    out = capsys.readouterr().out
    assert "1 suppressed" in out


def test_bad_baseline_path_is_a_usage_error(dirty_root, capsys):
    assert main(["audit", "--root", str(dirty_root),
                 "--baseline", "/nonexistent/baseline.json"]) == 2
    assert "cannot load baseline" in capsys.readouterr().err


def test_syntax_error_in_root_is_a_usage_error(tmp_path, capsys):
    root = tmp_path / "repro"
    root.mkdir()
    (root / "broken.py").write_text("def f(:\n")
    assert main(["audit", "--root", str(root)]) == 2
    assert "cannot parse" in capsys.readouterr().err
