"""Tests for periodic traffic, flood DoS, and the detect->respond loop."""

import pytest

from repro.core.events import Simulator
from repro.ivn.bus import BusNode, CanBus
from repro.ivn.ids import FrequencyIds
from repro.ivn.streams import (
    PeriodicStream,
    TrafficScheduler,
    run_dos_response_experiment,
)


def _setup(streams):
    sim = Simulator()
    bus = CanBus(sim)
    for name in {s.sender for s in streams}:
        bus.attach(BusNode(name))
    scheduler = TrafficScheduler(sim, bus, streams)
    return sim, bus, scheduler


class TestPeriodicTraffic:
    def test_all_frames_delivered_on_time_unloaded(self):
        streams = [PeriodicStream(0x100, "engine", period_s=0.01)]
        sim, _, scheduler = _setup(streams)
        scheduler.start(0.5)
        sim.run()
        scheduler.harvest()
        stats = scheduler.stats[0x100]
        assert stats.sent == 50
        assert stats.delivered == 50
        assert stats.miss_rate == 0.0

    def test_latencies_recorded(self):
        streams = [PeriodicStream(0x100, "engine", period_s=0.01)]
        sim, _, scheduler = _setup(streams)
        scheduler.start(0.1)
        sim.run()
        scheduler.harvest()
        stats = scheduler.stats[0x100]
        assert stats.worst_latency_s > 0
        assert stats.worst_latency_s < 0.001  # unloaded bus: ~frame time

    def test_contention_between_streams(self):
        streams = [
            PeriodicStream(0x100, "engine", period_s=0.001),
            PeriodicStream(0x200, "brake", period_s=0.001),
        ]
        sim, _, scheduler = _setup(streams)
        scheduler.start(0.1)
        sim.run()
        scheduler.harvest()
        # The lower-id stream wins arbitration; the other queues behind.
        assert (scheduler.stats[0x200].worst_latency_s
                >= scheduler.stats[0x100].worst_latency_s)

    def test_undelivered_counts_as_miss(self):
        # Saturate: period shorter than frame time on a slow bus.
        sim = Simulator()
        bus = CanBus(sim, bitrate_bps=50e3)
        bus.attach(BusNode("engine"))
        stream = PeriodicStream(0x100, "engine", period_s=0.001)
        scheduler = TrafficScheduler(sim, bus, [stream])
        scheduler.start(0.2)
        sim.run(until=0.2)
        scheduler.harvest()
        stats = scheduler.stats[0x100]
        assert stats.miss_rate > 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicStream(0x1, "e", period_s=0.0)
        with pytest.raises(ValueError):
            PeriodicStream(0x1, "e", period_s=1.0, payload_len=9)
        sim = Simulator()
        bus = CanBus(sim)
        bus.attach(BusNode("e"))
        with pytest.raises(ValueError):
            TrafficScheduler(sim, bus, [
                PeriodicStream(0x1, "e", period_s=1.0),
                PeriodicStream(0x1, "e", period_s=2.0),
            ])


class TestBurstDetection:
    def test_unknown_id_burst_flagged(self):
        ids = FrequencyIds(burst_threshold=10, burst_window_s=0.05)
        alert = None
        for i in range(12):
            alert = ids.monitor(0x000, i * 0.001) or alert
        assert alert is not None
        assert "bursting" in alert.reason

    def test_sporadic_unknown_id_tolerated(self):
        ids = FrequencyIds(burst_threshold=10, burst_window_s=0.05)
        for i in range(12):
            assert ids.monitor(0x000, i * 1.0) is None  # 1 Hz, not a burst

    def test_burst_parameter_validation(self):
        with pytest.raises(ValueError):
            FrequencyIds(burst_threshold=1)
        with pytest.raises(ValueError):
            FrequencyIds(burst_window_s=0.0)


class TestDosResponseExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return run_dos_response_experiment(duration_s=1.0)

    def test_baseline_meets_deadlines(self, report):
        assert report.miss_rate_no_attack == 0.0

    def test_flood_starves_streams(self, report):
        assert report.miss_rate_attack_no_response > 0.5

    def test_response_restores_service(self, report):
        assert report.miss_rate_attack_with_response < 0.05

    def test_detection_and_isolation_are_fast(self, report):
        assert report.detection_time_s is not None
        assert report.isolation_time_s is not None
        # Flood starts at 0.3 s; the loop reacts within tens of ms.
        assert report.detection_time_s - 0.3 < 0.05
        assert report.isolation_time_s >= report.detection_time_s

    def test_isolation_caps_attack_frames(self, report):
        # Without response the flood runs for 0.7 s at 5 kHz; with the
        # response it is cut after a few tens of frames.
        assert report.attack_frames_sent < 100
