"""Campaign report schema: determinism split, validator, digests."""

import json

import pytest

from repro.campaign import (
    CampaignReport,
    CampaignSpec,
    CampaignTool,
    SchemaError,
    ShardEntry,
    result_digest,
    validate_campaign_dict,
)


def spec():
    return CampaignSpec.matrix(
        tools=[CampaignTool.LINT], seeds=[0],
        scenarios=["maas-platform", "pkes-legacy"], name="rpt")


def make_report(**kwargs):
    s = spec()
    report = CampaignReport(spec=s, **kwargs)
    result = {"verdict": "ok"}
    report.entries["lint/maas-platform/-/s0"] = ShardEntry(
        shard=s.shards[0].to_dict(), status="ok", result=result,
        digest=result_digest(result), attempts=1, duration_s=0.25)
    report.entries["lint/pkes-legacy/-/s0"] = ShardEntry(
        shard=s.shards[1].to_dict(), status="error", result=None,
        digest="", error="ToolError: nope", attempts=1, duration_s=0.1)
    return report


class TestReport:
    def test_document_validates(self):
        validate_campaign_dict(make_report().to_json_dict())

    def test_wall_clock_never_reaches_the_json(self):
        fast = make_report(wall_s=0.1, journal_write_s=0.01)
        slow = make_report(wall_s=99.9, journal_write_s=5.0,
                           resumed_shards=2)
        assert json.dumps(fast.to_json_dict(), sort_keys=True) == \
            json.dumps(slow.to_json_dict(), sort_keys=True)
        flattened = json.dumps(fast.to_json_dict())
        assert "wallS" not in flattened and "attempts" not in flattened

    def test_missing_entries_report_pending(self):
        report = CampaignReport(spec=spec(), interrupted=True)
        document = report.to_json_dict()
        validate_campaign_dict(document)
        assert document["summary"]["pending"] == 2
        assert not document["summary"]["complete"]
        assert all(e["status"] == "pending" for e in document["shards"])

    def test_exit_codes(self):
        assert make_report().exit_code() == 1          # one error shard
        assert make_report(interrupted=True).exit_code() == 130
        ok = make_report()
        entry = ok.entries["lint/pkes-legacy/-/s0"]
        entry.status, entry.error = "ok", ""
        entry.result = {"verdict": "ok"}
        entry.digest = result_digest(entry.result)
        assert ok.exit_code() == 0

    def test_table_mentions_wall_clock_and_interrupt(self):
        report = make_report(wall_s=1.5, resumed_shards=1, interrupted=True)
        table = report.to_table()
        assert "1.50s" in table and "[interrupted]" in table
        assert "resumed: 1 shard(s)" in table


class TestValidator:
    MUTATIONS = [
        (lambda d: d.pop("summary"), "keys mismatch"),
        (lambda d: d.update(version="9.9"), "version"),
        (lambda d: d["tool"].update(name="other"), "tool"),
        (lambda d: d["campaign"].update(shardCount=7), "shardCount"),
        (lambda d: d["shards"][0].update(status="exploded"), "status"),
        (lambda d: d["shards"][0].update(digest="beef"), "digest"),
        (lambda d: d["shards"][0].update(result=None), "result"),
        (lambda d: d["shards"][1].update(result={"x": 1}), "carries"),
        (lambda d: d["shards"][1].update(digest="beef"), "digest"),
        (lambda d: d["summary"].update(ok=5), "summary.ok"),
        (lambda d: d["summary"].update(pending=1), "summary.pending"),
        (lambda d: d["summary"].update(complete=False), "summary.complete"),
        (lambda d: d["shards"].reverse(), "sorted"),
        (lambda d: d["shards"].__setitem__(1, d["shards"][0]), "sorted|unique"),
        (lambda d: d["shards"][0].pop("seed"), "keys mismatch"),
    ]

    @pytest.mark.parametrize("mutate, match", MUTATIONS)
    def test_mutations_rejected(self, mutate, match):
        document = make_report().to_json_dict()
        mutate(document)
        with pytest.raises(SchemaError, match=match):
            validate_campaign_dict(document)

    def test_digest_recompute_catches_result_tampering(self):
        document = make_report().to_json_dict()
        document["shards"][0]["result"]["verdict"] = "tampered"
        with pytest.raises(SchemaError, match="digest"):
            validate_campaign_dict(document)

    def test_complete_and_interrupted_is_contradictory(self):
        document = make_report(interrupted=True).to_json_dict()
        # both shards settled -> complete, yet marked interrupted
        with pytest.raises(SchemaError, match="complete"):
            validate_campaign_dict(document)
