"""End-to-end sentinel campaigns: gates, determinism, closed loop."""

import json

import pytest

from repro.faults.plan import get_plan
from repro.sentinel import (
    SCENARIO_ANCHORS,
    run_sentinel_campaign,
    run_sentinel_scenario,
    sentinel_scenario_names,
    validate_sentinel_dict,
)

INSECURE = ["pkes-legacy", "onboard-insecure", "cariad-breach",
            "maas-platform"]


def scenario(name, plan="baseline", **kwargs):
    return run_sentinel_scenario(name, get_plan(plan), **kwargs)


class TestInputs:
    def test_scenario_names_match_anchor_table(self):
        assert set(sentinel_scenario_names()) == set(SCENARIO_ANCHORS)
        assert set(INSECURE) < set(sentinel_scenario_names())
        assert "onboard-hardened" in sentinel_scenario_names()

    def test_unknown_scenario_lists_available(self):
        with pytest.raises(KeyError, match="onboard-hardened"):
            scenario("no-such-scenario")

    def test_duration_validated(self):
        with pytest.raises(ValueError, match="duration"):
            scenario("onboard-hardened", duration=0)


class TestDetectionGates:
    def test_hardened_baseline_is_alarm_free(self):
        # The false-positive gate: a resilient stack under everyday
        # faults must not page anyone.
        result = scenario("onboard-hardened", "baseline")
        assert result["detection"]["alarmRaised"] is False
        assert result["detection"]["alarmIncidents"] == 0
        assert result["sentinel"]["alarmedSources"] == []

    @pytest.mark.parametrize("name", INSECURE)
    def test_insecure_scenarios_alarm_before_safe_stop(self, name):
        result = scenario(name, "severe")
        detection = result["detection"]
        assert detection["alarmRaised"], name
        assert detection["detectedBeforeSafeStop"], name
        assert detection["trustCollapsed"], name

    def test_lead_ticks_computed_against_safe_stop(self):
        result = scenario("pkes-legacy", "severe")
        detection = result["detection"]
        assert detection["safeStopT"] is not None
        assert detection["leadTicks"] == (detection["safeStopT"]
                                          - detection["firstAlarmT"])
        assert detection["leadTicks"] > 0

    def test_hardened_recovers_service_after_isolation(self):
        # The closed loop in one scenario: trust collapse on the babbler
        # drives ISOLATE, degradation dips, then service recovers fully.
        result = scenario("onboard-hardened", "baseline")
        assert "ecu-babbler" in result["response"]["isolated"]
        levels = [c["level"] for c in result["degradation"]["changes"]]
        assert "degraded" in levels
        assert result["degradation"]["finalLevel"] == "full"


class TestDeterminism:
    def test_reports_are_byte_identical_per_plan_and_seed(self):
        first = run_sentinel_campaign(["onboard-insecure"], "severe")
        second = run_sentinel_campaign(["onboard-insecure"], "severe")
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_seed_changes_the_telemetry(self):
        base = scenario("onboard-insecure", "severe")
        other = scenario("onboard-insecure", "severe", base_seed=7)
        assert json.dumps(base, sort_keys=True) != \
            json.dumps(other, sort_keys=True)

    def test_campaign_document_validates(self):
        document = run_sentinel_campaign(
            sentinel_scenario_names(), "baseline")
        validate_sentinel_dict(document)

    def test_severe_campaign_document_validates(self):
        document = run_sentinel_campaign(INSECURE, "severe", base_seed=3)
        validate_sentinel_dict(document)


class TestCampaignSummary:
    def test_summary_partitions_scenarios(self):
        document = run_sentinel_campaign(
            ["onboard-hardened", "onboard-insecure"], "severe")
        summary = document["summary"]
        assert summary["scenarioCount"] == 2
        assert "onboard-insecure" in summary["scenariosDetected"]
        assert sorted(summary["scenariosDetected"]
                      + summary["scenariosClean"]) == [
            "onboard-hardened", "onboard-insecure"]

    def test_unknown_plan_propagates(self):
        with pytest.raises(KeyError):
            run_sentinel_campaign(["onboard-hardened"], "no-such-plan")
