"""Tests for MACsec (SecY, MKA) and CANsec."""

import pytest

from repro.ivn.cansec import CANSEC_OVERHEAD_BYTES, CansecZone
from repro.ivn.frames import CanXlFrame
from repro.ivn.macsec import MacsecFrame, MacsecPort, MkaSession, Sci, SecureAssociation


def _pair():
    a = MacsecPort("node-a")
    b = MacsecPort("node-b")
    MkaSession(b"\x66" * 16, [a, b]).distribute_sak()
    return a, b


class TestMacsecDataPath:
    def test_protect_validate_roundtrip(self):
        a, b = _pair()
        frame = a.protect(b"steering command")
        assert b.validate(frame) == b"steering command"

    def test_ciphertext_hides_plaintext(self):
        a, _ = _pair()
        frame = a.protect(b"secret payload!!")
        assert b"secret" not in frame.ciphertext

    def test_tampering_detected(self):
        a, b = _pair()
        frame = a.protect(b"brake command")
        tampered = MacsecFrame(frame.sci, frame.an, frame.pn,
                               bytes([frame.ciphertext[0] ^ 1]) + frame.ciphertext[1:],
                               frame.icv)
        assert b.validate(tampered) is None
        assert b.stats["auth_failed"] == 1

    def test_replay_dropped(self):
        a, b = _pair()
        frame = a.protect(b"payload")
        assert b.validate(frame) is not None
        assert b.validate(frame) is None
        assert b.stats["replay_dropped"] == 1

    def test_replay_window_allows_reordering(self):
        a = MacsecPort("node-a")
        b = MacsecPort("node-b", replay_window=4)
        MkaSession(b"\x67" * 16, [a, b]).distribute_sak()
        f1 = a.protect(b"one")
        f2 = a.protect(b"two")
        assert b.validate(f2) == b"two"
        assert b.validate(f1) == b"one"  # within window, not yet seen

    def test_unknown_peer_dropped(self):
        a, b = _pair()
        stranger = MacsecPort("evil")
        stranger.install_tx_sak(0, b"\x99" * 16)
        frame = stranger.protect(b"injected")
        assert b.validate(frame) is None

    def test_packet_numbers_increase(self):
        a, _ = _pair()
        f1 = a.protect(b"x")
        f2 = a.protect(b"y")
        assert f2.pn == f1.pn + 1

    def test_sa_validation(self):
        with pytest.raises(ValueError):
            SecureAssociation(an=4, sak=b"\x00" * 16)
        with pytest.raises(ValueError):
            SecureAssociation(an=0, sak=b"\x00" * 15)
        with pytest.raises(ValueError):
            MacsecPort("x", replay_window=-1)


class TestMka:
    def test_distribute_installs_keys_everywhere(self):
        members = [MacsecPort(f"n{i}") for i in range(3)]
        MkaSession(b"\x11" * 16, members).distribute_sak()
        for m in members:
            assert m.stored_keys == 1 + 2  # tx + one rx per peer

    def test_rekey_rotates_an(self):
        a, b = _pair()
        frame1 = a.protect(b"before rekey")
        session = MkaSession(b"\x66" * 16, [a, b])
        session.key_number = 1  # continue the original session's numbering
        session.distribute_sak()
        frame2 = a.protect(b"after rekey")
        assert frame2.an != frame1.an
        assert b.validate(frame1) == b"before rekey"
        assert b.validate(frame2) == b"after rekey"

    def test_mka_validation(self):
        with pytest.raises(ValueError):
            MkaSession(b"\x00" * 10, [MacsecPort("a"), MacsecPort("b")])
        with pytest.raises(ValueError):
            MkaSession(b"\x00" * 16, [MacsecPort("a")])

    def test_sci_encoding_stable(self):
        sci = Sci("node-a", 3)
        assert len(sci.encode()) == 8
        assert sci.encode() == Sci("node-a", 3).encode()


class TestCansec:
    def _zone_pair(self, encrypt=True):
        key = b"\x77" * 16
        return CansecZone(key, encrypt=encrypt), CansecZone(key, encrypt=encrypt)

    def test_protect_verify_roundtrip(self):
        tx, rx = self._zone_pair()
        frame = CanXlFrame(0x50, b"wheel speed data")
        secured = tx.protect(frame)
        assert secured.frame.sec
        assert rx.verify(secured) == b"wheel speed data"

    def test_confidentiality_mode_hides_payload(self):
        tx, _ = self._zone_pair()
        secured = tx.protect(CanXlFrame(0x50, b"confidential!!"))
        assert b"confidential" not in secured.frame.payload

    def test_authentication_only_mode(self):
        tx, rx = self._zone_pair(encrypt=False)
        frame = CanXlFrame(0x50, b"plaintext visible")
        secured = tx.protect(frame)
        assert b"plaintext visible" in secured.frame.payload
        assert rx.verify(secured) == b"plaintext visible"

    def test_replay_rejected(self):
        tx, rx = self._zone_pair()
        secured = tx.protect(CanXlFrame(0x50, b"cmd"))
        assert rx.verify(secured) is not None
        assert rx.verify(secured) is None
        assert rx.stats["rejected"] == 1

    def test_tampered_header_rejected(self):
        from repro.ivn.cansec import CansecSecuredFrame

        tx, rx = self._zone_pair()
        secured = tx.protect(CanXlFrame(0x50, b"cmd", acceptance_field=7))
        moved = CansecSecuredFrame(
            CanXlFrame(
                priority_id=secured.frame.priority_id,
                payload=secured.frame.payload,
                sdu_type=secured.frame.sdu_type,
                vcid=secured.frame.vcid,
                acceptance_field=99,  # address redirected
                sec=True,
            ),
            secured.freshness, secured.icv, secured.encrypted,
        )
        assert rx.verify(moved) is None

    def test_overhead_constant(self):
        tx, _ = self._zone_pair()
        frame = CanXlFrame(0x50, b"\x00" * 100)
        secured = tx.protect(frame)
        assert len(secured.frame.payload) == 100 + CANSEC_OVERHEAD_BYTES

    def test_double_protection_rejected(self):
        tx, _ = self._zone_pair()
        secured = tx.protect(CanXlFrame(0x50, b"cmd"))
        with pytest.raises(ValueError):
            tx.protect(secured.frame)

    def test_key_validation(self):
        with pytest.raises(ValueError):
            CansecZone(b"\x00" * 8)
