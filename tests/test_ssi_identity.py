"""Tests for DIDs, the registry, credentials, presentations, and wallets."""

import pytest

from repro.ssi.did import Did, DidDocument, KeyPair
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.vc import VerifiableCredential, VerifiablePresentation
from repro.ssi.wallet import Wallet

NOW = 1_700_000_000.0


class TestDid:
    def test_string_form_and_parse(self):
        did = Did("vehicle-42")
        assert str(did) == "did:vreg:vehicle-42"
        assert Did.parse("did:vreg:vehicle-42") == did

    def test_invalid_names(self):
        with pytest.raises(ValueError):
            Did("")
        with pytest.raises(ValueError):
            Did("a:b")
        with pytest.raises(ValueError):
            Did.parse("did:web:example.com")

    def test_keypair_deterministic(self):
        assert KeyPair.from_seed_label("x") == KeyPair.from_seed_label("x")
        assert KeyPair.from_seed_label("x") != KeyPair.from_seed_label("y")

    def test_document_verify(self):
        kp = KeyPair.from_seed_label("doc")
        doc = DidDocument.for_keypair(Did("a"), kp)
        sig = kp.sign(b"hello")
        assert doc.verify(b"hello", sig)
        assert not doc.verify(b"tampered", sig)

    def test_document_canonical_hash_stable(self):
        kp = KeyPair.from_seed_label("doc")
        d1 = DidDocument.for_keypair(Did("a"), kp, {"svc": "https://x"})
        d2 = DidDocument.for_keypair(Did("a"), kp, {"svc": "https://x"})
        assert d1.content_hash() == d2.content_hash()


class TestRegistry:
    def test_register_and_resolve(self):
        registry = VerifiableDataRegistry()
        kp = KeyPair.from_seed_label("r1")
        doc = DidDocument.for_keypair(Did("node"), kp)
        registry.register(doc)
        assert registry.resolve("did:vreg:node").primary_key() == kp.public

    def test_unresolvable_raises(self):
        with pytest.raises(KeyError):
            VerifiableDataRegistry().resolve("did:vreg:ghost")

    def test_key_rotation_appends_version(self):
        registry = VerifiableDataRegistry()
        old = DidDocument.for_keypair(Did("node"), KeyPair.from_seed_label("old"))
        new = DidDocument.for_keypair(Did("node"), KeyPair.from_seed_label("new"))
        registry.register(old)
        registry.register(new)
        assert len(registry.history("did:vreg:node")) == 2
        assert registry.resolve("did:vreg:node").content_hash() == new.content_hash()

    def test_hash_chain_verifies(self):
        registry = VerifiableDataRegistry()
        for i in range(5):
            registry.register(DidDocument.for_keypair(
                Did(f"n{i}"), KeyPair.from_seed_label(f"n{i}")))
        assert registry.verify_chain()
        assert len(registry) == 5

    def test_revocation(self):
        registry = VerifiableDataRegistry()
        registry.revoke_credential("urn:vc:x", "did:vreg:issuer")
        assert registry.is_revoked("urn:vc:x")
        with pytest.raises(ValueError):
            registry.revoke_credential("urn:vc:x", "did:vreg:other")


@pytest.fixture()
def ssi_world():
    registry = VerifiableDataRegistry()
    issuer = Wallet.create("oem", registry)
    holder = Wallet.create("vehicle", registry)
    return registry, issuer, holder


class TestCredentials:
    def test_issue_and_verify(self, ssi_world):
        registry, issuer, holder = ssi_world
        cred = issuer.issue(credential_type="Test", subject=holder.did,
                            claims={"k": "v"}, issued_at=NOW)
        assert cred.verify(registry, now=NOW + 10)

    def test_expiry_enforced(self, ssi_world):
        registry, issuer, holder = ssi_world
        cred = issuer.issue(credential_type="Test", subject=holder.did,
                            claims={}, issued_at=NOW, validity_s=100)
        assert cred.verify(registry, now=NOW + 50)
        assert not cred.verify(registry, now=NOW + 101)
        assert not cred.verify(registry, now=NOW - 1)

    def test_tampered_claims_rejected(self, ssi_world):
        from dataclasses import replace

        registry, issuer, holder = ssi_world
        cred = issuer.issue(credential_type="Test", subject=holder.did,
                            claims={"role": "user"}, issued_at=NOW)
        forged = replace(cred, claims={"role": "admin"})
        assert not forged.verify(registry, now=NOW + 1)

    def test_unknown_issuer_rejected(self, ssi_world):
        registry, _, holder = ssi_world
        rogue_registry = VerifiableDataRegistry()
        rogue = Wallet.create("rogue", rogue_registry)  # not in `registry`
        cred = rogue.issue(credential_type="Test", subject=holder.did,
                           claims={}, issued_at=NOW)
        result = cred.verify(registry, now=NOW + 1)
        assert not result
        assert "unresolvable" in result.reason

    def test_revoked_rejected(self, ssi_world):
        registry, issuer, holder = ssi_world
        cred = issuer.issue(credential_type="Test", subject=holder.did,
                            claims={}, issued_at=NOW)
        registry.revoke_credential(cred.credential_id, issuer.did)
        assert not cred.verify(registry, now=NOW + 1)
        # Offline-style verification skips the revocation lookup.
        assert cred.verify(registry, now=NOW + 1, check_revocation=False)

    def test_validity_must_be_positive(self, ssi_world):
        _, issuer, holder = ssi_world
        with pytest.raises(ValueError):
            issuer.issue(credential_type="T", subject=holder.did,
                         claims={}, issued_at=NOW, validity_s=0)


class TestPresentations:
    def test_present_and_verify(self, ssi_world):
        registry, issuer, holder = ssi_world
        holder.store(issuer.issue(credential_type="Test", subject=holder.did,
                                  claims={}, issued_at=NOW))
        challenge = b"\x01" * 16
        pres = holder.present(["Test"], challenge)
        assert pres.verify(registry, now=NOW + 1, expected_challenge=challenge)

    def test_challenge_mismatch_rejected(self, ssi_world):
        registry, issuer, holder = ssi_world
        holder.store(issuer.issue(credential_type="Test", subject=holder.did,
                                  claims={}, issued_at=NOW))
        pres = holder.present(["Test"], b"\x01" * 16)
        result = pres.verify(registry, now=NOW + 1, expected_challenge=b"\x02" * 16)
        assert not result
        assert "replay" in result.reason

    def test_stolen_credential_unusable(self, ssi_world):
        # A thief cannot present someone else's credential: holder
        # binding fails.
        registry, issuer, holder = ssi_world
        thief = Wallet.create("thief", registry)
        cred = issuer.issue(credential_type="Test", subject=holder.did,
                            claims={}, issued_at=NOW)
        challenge = b"\x03" * 16
        pres = VerifiablePresentation.create(
            holder=thief.did, holder_key=thief.keypair,
            credentials=[cred], challenge=challenge)
        result = pres.verify(registry, now=NOW + 1, expected_challenge=challenge)
        assert not result

    def test_wallet_stores_own_credentials_only(self, ssi_world):
        _, issuer, holder = ssi_world
        other_cred = issuer.issue(credential_type="Test", subject="did:vreg:other",
                                  claims={}, issued_at=NOW)
        with pytest.raises(ValueError):
            holder.store(other_cred)

    def test_missing_credential_type(self, ssi_world):
        _, _, holder = ssi_world
        with pytest.raises(KeyError):
            holder.present(["Nonexistent"], b"\x00" * 16)

    def test_presentation_needs_credentials(self, ssi_world):
        _, _, holder = ssi_world
        with pytest.raises(ValueError):
            VerifiablePresentation.create(holder=holder.did,
                                          holder_key=holder.keypair,
                                          credentials=[], challenge=b"c")

    def test_newest_credential_selected(self, ssi_world):
        registry, issuer, holder = ssi_world
        holder.store(issuer.issue(credential_type="Test", subject=holder.did,
                                  claims={"v": 1}, issued_at=NOW))
        holder.store(issuer.issue(credential_type="Test", subject=holder.did,
                                  claims={"v": 2}, issued_at=NOW + 100))
        pres = holder.present(["Test"], b"\x05" * 16)
        assert pres.credentials[0].claims == {"v": 2}


class TestKeyRotation:
    def test_rotation_publishes_new_document(self, ssi_world):
        registry, _, holder = ssi_world
        old_public = holder.keypair.public
        holder.rotate_keys(registry)
        assert holder.keypair.public != old_public
        assert len(registry.history(holder.did)) == 2

    def test_new_key_signs_new_credentials(self, ssi_world):
        registry, issuer, holder = ssi_world
        issuer.rotate_keys(registry)
        cred = issuer.issue(credential_type="Test", subject=holder.did,
                            claims={}, issued_at=NOW)
        assert cred.verify(registry, now=NOW + 1)

    def test_grace_rotation_keeps_old_signatures_valid(self, ssi_world):
        registry, issuer, holder = ssi_world
        cred = issuer.issue(credential_type="Test", subject=holder.did,
                            claims={}, issued_at=NOW)
        issuer.rotate_keys(registry, keep_old_key=True)
        assert cred.verify(registry, now=NOW + 1)

    def test_revocation_rotation_kills_old_signatures(self, ssi_world):
        # Compromise recovery: the new document drops the old key, so
        # anything the (stolen) old key signed no longer verifies.
        registry, issuer, holder = ssi_world
        cred = issuer.issue(credential_type="Test", subject=holder.did,
                            claims={}, issued_at=NOW)
        issuer.rotate_keys(registry, keep_old_key=False)
        assert not cred.verify(registry, now=NOW + 1)
