"""Vectorized UWB kernel equivalence + template/ToA regression tests.

Pins that the vectorized waveform chain (cached templates, scatter-add
pulse placement, boolean-mask back-search, batched TWR) is *exactly*
equal to the scalar reference implementations — ``np.array_equal``,
never ``allclose`` — because byte-identical outputs per (seed, scenario)
is the repo's core invariant.
"""

import numpy as np
import pytest

from repro.phy.pulses import (
    HRP_CONFIG,
    LRP_CONFIG,
    PhyConfig,
    build_pulse_train,
    pulse_template,
    template_length,
)
from repro.phy.ranging import ds_twr, ds_twr_batch, ss_twr, ss_twr_batch
from repro.phy.toa import cross_correlation, first_path_toa


def _reference_pulse_train(symbols, config, positions=None, tail_samples=0):
    """The pre-vectorization placement loop, kept as the oracle."""
    template = pulse_template(config)
    spp = config.samples_per_pri
    if positions is None:
        positions = np.arange(symbols.size) * spp
    length = int(positions.max()) + template.size + tail_samples
    signal = np.zeros(length)
    for polarity, start in zip(symbols, positions):
        signal[start : start + template.size] += polarity * template
    return signal


class TestPulseTemplate:
    def test_length_is_exact_integer_derivation(self):
        """The template length must come from round(2·width·rate), not a
        float-stepped arange endpoint (whose length is platform- and
        rounding-sensitive)."""
        for config in (HRP_CONFIG, LRP_CONFIG):
            expected = round(2.0 * config.pulse_width_s * config.sample_rate_hz)
            assert template_length(config) == expected
            assert pulse_template(config).size == expected
        # HRP at ~2 GS/s: 2 ns pulse -> 2*2e-9*1.9968e9 = 7.9872 -> 8.
        assert template_length(HRP_CONFIG) == 8

    def test_length_never_below_one_sample(self):
        narrow = PhyConfig("narrow", sample_rate_hz=1e6, pulse_width_s=1e-10,
                           pulse_repetition_interval_s=1e-6, pulse_amplitude=1.0)
        assert template_length(narrow) == 1
        assert pulse_template(narrow).size == 1

    def test_cached_per_config(self):
        assert pulse_template(HRP_CONFIG) is pulse_template(HRP_CONFIG)
        assert pulse_template(HRP_CONFIG) is not pulse_template(LRP_CONFIG)

    def test_cached_template_is_read_only(self):
        template = pulse_template(HRP_CONFIG)
        with pytest.raises(ValueError):
            template[0] = 99.0

    def test_values_match_float_stepped_grid(self):
        """The integer index grid must reproduce the historical arange
        values exactly: t[k] = -width + k/rate."""
        config = HRP_CONFIG
        template = pulse_template(config)
        step = 1.0 / config.sample_rate_hz
        sigma = config.pulse_width_s / 4.0
        t = -config.pulse_width_s + np.arange(template.size) * step
        x = (t / sigma) ** 2
        wave = (1.0 - x) * np.exp(-x / 2.0)
        wave = wave / np.max(np.abs(wave)) * config.pulse_amplitude
        assert np.array_equal(template, wave)


class TestPulseTrainEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_regular_grid(self, seed):
        rng = np.random.default_rng(seed)
        symbols = rng.choice([-1.0, 1.0], size=200)
        got = build_pulse_train(symbols, HRP_CONFIG)
        assert np.array_equal(got, _reference_pulse_train(symbols, HRP_CONFIG))

    def test_custom_positions_with_overlaps(self):
        """Overlapping pulse positions accumulate; the scatter-add order
        must match the sequential loop bit-for-bit."""
        rng = np.random.default_rng(17)
        symbols = rng.choice([-1.0, 1.0], size=150)
        positions = np.sort(rng.integers(0, 400, size=150))
        got = build_pulse_train(symbols, HRP_CONFIG, positions=positions)
        want = _reference_pulse_train(symbols, HRP_CONFIG, positions=positions)
        assert np.array_equal(got, want)

    def test_tail_samples(self):
        symbols = np.array([1.0, -1.0])
        got = build_pulse_train(symbols, HRP_CONFIG, tail_samples=64)
        want = _reference_pulse_train(symbols, HRP_CONFIG, tail_samples=64)
        assert np.array_equal(got, want)
        assert got.size == want.size

    def test_lrp_mode(self):
        symbols = np.array([1.0, 1.0, -1.0])
        got = build_pulse_train(symbols, LRP_CONFIG)
        assert np.array_equal(got, _reference_pulse_train(symbols, LRP_CONFIG))


class TestToaValidation:
    def test_empty_template_gets_its_own_error(self):
        with pytest.raises(ValueError, match="template must be non-empty"):
            cross_correlation(np.ones(16), np.array([]))

    def test_short_received_keeps_the_original_error(self):
        with pytest.raises(ValueError, match="received signal shorter than template"):
            cross_correlation(np.ones(4), np.ones(16))

    def test_valid_inputs_still_correlate(self):
        out = cross_correlation(np.ones(8), np.ones(4))
        assert out.size == 5


class TestBackSearchEquivalence:
    @staticmethod
    def _reference_first_path(correlation, back_search_window=64,
                              threshold_ratio=0.4):
        """The pre-vectorization index loop, kept as the oracle."""
        magnitude = np.abs(np.asarray(correlation, dtype=float))
        peak = int(np.argmax(magnitude))
        threshold = threshold_ratio * magnitude[peak]
        start = max(0, peak - back_search_window)
        toa = peak
        for idx in range(start, peak):
            if magnitude[idx] >= threshold:
                toa = idx
                break
        return toa, peak

    @pytest.mark.parametrize("seed", range(8))
    def test_random_correlations(self, seed):
        rng = np.random.default_rng(seed)
        corr = rng.normal(0.0, 1.0, size=2000)
        corr[int(rng.integers(100, 1900))] = 40.0
        for window, ratio in ((64, 0.4), (16, 0.9), (0, 0.4), (2000, 0.1)):
            estimate = first_path_toa(corr, back_search_window=window,
                                      threshold_ratio=ratio)
            toa, peak = self._reference_first_path(corr, window, ratio)
            assert (estimate.toa_sample, estimate.peak_sample) == (toa, peak)

    def test_peak_at_index_zero(self):
        corr = np.zeros(64)
        corr[0] = 5.0
        estimate = first_path_toa(corr)
        assert estimate.toa_sample == estimate.peak_sample == 0

    def test_early_path_detected(self):
        corr = np.zeros(256)
        corr[200] = 10.0
        corr[180] = 5.0
        estimate = first_path_toa(corr, threshold_ratio=0.4)
        assert estimate.toa_sample == 180
        assert estimate.used_early_path


class TestBatchedRanging:
    @pytest.mark.parametrize("drift,extra", [(0.0, 0.0), (20.0, 0.0),
                                             (-35.0, 3.0), (50.0, 12.5)])
    def test_ss_twr_batch_equals_scalar(self, drift, extra):
        distances = np.linspace(0.0, 120.0, 97)
        batch = ss_twr_batch(distances, responder_drift_ppm=drift,
                             extra_path_m=extra)
        scalar = np.array([ss_twr(float(d), responder_drift_ppm=drift,
                                  extra_path_m=extra).measured_distance_m
                           for d in distances])
        assert np.array_equal(batch.measured_distance_m, scalar)

    @pytest.mark.parametrize("drift,extra", [(0.0, 0.0), (20.0, 0.0),
                                             (-35.0, 3.0), (50.0, 12.5)])
    def test_ds_twr_batch_equals_scalar(self, drift, extra):
        distances = np.linspace(0.0, 120.0, 97)
        batch = ds_twr_batch(distances, responder_drift_ppm=drift,
                             extra_path_m=extra)
        scalar = np.array([ds_twr(float(d), responder_drift_ppm=drift,
                                  extra_path_m=extra).measured_distance_m
                           for d in distances])
        assert np.array_equal(batch.measured_distance_m, scalar)

    def test_per_exchange_extra_path_broadcast(self):
        distances = np.array([10.0, 20.0, 30.0])
        extras = np.array([0.0, 5.0, 50.0])
        batch = ds_twr_batch(distances, extra_path_m=extras)
        for i in range(3):
            want = ds_twr(float(distances[i]),
                          extra_path_m=float(extras[i])).measured_distance_m
            assert batch.measured_distance_m[i] == want

    def test_batch_indexing_yields_scalar_measurements(self):
        batch = ss_twr_batch(np.array([5.0, 15.0]))
        assert len(batch) == 2
        measurement = batch[1]
        assert measurement.method == "SS-TWR"
        assert measurement.true_distance_m == 15.0
        assert measurement.measured_distance_m == batch.measured_distance_m[1]
        assert measurement.error_m == pytest.approx(batch.error_m[1])

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            ss_twr_batch(np.array([1.0, -2.0]))
        with pytest.raises(ValueError):
            ds_twr_batch(np.array([1.0]), extra_path_m=-1.0)


class TestPkesBatch:
    @pytest.mark.parametrize("policy", ["lf-rssi", "uwb-hrp", "uwb-lrp"])
    @pytest.mark.parametrize("relayed", [False, True])
    def test_batch_equals_scalar_map(self, policy, relayed):
        from repro.phy.attacks import RelayAttack
        from repro.phy.pkes import PkesSystem

        relay = RelayAttack(cable_length_m=30.0) if relayed else None
        system = PkesSystem(policy=policy)
        distances = np.array([0.5, 1.5, 2.5, 10.0, 40.0])
        batch = system.try_unlock_batch(distances, relay=relay)
        scalar = [system.try_unlock(float(d), relay=relay) for d in distances]
        assert [a.unlocked for a in batch] == [a.unlocked for a in scalar]
        for got, want in zip(batch, scalar):
            assert got.policy == want.policy
            assert got.relayed == want.relayed
            assert got.true_fob_distance_m == want.true_fob_distance_m
            assert got.perceived_distance_m == want.perceived_distance_m

    def test_batch_validates_inputs(self):
        from repro.phy.pkes import PkesSystem

        system = PkesSystem()
        with pytest.raises(ValueError):
            system.try_unlock_batch(np.array([-1.0]))
        with pytest.raises(ValueError):
            system.try_unlock_batch(np.array([[1.0]]))
