"""Tests for V-Range-style 5G OFDM secure ranging ([12])."""

import pytest

from repro.phy.vrange import CpInjectionAttack, OfdmConfig, VRangeSession

KEY = b"\xE1" * 16


class TestHonestRanging:
    @pytest.mark.parametrize("distance", [50.0, 300.0, 1000.0])
    def test_accurate_and_accepted(self, distance):
        session = VRangeSession(KEY)
        outcome = session.measure(distance, seed_label=f"h{distance}")
        assert outcome.accepted
        assert abs(outcome.error_m) < 3.0  # ~1 sample at 122.88 MS/s

    def test_integrity_metrics_high(self):
        outcome = VRangeSession(KEY).measure(300.0, seed_label="metrics")
        assert outcome.normalized_correlation > 0.8
        assert outcome.cp_consistency > 0.8

    def test_fresh_prs_per_measurement(self):
        session = VRangeSession(KEY)
        a = session._tx_symbol()
        b = session._tx_symbol()
        import numpy as np

        assert not np.allclose(a, b)

    def test_low_snr_still_works(self):
        outcome = VRangeSession(KEY).measure(300.0, snr_db=5.0, seed_label="lowsnr")
        assert outcome.accepted
        assert abs(outcome.error_m) < 5.0


class TestCpInjection:
    def _attack(self, i):
        return CpInjectionAttack(advance_m=30.0, seed_label=f"atk{i}")

    def test_tolerant_receiver_reduced(self):
        hits = 0
        for i in range(6):
            session = VRangeSession(KEY, secure=False)
            outcome = session.measure(300.0, attack=self._attack(i),
                                      seed_label=f"tol{i}")
            hits += outcome.reduced
        assert hits >= 5

    def test_secure_receiver_rejects(self):
        for i in range(6):
            session = VRangeSession(KEY, secure=True)
            outcome = session.measure(300.0, attack=self._attack(i),
                                      seed_label=f"tol{i}")
            assert not (outcome.reduced and outcome.accepted)

    def test_attack_breaks_both_integrity_metrics(self):
        session = VRangeSession(KEY, secure=True)
        outcome = session.measure(300.0, attack=self._attack(0), seed_label="tol0")
        if outcome.reduced:
            assert outcome.normalized_correlation < 0.35
            assert outcome.cp_consistency < 0.5

    def test_weak_attacker_fails_even_tolerant(self):
        session = VRangeSession(KEY, secure=False)
        attack = CpInjectionAttack(advance_m=30.0, power=1.0, seed_label="weak")
        outcome = session.measure(300.0, attack=attack, seed_label="weak")
        assert not outcome.reduced


class TestValidation:
    def test_config_bounds(self):
        with pytest.raises(ValueError):
            OfdmConfig(n_subcarriers=8)
        with pytest.raises(ValueError):
            OfdmConfig(cp_len=0)
        with pytest.raises(ValueError):
            OfdmConfig(n_subcarriers=64, cp_len=64)

    def test_attack_bounds(self):
        with pytest.raises(ValueError):
            CpInjectionAttack(advance_m=0.0)
        with pytest.raises(ValueError):
            CpInjectionAttack(advance_m=1.0, power=0.0)

    def test_negative_distance(self):
        with pytest.raises(ValueError):
            VRangeSession(KEY).measure(-1.0)
