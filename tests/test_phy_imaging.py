"""Tests for the camera image-pipeline security model ([49])."""

import pytest

from repro.phy.imaging import (
    IMAGE_ATTACKS,
    IMAGE_DEFENSES,
    PIPELINE_STAGES,
    ImagePipeline,
    PipelineAttack,
    PipelineDefense,
)


class TestCatalogs:
    def test_every_stage_has_attacks(self):
        stages_with_attacks = {a.stage for a in IMAGE_ATTACKS}
        assert stages_with_attacks == set(PIPELINE_STAGES)

    def test_every_attack_has_a_defense(self):
        pipeline = ImagePipeline()
        all_defenses = set(pipeline.defenses)
        assert pipeline.residual_attacks(all_defenses) == []

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            PipelineAttack("x", "quantum-stage", "")
        with pytest.raises(ValueError):
            PipelineDefense("x", "quantum-stage", frozenset())

    def test_defense_references_validated(self):
        with pytest.raises(ValueError):
            ImagePipeline(defenses=IMAGE_DEFENSES + (
                PipelineDefense("bogus", "optics", frozenset({"nonexistent"})),))


class TestCoverage:
    def test_no_defenses_zero_coverage(self):
        pipeline = ImagePipeline()
        assert pipeline.coverage(set()) == 0.0
        assert len(pipeline.residual_attacks(set())) == len(IMAGE_ATTACKS)

    def test_coverage_monotone_in_defenses(self):
        pipeline = ImagePipeline()
        partial = {"optical-filtering", "authenticated-frame-transport"}
        assert pipeline.coverage(partial) > 0.0
        assert pipeline.coverage(partial | {"adversarial-training"}) > pipeline.coverage(partial)

    def test_transport_security_alone_leaves_sensor_attacks(self):
        # The §VIII synergy point at sensor scale: securing the link does
        # not secure the optics.
        pipeline = ImagePipeline()
        residual = pipeline.residual_by_stage({"authenticated-frame-transport"})
        assert residual["transport"] == 0
        assert residual["optics"] > 0
        assert residual["perception"] > 0

    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError):
            ImagePipeline().coverage({"magic-shield"})


class TestCheapestCoverage:
    def test_cheapest_set_is_full_coverage(self):
        pipeline = ImagePipeline()
        chosen = pipeline.cheapest_full_coverage()
        assert chosen is not None
        assert pipeline.residual_attacks(chosen) == []

    def test_cheapest_set_not_strictly_dominated(self):
        pipeline = ImagePipeline()
        chosen = pipeline.cheapest_full_coverage()
        cost = sum(pipeline.defenses[n].cost for n in chosen)
        # Dropping any single defense must break coverage (minimality).
        for name in chosen:
            assert pipeline.residual_attacks(chosen - {name})
        assert cost <= sum(d.cost for d in IMAGE_DEFENSES)
