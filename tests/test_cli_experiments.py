"""Tests for the experiment registry and the `python -m repro` CLI."""

import subprocess
import sys

import pytest

from repro.experiments import EXPERIMENTS, benchmarks_dir, find


class TestRegistry:
    def test_ids_unique(self):
        ids = [e.exp_id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_every_bench_file_exists(self):
        directory = benchmarks_dir()
        for experiment in EXPERIMENTS:
            assert (directory / experiment.bench_file).is_file(), experiment.exp_id

    def test_every_bench_file_registered(self):
        registered = {e.bench_file for e in EXPERIMENTS}
        on_disk = {p.name for p in benchmarks_dir().glob("bench_*.py")}
        assert on_disk == registered

    def test_find_case_insensitive(self):
        assert find("fig2").exp_id == "FIG2"
        with pytest.raises(KeyError):
            find("FIG99")

    def test_paper_figures_all_covered(self):
        artifacts = {e.paper_artifact for e in EXPERIMENTS}
        for figure in [f"Fig. {i}" for i in range(1, 10)] + ["Table I"]:
            assert figure in artifacts, figure


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, timeout=120,
        )

    def test_list(self):
        result = self._run("list")
        assert result.returncode == 0
        for exp_id in ("FIG1", "TAB1", "EXT-7"):
            assert exp_id in result.stdout

    def test_run_unknown_id(self):
        result = self._run("run", "FIG99")
        assert result.returncode == 2
        assert "unknown experiment" in result.stderr

    def test_run_single_experiment(self):
        result = self._run("run", "FIG1")
        assert result.returncode == 0
        assert "Fig. 1" in result.stdout
