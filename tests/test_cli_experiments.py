"""Tests for the experiment registry and the `python -m repro` CLI."""

import json
import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.experiments import EXPERIMENTS, benchmarks_dir, find
from repro.runner import validate_sweep_dict


class TestRegistry:
    def test_ids_unique(self):
        ids = [e.exp_id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_every_bench_file_exists(self):
        directory = benchmarks_dir()
        for experiment in EXPERIMENTS:
            assert (directory / experiment.bench_file).is_file(), experiment.exp_id

    def test_every_bench_file_registered(self):
        registered = {e.bench_file for e in EXPERIMENTS}
        on_disk = {p.name for p in benchmarks_dir().glob("bench_*.py")}
        assert on_disk == registered

    def test_find_case_insensitive(self):
        assert find("fig2").exp_id == "FIG2"
        with pytest.raises(KeyError):
            find("FIG99")

    def test_paper_figures_all_covered(self):
        artifacts = {e.paper_artifact for e in EXPERIMENTS}
        for figure in [f"Fig. {i}" for i in range(1, 10)] + ["Table I"]:
            assert figure in artifacts, figure


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, timeout=120,
        )

    def test_list(self):
        result = self._run("list")
        assert result.returncode == 0
        for exp_id in ("FIG1", "TAB1", "EXT-7"):
            assert exp_id in result.stdout

    def test_run_unknown_id(self):
        result = self._run("run", "FIG99")
        assert result.returncode == 2
        assert "unknown experiment" in result.stderr

    def test_run_single_experiment(self, tmp_path):
        result = self._run("run", "FIG1", "--cache-dir", str(tmp_path))
        assert result.returncode == 0
        assert "Fig. 1" in result.stdout
        assert "1 passed" in result.stdout

    def test_run_lowercase_id_matches(self, tmp_path):
        result = self._run("run", "fig2", "--cache-dir", str(tmp_path))
        assert result.returncode == 0
        assert "FIG2" in result.stdout


class TestRunnerCli:
    """The sweep flags (--jobs/--no-cache/--json), in-process for speed."""

    def _run(self, capsys, *argv):
        code = main(["run", *argv])
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_unknown_id_with_flags_is_usage_error(self, capsys, tmp_path):
        code, _, err = self._run(capsys, "FIG99", "--jobs", "2",
                                 "--cache-dir", str(tmp_path))
        assert code == 2
        assert "unknown experiment" in err

    def test_bad_jobs_rejected(self, capsys, tmp_path):
        code, _, err = self._run(capsys, "FIG1", "--jobs", "0",
                                 "--cache-dir", str(tmp_path))
        assert code == 2
        assert "--jobs" in err

    def test_json_sweep_validates_then_warm_cache_hits(self, capsys,
                                                       tmp_path):
        code, out, _ = self._run(capsys, "FIG1", "--jobs", "2", "--json",
                                 "--cache-dir", str(tmp_path))
        assert code == 0
        document = json.loads(out)
        validate_sweep_dict(document)
        assert document["sweep"]["jobs"] == 2
        entry = document["experiments"][0]
        assert entry["id"] == "FIG1" and entry["status"] == "passed"
        assert any(a["title"].startswith("Fig. 1")
                   for a in entry["artifacts"])

        code, out, _ = self._run(capsys, "FIG1", "--json",
                                 "--cache-dir", str(tmp_path))
        assert code == 0
        warm = json.loads(out)
        validate_sweep_dict(warm)
        assert warm["experiments"][0]["status"] == "cached"
        assert warm["summary"]["cached"] == 1

        # --no-cache forces a re-run despite the warm cache
        code, out, _ = self._run(capsys, "FIG1", "--json", "--no-cache",
                                 "--cache-dir", str(tmp_path))
        assert code == 0
        fresh = json.loads(out)
        assert fresh["experiments"][0]["status"] == "passed"
        assert fresh["sweep"]["cache"] is False

    def test_multiple_ids_deduplicated(self, capsys, tmp_path):
        code, out, _ = self._run(capsys, "FIG1", "fig1", "--json",
                                 "--cache-dir", str(tmp_path))
        assert code == 0
        document = json.loads(out)
        assert [e["id"] for e in document["experiments"]] == ["FIG1"]
