"""Tests for the Monte-Carlo statistics helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import proportions_differ, wilson_interval
from repro.sos.cascade import CascadeSimulator
from repro.sos.maas import build_maas_sos


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high

    def test_behaved_at_extremes(self):
        low0, high0 = wilson_interval(0, 50)
        assert low0 == 0.0 and high0 > 0.0
        low1, high1 = wilson_interval(50, 50)
        assert low1 < 1.0 and high1 == 1.0

    def test_narrows_with_more_trials(self):
        narrow = wilson_interval(800, 1000)
        wide = wilson_interval(8, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_widens_with_confidence(self):
        ci95 = wilson_interval(50, 100, confidence=0.95)
        ci99 = wilson_interval(50, 100, confidence=0.99)
        assert (ci99[1] - ci99[0]) > (ci95[1] - ci95[0])

    @settings(max_examples=40)
    @given(st.integers(min_value=1, max_value=500), st.data())
    def test_bounds_property(self, trials, data):
        successes = data.draw(st.integers(min_value=0, max_value=trials))
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)


class TestProportionsDiffer:
    def test_clear_difference_detected(self):
        assert proportions_differ(90, 100, 10, 100)

    def test_same_rates_not_flagged(self):
        assert not proportions_differ(50, 100, 52, 100)

    def test_small_samples_inconclusive(self):
        # 3/4 vs 1/4 looks different but the evidence is thin.
        assert not proportions_differ(3, 4, 1, 4)

    def test_degenerate_equal(self):
        assert not proportions_differ(0, 10, 0, 10)
        assert proportions_differ(10, 10, 0, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            proportions_differ(5, 4, 1, 10)


class TestCascadeInterval:
    def test_interval_brackets_estimate(self):
        sim = CascadeSimulator(build_maas_sos(), seed_label="stats")
        result = sim.run("cloud-backend", trials=200)
        low, high = result.critical_hit_interval()
        assert low <= result.p_safety_critical_hit <= high
        assert high - low < 0.2  # 200 trials give a usable interval

    def test_secured_vs_open_statistically_distinct(self):
        open_sim = CascadeSimulator(build_maas_sos(), seed_label="stats2")
        sec_sim = CascadeSimulator(build_maas_sos(secured_interfaces=True),
                                   seed_label="stats2")
        trials = 300
        open_result = open_sim.run("maas-platform", trials=trials)
        sec_result = sec_sim.run("maas-platform", trials=trials)
        assert proportions_differ(
            round(open_result.p_safety_critical_hit * trials), trials,
            round(sec_result.p_safety_critical_hit * trials), trials)
