"""Tests for network-layer attacks and intrusion detection."""

import pytest

from repro.core.events import Simulator
from repro.ivn.attacks import BusFloodAttacker, MasqueradeAttacker
from repro.ivn.bus import BusNode, CanBus
from repro.ivn.frames import CanFrame
from repro.ivn.ids import FrequencyIds, OnsetIds, SenderFingerprintIds


def _bus():
    sim = Simulator()
    bus = CanBus(sim)
    for name in ("engine", "brake", "compromised"):
        bus.attach(BusNode(name))
    return sim, bus


class TestMasquerade:
    def test_bus_accepts_spoofed_id(self):
        # The core CAN weakness: the bus delivers the spoofed frame just
        # like the real one.
        sim, bus = _bus()
        attacker = MasqueradeAttacker("compromised", victim_id=0x100)
        attacker.inject(bus, b"\xde\xad")
        sim.run()
        received = bus.nodes["brake"].received
        assert len(received) == 1
        assert received[0].frame.can_id == 0x100
        assert received[0].sender == "compromised"

    def test_injected_count(self):
        sim, bus = _bus()
        attacker = MasqueradeAttacker("compromised", victim_id=0x100)
        attacker.inject(bus, b"\x00", count=5)
        sim.run()
        assert attacker.injected == 5


class TestBusFlood:
    def test_flood_starves_legitimate_sender(self):
        sim, bus = _bus()
        flooder = BusFloodAttacker("compromised")
        flooder.flood(bus, 50)
        bus.send("engine", CanFrame(0x100, b"\x01" * 8))
        sim.run()
        # The legitimate frame is delivered last despite early queueing.
        assert bus.delivered[-1].sender == "engine"
        legit = bus.delivered[-1]
        assert legit.queueing_delay_s > 40 * 111 / 500e3  # ~50 frame times


class TestFrequencyIds:
    def _trained(self, period=0.01):
        ids = FrequencyIds(min_training=10)
        for i in range(30):
            ids.train(0x100, i * period)
        return ids

    def test_normal_traffic_no_alert(self):
        ids = self._trained()
        assert ids.monitor(0x100, 30 * 0.01) is None
        assert ids.monitor(0x100, 31 * 0.01) is None

    def test_injection_detected(self):
        ids = self._trained()
        assert ids.monitor(0x100, 30 * 0.01) is None
        alert = ids.monitor(0x100, 30 * 0.01 + 0.0001)  # 100x too early
        assert alert is not None
        assert alert.detector == "frequency"

    def test_unknown_id_ignored(self):
        ids = self._trained()
        assert ids.monitor(0x999, 1.0) is None

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            FrequencyIds(sigma_threshold=0)


class TestFingerprintIds:
    def _ids(self):
        ids = SenderFingerprintIds(noise_sigma=0.02, seed_label="t-easi")
        ids.register_node("engine", 1.0)
        ids.register_node("brake", 2.0)
        ids.register_node("compromised", 3.0)
        ids.register_id(0x100, "engine")
        return ids

    def test_legitimate_sender_passes(self):
        ids = self._ids()
        for i in range(10):
            assert ids.observe(0x100, "engine", float(i)) is None

    def test_masquerade_flagged(self):
        ids = self._ids()
        alert = ids.observe(0x100, "compromised", 1.0)
        assert alert is not None
        assert "compromised" in alert.reason

    def test_unregistered_id_ignored(self):
        ids = self._ids()
        assert ids.observe(0x200, "compromised", 1.0) is None

    def test_register_requires_known_node(self):
        ids = self._ids()
        with pytest.raises(KeyError):
            ids.register_id(0x300, "ghost")


class TestOnsetIds:
    def test_monotone_counter_no_alert(self):
        ids = OnsetIds()
        for i in range(1, 20):
            assert ids.observe(0x100, bytes([i]), float(i)) is None

    def test_replayed_counter_flagged(self):
        ids = OnsetIds()
        ids.observe(0x100, bytes([10]), 0.0)
        ids.observe(0x100, bytes([11]), 1.0)
        alert = ids.observe(0x100, bytes([10]), 2.0)  # replay of old frame
        assert alert is not None

    def test_wraparound_tolerated(self):
        ids = OnsetIds()
        ids.observe(0x100, bytes([254]), 0.0)
        assert ids.observe(0x100, bytes([1]), 1.0) is None  # 8-bit wrap

    def test_empty_payload_ignored(self):
        ids = OnsetIds()
        assert ids.observe(0x100, b"", 0.0) is None
