"""SARIF 2.1.0 export: golden file, structural validation, suppressions."""

import json
import pathlib

import pytest

from repro import __version__
from repro.core.entities import Component, SystemModel
from repro.core.layers import Layer
from repro.lint import (AnalysisTarget, Baseline, Linter, SchemaError,
                        Severity, rules_by_id)
from repro.lint.sarif import (SARIF_SCHEMA_URI, SARIF_VERSION, to_sarif_dict,
                              validate_sarif_dict)

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_sarif.json"


def exposed_brake_target():
    model = SystemModel("golden")
    model.add_component(Component("ecu", Layer.NETWORK, criticality=5,
                                  exposed=True))
    return AnalysisTarget(name="golden", model=model)


def golden_linter():
    return Linter([rules_by_id()["SEC005"]])


def make_sarif(baseline=None):
    linter = golden_linter()
    report = linter.run(exposed_brake_target(), baseline=baseline)
    return to_sarif_dict(report, linter.enabled_rules())


class TestGoldenFile:
    def test_matches_golden_file(self):
        """The emitted log must byte-match the checked-in golden file
        (modulo the package version, normalized on both sides)."""
        document = make_sarif()
        document["runs"][0]["tool"]["driver"]["version"] = "<version>"
        golden = json.loads(GOLDEN_PATH.read_text())
        assert document == golden

    def test_golden_file_validates(self):
        document = json.loads(GOLDEN_PATH.read_text())
        document["runs"][0]["tool"]["driver"]["version"] = __version__
        validate_sarif_dict(document)


class TestShape:
    def test_header_pins_sarif_2_1_0(self):
        document = make_sarif()
        assert document["version"] == SARIF_VERSION == "2.1.0"
        assert document["$schema"] == SARIF_SCHEMA_URI
        validate_sarif_dict(document)

    def test_severity_maps_to_sarif_levels(self):
        document = make_sarif()
        (result,) = document["runs"][0]["results"]
        assert result["level"] == "error"  # CRITICAL -> error
        assert result["properties"]["severity"] == "critical"

    def test_subject_becomes_logical_location(self):
        document = make_sarif()
        (result,) = document["runs"][0]["results"]
        logical = result["locations"][0]["logicalLocations"][0]
        assert logical["name"] == "ecu"

    def test_partial_fingerprint_matches_baseline_fingerprint(self):
        linter = golden_linter()
        report = linter.run(exposed_brake_target())
        document = to_sarif_dict(report, linter.enabled_rules())
        (result,) = document["runs"][0]["results"]
        assert result["partialFingerprints"]["seclint/v1"] \
            == report.findings[0].fingerprint

    def test_rule_index_points_into_driver_rules(self):
        document = make_sarif()
        (result,) = document["runs"][0]["results"]
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_baselined_findings_get_suppressions(self):
        linter = golden_linter()
        baseline = Baseline.from_report(
            linter.run(exposed_brake_target()), comment="accepted")
        document = make_sarif(baseline=baseline)
        validate_sarif_dict(document)
        (result,) = document["runs"][0]["results"]
        assert result["suppressions"][0]["kind"] == "external"

    def test_every_severity_level_is_valid_sarif(self):
        from repro.lint.sarif import _LEVELS

        assert set(_LEVELS) == set(Severity)
        assert set(_LEVELS.values()) <= {"none", "note", "warning", "error"}


class TestValidation:
    def test_wrong_version_rejected(self):
        document = make_sarif()
        document["version"] = "2.0.0"
        with pytest.raises(SchemaError, match="version"):
            validate_sarif_dict(document)

    def test_missing_runs_rejected(self):
        document = make_sarif()
        document["runs"] = []
        with pytest.raises(SchemaError, match="one run"):
            validate_sarif_dict(document)

    def test_unknown_rule_id_in_result_rejected(self):
        document = make_sarif()
        document["runs"][0]["results"][0]["ruleId"] = "NOPE999"
        with pytest.raises(SchemaError, match="not in driver.rules"):
            validate_sarif_dict(document)

    def test_bad_level_rejected(self):
        document = make_sarif()
        document["runs"][0]["results"][0]["level"] = "catastrophic"
        with pytest.raises(SchemaError, match="bad level"):
            validate_sarif_dict(document)

    def test_missing_fingerprints_rejected(self):
        document = make_sarif()
        del document["runs"][0]["results"][0]["partialFingerprints"]
        with pytest.raises(SchemaError, match="partialFingerprints"):
            validate_sarif_dict(document)

    def test_duplicate_rule_ids_rejected(self):
        document = make_sarif()
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        rules.append(dict(rules[0]))
        with pytest.raises(SchemaError, match="duplicate"):
            validate_sarif_dict(document)
