"""Tests for telemetry generation, privacy analysis, and surface minimization."""

import pytest

from repro.datalayer.breach import build_cariad_service
from repro.datalayer.privacy import (
    infer_home_locations,
    location_k_anonymity,
    reidentification_rate,
)
from repro.datalayer.surface import FeatureSurfaceAnalyzer
from repro.datalayer.telemetry import FleetTelemetryGenerator


@pytest.fixture(scope="module")
def fleet():
    return FleetTelemetryGenerator(30, seed_label="privacy-test")


@pytest.fixture(scope="module")
def records(fleet):
    return fleet.generate(days=14)


class TestTelemetry:
    def test_record_count(self, fleet, records):
        assert len(records) == 30 * 14 * 8

    def test_night_samples_at_home(self, fleet, records):
        vehicle = fleet.vehicles[0]
        night = [r for r in records
                 if r.vin == vehicle.vin and (r.timestamp % 86400) / 3600 < 7]
        assert night
        for record in night:
            assert abs(record.lat - vehicle.home[0]) < 0.01
            assert abs(record.lon - vehicle.home[1]) < 0.01

    def test_deterministic(self):
        a = FleetTelemetryGenerator(5, seed_label="d").generate(days=2)
        b = FleetTelemetryGenerator(5, seed_label="d").generate(days=2)
        assert a == b

    def test_anonymized_strips_pii(self, records):
        anon = records[0].anonymized()
        assert anon.owner_name == "" and anon.owner_email == ""
        assert anon.vin != records[0].vin
        assert anon.lat == records[0].lat

    def test_coarsened_rounds_location(self, records):
        coarse = records[0].coarsened(1)
        assert coarse.lat == round(records[0].lat, 1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FleetTelemetryGenerator(0)
        with pytest.raises(ValueError):
            FleetTelemetryGenerator(1, sensitive_fraction=2.0)
        with pytest.raises(ValueError):
            FleetTelemetryGenerator(1).generate(days=0)


class TestPrivacy:
    def test_home_inference_recovers_true_homes(self, fleet, records):
        homes = infer_home_locations(records)
        assert len(homes) == 30
        for vehicle in fleet.vehicles:
            inferred = homes[vehicle.vin]
            assert abs(inferred[0] - vehicle.home[0]) < 0.005
            assert abs(inferred[1] - vehicle.home[1]) < 0.005

    def test_anonymization_does_not_stop_reidentification(self, fleet, records):
        # The paper's point: geolocation *is* the identifier.
        anonymized = [r.anonymized() for r in records]
        rate = reidentification_rate(anonymized, fleet.vehicles)
        assert rate > 0.9

    def test_coarsening_reduces_reidentification(self, fleet, records):
        anonymized = [r.anonymized() for r in records]
        precise = reidentification_rate(anonymized, fleet.vehicles)
        coarse_records = [r.anonymized().coarsened(1) for r in records]
        coarse = reidentification_rate(coarse_records, fleet.vehicles,
                                       cell_decimals=1)
        assert coarse < precise

    def test_k_anonymity_improves_with_larger_cells(self, records):
        fine = location_k_anonymity(records, cell_decimals=3)
        coarse = location_k_anonymity(records, cell_decimals=0)
        assert fine["fraction_k1"] > coarse["fraction_k1"]
        assert coarse["median_k"] >= fine["median_k"]

    def test_empty_inputs(self):
        assert infer_home_locations([]) == {}
        assert location_k_anonymity([])["min_k"] == 0
        with pytest.raises(ValueError):
            reidentification_rate([], [])


class TestSurfaceMinimization:
    @pytest.fixture()
    def analyzer(self):
        service, _ = build_cariad_service(n_vehicles=3, days=1)
        return FeatureSurfaceAnalyzer(service)

    def test_full_feature_set_is_vulnerable(self, analyzer):
        report = analyzer.analyze({"core", "metrics", "debug"})
        assert report.kill_chain_viable
        assert report.debug_endpoints == 2

    def test_removing_debug_kills_the_chain(self, analyzer):
        report = analyzer.analyze({"core", "metrics"})
        assert not report.kill_chain_viable
        assert report.debug_endpoints == 0

    def test_surface_monotone_in_features(self, analyzer):
        small = analyzer.analyze({"core"})
        large = analyzer.analyze({"core", "metrics", "debug"})
        assert large.exposed_endpoints > small.exposed_endpoints
        assert large.kill_chain_depth >= small.kill_chain_depth

    def test_sweep_covers_all_subsets(self, analyzer):
        reports = analyzer.sweep()
        assert len(reports) == 2 ** len(analyzer.all_features)
        viable = [r for r in reports if r.kill_chain_viable]
        # Exactly the subsets containing "debug" are viable.
        assert all("debug" in r.features for r in viable)

    def test_minimal_safe_surface(self, analyzer):
        report = analyzer.minimal_safe_surface({"core"})
        assert report is not None
        assert not report.kill_chain_viable
        assert "core" in report.features

    def test_unknown_feature_rejected(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.analyze({"warp-drive"})

    def test_analyze_restores_service_state(self, analyzer):
        before = set(analyzer.service.enabled_features)
        analyzer.analyze({"core"})
        assert analyzer.service.enabled_features == before


class TestTrajectoryUniqueness:
    def test_uniqueness_monotone_in_points(self, records):
        from repro.datalayer.privacy import trajectory_uniqueness

        u1 = trajectory_uniqueness(records, n_points=1, trials_per_vehicle=5)
        u4 = trajectory_uniqueness(records, n_points=4, trials_per_vehicle=5)
        assert 0.0 <= u1 <= u4 <= 1.0

    def test_few_points_suffice(self, records):
        # The de-Montjoye result reproduced on the synthetic fleet:
        # a handful of coarse points identifies nearly everyone.
        from repro.datalayer.privacy import trajectory_uniqueness

        assert trajectory_uniqueness(records, n_points=4,
                                     trials_per_vehicle=5) > 0.9

    def test_coarsening_reduces_uniqueness(self, records):
        from repro.datalayer.privacy import trajectory_uniqueness

        fine = trajectory_uniqueness(records, n_points=2, trials_per_vehicle=5)
        coarse = trajectory_uniqueness(
            [r.coarsened(1) for r in records], n_points=2,
            cell_decimals=1, trials_per_vehicle=5)
        assert coarse <= fine

    def test_empty_and_validation(self):
        from repro.datalayer.privacy import trajectory_uniqueness

        assert trajectory_uniqueness([]) == 0.0
        import pytest

        with pytest.raises(ValueError):
            trajectory_uniqueness([], n_points=0)


class TestGeoIndistinguishability:
    def test_noise_reduces_reidentification(self, fleet, records):
        from repro.datalayer.privacy import geo_indistinguishable, reidentification_rate

        anonymized = [r.anonymized() for r in records]
        baseline = reidentification_rate(anonymized, fleet.vehicles)
        noisy = geo_indistinguishable(anonymized, epsilon_per_km=0.5)
        assert reidentification_rate(noisy, fleet.vehicles) < baseline

    def test_epsilon_controls_privacy_utility_tradeoff(self, records):
        from repro.datalayer.privacy import geo_indistinguishable, utility_loss_m

        strong = geo_indistinguishable(records, epsilon_per_km=0.5, seed=1)
        weak = geo_indistinguishable(records, epsilon_per_km=8.0, seed=1)
        assert utility_loss_m(records, strong) > utility_loss_m(records, weak)

    def test_pii_and_timestamps_preserved(self, records):
        from repro.datalayer.privacy import geo_indistinguishable

        noisy = geo_indistinguishable(records[:5])
        for original, perturbed in zip(records[:5], noisy):
            assert perturbed.vin == original.vin
            assert perturbed.timestamp == original.timestamp
            assert (perturbed.lat, perturbed.lon) != (original.lat, original.lon)

    def test_validation(self):
        from repro.datalayer.privacy import geo_indistinguishable, utility_loss_m

        with pytest.raises(ValueError):
            geo_indistinguishable([], epsilon_per_km=0.0)
        with pytest.raises(ValueError):
            utility_loss_m([], [None])
        assert utility_loss_m([], []) == 0.0
