"""Tests for the CAN bus, 10BASE-T1S PLCA, Ethernet links, and topology."""

import pytest

from repro.core.events import Simulator
from repro.ivn.bus import BusNode, CanBus
from repro.ivn.ethernet import EthernetLink, ZonalSwitch
from repro.ivn.frames import CanFdFrame, CanFrame, EthernetFrame
from repro.ivn.t1s import PlcaConfig, T1sSegment
from repro.ivn.topology import Endpoint, Zone, ZonalArchitecture


class TestCanBus:
    def _bus(self):
        sim = Simulator()
        bus = CanBus(sim)
        for name in ("engine", "brake", "attacker"):
            bus.attach(BusNode(name))
        return sim, bus

    def test_broadcast_to_all_but_sender(self):
        sim, bus = self._bus()
        bus.send("engine", CanFrame(0x100, b"\x01"))
        sim.run()
        assert len(bus.nodes["brake"].received) == 1
        assert len(bus.nodes["attacker"].received) == 1
        assert len(bus.nodes["engine"].received) == 0

    def test_arbitration_lowest_id_wins(self):
        sim, bus = self._bus()
        # Occupy the bus, then queue two contenders.
        bus.send("engine", CanFrame(0x300, b"\x00"))
        bus.send("brake", CanFrame(0x200, b"\x00"))
        bus.send("engine", CanFrame(0x100, b"\x00"))
        sim.run()
        ids = [r.frame.can_id for r in bus.delivered]
        assert ids == [0x300, 0x100, 0x200]

    def test_latency_includes_queueing(self):
        sim, bus = self._bus()
        bus.send("engine", CanFrame(0x100, b"\x00" * 8))
        bus.send("brake", CanFrame(0x200, b"\x00" * 8))
        sim.run()
        first, second = bus.delivered
        assert first.queueing_delay_s == 0.0
        assert second.queueing_delay_s > 0.0
        assert second.latency_s > first.latency_s

    def test_fd_frames_supported(self):
        sim, bus = self._bus()
        bus.send("engine", CanFdFrame(0x100, b"\x00" * 64))
        sim.run()
        assert len(bus.delivered) == 1

    def test_unattached_sender_rejected(self):
        _, bus = self._bus()
        with pytest.raises(KeyError):
            bus.send("ghost", CanFrame(0x1, b""))

    def test_duplicate_node_rejected(self):
        _, bus = self._bus()
        with pytest.raises(ValueError):
            bus.attach(BusNode("engine"))

    def test_utilization_reflects_load(self):
        sim, bus = self._bus()
        for _ in range(10):
            bus.send("engine", CanFrame(0x100, b"\x00" * 8))
        sim.run()
        assert bus.utilization_window > 0.9  # back-to-back frames


class TestT1s:
    def _segment(self):
        sim = Simulator()
        seg = T1sSegment(sim)
        for name in ("ecu-a", "ecu-b", "ecu-c"):
            seg.attach(name)
        return sim, seg

    def test_frame_delivered_to_all_others(self):
        sim, seg = self._segment()
        seg.send("ecu-a", EthernetFrame("b", "a", b"\x00" * 46))
        sim.run()
        assert len(seg.delivered) == 1
        assert len(seg.received["ecu-b"]) == 1
        assert len(seg.received["ecu-c"]) == 1
        assert len(seg.received["ecu-a"]) == 0

    def test_round_robin_order(self):
        sim, seg = self._segment()
        # c and a queue simultaneously; PLCA visits a first (id order).
        seg.send("ecu-c", EthernetFrame("x", "c", b"\x00" * 46))
        seg.send("ecu-a", EthernetFrame("x", "a", b"\x00" * 46))
        sim.run()
        senders = [d.sender for d in seg.delivered]
        assert senders == ["ecu-a", "ecu-c"]

    def test_latency_slower_than_dedicated_100m(self):
        sim, seg = self._segment()
        frame = EthernetFrame("b", "a", b"\x00" * 200)
        seg.send("ecu-a", frame)
        sim.run()
        t1s_latency = seg.delivered[0].latency_s
        dedicated = frame.transmission_time_s(100e6)
        assert t1s_latency > dedicated  # 10 Mb/s + PLCA overhead

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PlcaConfig(bitrate_bps=0)

    def test_duplicate_and_unknown_nodes(self):
        _, seg = self._segment()
        with pytest.raises(ValueError):
            seg.attach("ecu-a")
        with pytest.raises(KeyError):
            seg.send("ghost", EthernetFrame("a", "g", b""))


class TestEthernetLink:
    def test_transfer_time_dominated_by_serialization_at_low_rate(self):
        frame = EthernetFrame("a", "b", b"\x00" * 1000)
        slow = EthernetLink("l", bitrate_bps=100e6).transfer_time_s(frame)
        fast = EthernetLink("l", bitrate_bps=10e9).transfer_time_s(frame)
        assert slow > fast

    def test_switch_security_termination_costs_more(self):
        switch = ZonalSwitch("zc")
        frame = EthernetFrame("a", "b", b"\x00" * 64)
        assert switch.forward_time_s(frame, security_termination=True) > (
            switch.forward_time_s(frame)
        )

    def test_link_validation(self):
        with pytest.raises(ValueError):
            EthernetLink("bad", bitrate_bps=-1)


class TestZonalArchitecture:
    def test_figure3_shape(self):
        arch = ZonalArchitecture.figure3()
        assert len(arch.zones) == 2
        endpoints = [e for z in arch.zones.values() for e in z.endpoints]
        assert sum(1 for e in endpoints if e.attachment == "can") == 3
        assert sum(1 for e in endpoints if e.attachment == "t1s") == 3

    def test_system_model_exposure(self):
        arch = ZonalArchitecture.figure3()
        model = arch.system_model()
        # Unsecured: telematics reaches every ECU.
        report_entry = model.entry_points()
        assert [c.name for c in report_entry] == ["telematics"]
        reachable = model.reachable_from("telematics", only_unsecured=True)
        assert "ecu-can-1" in reachable

    def test_secured_links_cut_reachability(self):
        arch = ZonalArchitecture.figure3()
        model = arch.system_model(secured_links=True)
        reachable = model.reachable_from("telematics", only_unsecured=True)
        assert reachable == {"telematics"}

    def test_latency_matrix_symmetry_of_media(self):
        arch = ZonalArchitecture.figure3()
        matrix = arch.latency_matrix()
        # CAN edge is slower than T1S edge to CC.
        assert matrix[("ecu-can-1", "cc")] > matrix[("ecu-t1s-1", "cc")]
        # Cross-zone paths go through both uplinks.
        assert matrix[("ecu-can-1", "ecu-can-3")] > matrix[("ecu-can-1", "cc")]

    def test_duplicate_names_rejected(self):
        arch = ZonalArchitecture.figure3()
        with pytest.raises(ValueError):
            arch.add_zone(Zone("zc-left"))
        with pytest.raises(ValueError):
            arch.add_zone(Zone("zc-new", [Endpoint("ecu-can-1", "can")]))

    def test_unknown_endpoint(self):
        arch = ZonalArchitecture.figure3()
        with pytest.raises(KeyError):
            arch.path_latency_s("ghost", "cc")

    def test_attachment_validation(self):
        with pytest.raises(ValueError):
            Endpoint("x", "wifi")
