"""Edge-case coverage across modules that the main suites visit lightly."""

import pytest

from repro.core.entities import Component, Interface, SystemModel
from repro.core.events import Simulator
from repro.core.layers import Layer
from repro.core.metrics import AttackSurfaceReport, attack_surface, defense_coverage
from repro.core.rng import derive_seed, numpy_rng, python_rng
from repro.core.threats import ThreatCatalog
from repro.ivn.topology import ZonalArchitecture
from repro.ssi.documents import DocumentStore, SignedDocument
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.wallet import Wallet


class TestRngUtilities:
    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed("a") == derive_seed("a")
        assert derive_seed("a") != derive_seed("b")
        assert derive_seed("a", base_seed=1) != derive_seed("a", base_seed=2)

    def test_generators_reproducible(self):
        assert numpy_rng("x").integers(0, 1 << 30) == numpy_rng("x").integers(0, 1 << 30)
        assert python_rng("x").random() == python_rng("x").random()


class TestSimulatorEdges:
    def test_pending_and_processed_counters(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.processed_events == 2
        assert sim.pending_events == 0

    def test_step_on_empty_queue(self):
        assert Simulator().step() is False


class TestMetricsEdges:
    def test_empty_model_surface(self):
        report = attack_surface(SystemModel("empty"))
        assert report.entry_points == 0
        assert report.unsecured_fraction == 0.0
        assert report.reachability_fraction == 0.0

    def test_report_fractions(self):
        report = AttackSurfaceReport(1, 2, 4, 3, 6, 1)
        assert report.unsecured_fraction == 0.5
        assert report.reachability_fraction == 0.5

    def test_empty_catalog_coverage(self):
        assert defense_coverage(ThreatCatalog()) == 1.0

    def test_exposed_component_is_self_reachable(self):
        model = SystemModel("self")
        model.add_component(Component("only", Layer.DATA, exposed=True))
        assert attack_surface(model).reachable_components == 1


class TestTopologyEdges:
    def test_same_endpoint_latency_zero(self):
        arch = ZonalArchitecture.figure3()
        assert arch.path_latency_s("ecu-can-1", "ecu-can-1") == 0.0

    def test_latency_from_cc(self):
        arch = ZonalArchitecture.figure3()
        down = arch.path_latency_s("cc", "ecu-can-1")
        up = arch.path_latency_s("ecu-can-1", "cc")
        assert down == pytest.approx(up)

    def test_large_payload_segments_on_can(self):
        arch = ZonalArchitecture.figure3()
        small = arch.path_latency_s("ecu-can-1", "cc", payload_len=8)
        large = arch.path_latency_s("ecu-can-1", "cc", payload_len=64)
        assert large > 4 * small  # 8 classic frames vs 1


class TestDocumentStoreEdges:
    def test_get_returns_stored_document(self):
        registry = VerifiableDataRegistry()
        author = Wallet.create("author", registry)
        store = DocumentStore(registry)
        doc = SignedDocument.create(author_did=str(author.did),
                                    author_key=author.keypair,
                                    doc_type="log", content={"x": 1})
        digest = store.add(doc)
        assert store.get(digest) == doc

    def test_verify_unknown_digest_fails(self):
        registry = VerifiableDataRegistry()
        store = DocumentStore(registry)
        assert not store.verify_chain("00" * 32)

    def test_diamond_link_graph_verifies(self):
        registry = VerifiableDataRegistry()
        author = Wallet.create("author", registry)
        store = DocumentStore(registry)

        def add(content, links=()):
            return store.add(SignedDocument.create(
                author_did=str(author.did), author_key=author.keypair,
                doc_type="doc", content=content, links=list(links)))

        base = add({"id": "base"})
        left = add({"id": "left"}, [base])
        right = add({"id": "right"}, [base])
        top = add({"id": "top"}, [left, right])
        assert store.verify_chain(top)


class TestInterfaceSemantics:
    def test_secured_requires_authentication_not_encryption(self):
        encrypted_only = Interface("a", "b", "x", encrypted=True)
        assert not encrypted_only.secured
        authenticated = Interface("a", "b", "x", authenticated=True)
        assert authenticated.secured
