"""Differential meta-tests: the three static analyzers must agree.

Parameterized across every shipped scenario — agreement is the
contract, and the negative tests prove the checks can actually fail
(a gate that cannot fire is not a gate).
"""

import pytest

from repro.flow import analyze
from repro.lint import build_scenario
from repro.redteam import (differential_violations, plan, plan_scenario,
                           run_differential)

ALL_SCENARIOS = ["pkes-legacy", "onboard-insecure", "onboard-hardened",
                 "cariad-breach", "maas-platform"]


class TestAnalyzersAgree:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_no_violations_on_shipped_scenario(self, name):
        assert differential_violations(build_scenario(name)) == []

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_witness_implies_campaign(self, name):
        """Every FLOW witness sink is planner-reachable."""
        target = build_scenario(name)
        flow = analyze(target)
        planned = plan(target, result=flow)
        reachable = planned.campaign_sinks()
        for sink in flow.witnesses_by_sink():
            assert sink in reachable, f"{name}: witnessed {sink} unreachable"

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_clean_iff_defeated(self, name):
        target = build_scenario(name)
        flow = analyze(target)
        planned = plan(target, result=flow)
        if flow.path_clean:
            assert planned.defeated
        else:
            assert not planned.defeated

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_first_hop_is_flow_or_lint_flagged(self, name):
        """Every campaign enters through independently-flagged ground."""
        from repro.flow.rules import FLOW_RULES
        from repro.lint import Linter
        from repro.lint.rules import CATALOG

        target = build_scenario(name)
        flow = analyze(target)
        planned = plan(target, result=flow)
        sources = {n.name for n in flow.graph.sources()}
        report = Linter(list(CATALOG) + list(FLOW_RULES)).run(target)
        texts = [f"{f.subject} {f.message}" for f in report.findings]
        for campaign in planned.campaigns:
            entry = campaign.entry_node
            assert entry in sources or any(entry in t for t in texts), \
                f"{name}: entry {entry} unflagged"

    def test_run_differential_sweeps_all(self):
        violations = run_differential(ALL_SCENARIOS)
        assert set(violations) == set(ALL_SCENARIOS)
        assert all(v == [] for v in violations.values())


class TestGatesCanFire:
    """Tamper with one analyzer's result and watch the gates trip."""

    def test_missing_campaign_trips_witness_gate(self):
        target = build_scenario("onboard-insecure")
        flow = analyze(target)
        planned = plan(target, result=flow)
        planned.campaigns.clear()
        violations = differential_violations(target, flow_result=flow,
                                             plan_result=planned)
        assert any(v.startswith("witness=>campaign") for v in violations)

    def test_phantom_campaign_trips_clean_gate(self):
        hardened = build_scenario("onboard-hardened")
        hardened_flow = analyze(hardened)
        hardened_plan = plan(hardened, result=hardened_flow)
        # graft a campaign from an insecure scenario onto the clean one
        stolen = plan_scenario("pkes-legacy").campaigns[0]
        hardened_plan.campaigns.append(stolen)
        violations = differential_violations(hardened,
                                             flow_result=hardened_flow,
                                             plan_result=hardened_plan)
        assert any(v.startswith("clean<=>defeated") for v in violations)

    def test_source_sink_needs_no_witness(self):
        """maas-platform: a sink that is itself an untrusted source gets
        a 1-step campaign with no flow witness — by design, not a bug."""
        target = build_scenario("maas-platform")
        flow = analyze(target)
        planned = plan(target, result=flow)
        witnessed = set(flow.witnesses_by_sink())
        sources = {n.name for n in flow.graph.sources()}
        unwitnessed = [c for c in planned.campaigns
                       if c.sink not in witnessed]
        assert unwitnessed  # the allowance is actually exercised
        for campaign in unwitnessed:
            assert campaign.sink in sources
        assert differential_violations(target, flow_result=flow,
                                       plan_result=planned) == []
