"""The chaos JSON schema validator: accepts real docs, rejects mutations."""

import copy

import pytest

from repro.faults import ChaosSchemaError, run_chaos_campaign, validate_chaos_dict


@pytest.fixture(scope="module")
def document():
    return run_chaos_campaign(["cariad-breach", "maas-platform"],
                              "baseline", base_seed=0, duration=20)


def mutated(document, mutate):
    clone = copy.deepcopy(document)
    mutate(clone)
    return clone


class TestAccepts:
    def test_real_campaign_document(self, document):
        validate_chaos_dict(document)

    def test_round_trips_through_json(self, document):
        import json
        validate_chaos_dict(json.loads(json.dumps(document)))


class TestRejects:
    def check(self, document, mutate, match):
        with pytest.raises(ChaosSchemaError, match=match):
            validate_chaos_dict(mutated(document, mutate))

    def test_non_dict(self):
        with pytest.raises(ChaosSchemaError, match="object"):
            validate_chaos_dict(["not", "a", "report"])

    def test_wrong_version(self, document):
        self.check(document, lambda d: d.update(version="2.0"),
                   "unsupported schema version")

    def test_wrong_tool_name(self, document):
        self.check(document,
                   lambda d: d["tool"].update(name="repro-chaos-evil"),
                   "unexpected tool name")

    def test_extra_top_level_key(self, document):
        self.check(document, lambda d: d.update(extra=1), "top-level keys")

    def test_missing_scenario_key(self, document):
        self.check(document, lambda d: d["scenarios"][0].pop("retry"),
                   "scenarios\\[0\\]")

    def test_unknown_fault_kind_in_by_kind(self, document):
        def mutate(d):
            d["scenarios"][0]["faults"]["byKind"] = {"meteor-strike": 1}
            d["scenarios"][0]["faults"]["injected"] = 1
        self.check(document, mutate, "unknown fault kind")

    def test_by_kind_must_sum_to_injected(self, document):
        self.check(document,
                   lambda d: d["scenarios"][0]["faults"].update(
                       injected=d["scenarios"][0]["faults"]["injected"] + 1),
                   "sum to faults.injected")

    def test_availability_bounds(self, document):
        self.check(document,
                   lambda d: d["scenarios"][0]["layers"][0].update(
                       availability=1.2),
                   "availability must be in")

    def test_successes_cannot_exceed_attempts(self, document):
        def mutate(d):
            entry = d["scenarios"][0]["layers"][0]
            entry["successes"] = entry["attempts"] + 1
        self.check(document, mutate, "successes must not exceed")

    def test_unknown_service_level(self, document):
        self.check(document,
                   lambda d: d["scenarios"][0]["degradation"].update(
                       minLevel="limp-home"),
                   "minLevel")

    def test_unknown_breaker_state(self, document):
        def mutate(d):
            for scenario in d["scenarios"]:
                if scenario["breakers"]:
                    scenario["breakers"][0]["finalState"] = "ajar"
                    return
            raise AssertionError("fixture should include a breaker")
        self.check(document, mutate, "unknown state")

    def test_duplicate_scenarios(self, document):
        self.check(document,
                   lambda d: d["scenarios"].append(
                       copy.deepcopy(d["scenarios"][0])),
                   "duplicate scenario|scenarioCount")

    def test_summary_fault_total_is_cross_checked(self, document):
        self.check(document,
                   lambda d: d["summary"].update(
                       faultsInjected=d["summary"]["faultsInjected"] + 1),
                   "faultsInjected")

    def test_summary_layers_sustained_is_cross_checked(self, document):
        self.check(document,
                   lambda d: d["summary"].update(layersSustained=[]),
                   "layersSustained")

    def test_plan_spec_keys_are_exact(self, document):
        self.check(document,
                   lambda d: d["plan"]["faults"][0].pop("magnitude"),
                   "plan.faults\\[0\\]")
