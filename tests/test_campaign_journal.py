"""The write-ahead journal: durability protocol, torn tails, replay."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignTool,
    Journal,
    JournalCorrupt,
    read_records,
    replay,
)


def spec():
    return CampaignSpec.matrix(tools=[CampaignTool.LINT],
                               scenarios=["pkes-legacy", "maas-platform"],
                               name="j")


def write_records(path, records, *, fsync=False):
    with Journal(path, fsync=fsync) as journal:
        for record in records:
            journal.append(record)


class TestJournalAppend:
    def test_records_round_trip_with_seq_and_checksum(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, [
            {"type": "campaign-start", "campaign": spec().to_dict()},
            {"type": "shard-start", "shardId": "lint/pkes-legacy/-/s0",
             "attempt": 0},
        ])
        records = read_records(path)
        assert [r["seq"] for r in records] == [0, 1]
        assert [r["type"] for r in records] == ["campaign-start",
                                                "shard-start"]

    def test_append_continues_sequence_across_reopen(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, [{"type": "campaign-start",
                              "campaign": spec().to_dict()}])
        write_records(path, [{"type": "interrupt", "settled": 0}])
        assert [r["seq"] for r in read_records(path)] == [0, 1]

    def test_unknown_record_type_rejected_at_write(self, tmp_path):
        with Journal(tmp_path / "j.jsonl", fsync=False) as journal:
            with pytest.raises(ValueError, match="unknown journal record"):
                journal.append({"type": "mystery"})

    def test_append_requires_open(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        with pytest.raises(ValueError, match="not open"):
            journal.append({"type": "interrupt"})

    def test_write_accounting(self, tmp_path):
        with Journal(tmp_path / "j.jsonl", fsync=False) as journal:
            journal.append({"type": "campaign-start",
                            "campaign": spec().to_dict()})
            journal.append({"type": "interrupt", "settled": 0})
            assert journal.records_written == 2
            assert journal.write_s >= 0.0

    def test_missing_file_is_empty(self, tmp_path):
        assert read_records(tmp_path / "nope.jsonl") == []


class TestCorruption:
    def good(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, [
            {"type": "campaign-start", "campaign": spec().to_dict()},
            {"type": "shard-start", "shardId": "lint/pkes-legacy/-/s0",
             "attempt": 0},
            {"type": "shard-done", "shardId": "lint/pkes-legacy/-/s0",
             "status": "ok", "result": {"x": 1}, "digest": "d", "error": "",
             "attempts": 1, "durationS": 0.1},
        ])
        return path

    def test_torn_trailing_record_is_dropped(self, tmp_path):
        path = self.good(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"type": "shard-done", "shardId": "lint/maas')
        records = read_records(path)
        assert len(records) == 3  # the torn tail is simply gone

    def test_trailing_checksum_mismatch_is_dropped(self, tmp_path):
        path = self.good(tmp_path)
        lines = path.read_text().splitlines()
        tampered = json.loads(lines[-1])
        tampered["status"] = "error"  # tamper after checksum stamping
        lines[-1] = json.dumps(tampered)
        path.write_text("\n".join(lines) + "\n")
        assert len(read_records(path)) == 2

    def test_mid_file_corruption_refuses_to_replay(self, tmp_path):
        path = self.good(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace("shard-start", "shard-sta rt")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorrupt):
            read_records(path)

    def test_sequence_gap_refuses_to_replay(self, tmp_path):
        path = self.good(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], lines[2]]) + "\n" + lines[1]
                        + "\n")
        with pytest.raises(JournalCorrupt, match="sequence|checksum"):
            read_records(path)


class TestReplay:
    def test_replay_folds_progress(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, [
            {"type": "campaign-start", "campaign": spec().to_dict()},
            {"type": "shard-start", "shardId": "a", "attempt": 0},
            {"type": "shard-start", "shardId": "b", "attempt": 0},
            {"type": "shard-done", "shardId": "a", "status": "ok",
             "result": {}, "digest": "d", "error": "", "attempts": 1,
             "durationS": 0.1},
            {"type": "shard-start", "shardId": "c", "attempt": 0},
            {"type": "shard-quarantined", "shardId": "c",
             "error": "poison", "attempts": 3, "durationS": 0.2,
             "failures": ["worker crashed"] * 3},
            {"type": "interrupt", "settled": 2},
        ])
        state = replay(path)
        assert set(state.done) == {"a"}
        assert set(state.quarantined) == {"c"}
        assert state.in_flight == ["b"]
        assert state.settled("a") and state.settled("c")
        assert not state.settled("b")
        assert state.interrupts == 1 and not state.ended
        assert state.starts == {"a": 1, "b": 1, "c": 1}

    def test_replay_requires_campaign_start_first(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, [{"type": "shard-start", "shardId": "a",
                              "attempt": 0},
                             {"type": "interrupt", "settled": 0}])
        with pytest.raises(JournalCorrupt, match="campaign-start"):
            replay(path)

    def test_replay_rejects_duplicate_campaign_start(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        document = spec().to_dict()
        write_records(path, [
            {"type": "campaign-start", "campaign": document},
            {"type": "campaign-start", "campaign": document},
        ])
        with pytest.raises(JournalCorrupt, match="duplicate"):
            replay(path)

    def test_replay_rejects_bad_done_status(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_records(path, [
            {"type": "campaign-start", "campaign": spec().to_dict()},
            {"type": "shard-done", "shardId": "a", "status": "exploded",
             "result": None, "digest": "", "error": "x", "attempts": 1,
             "durationS": 0.0},
        ])
        with pytest.raises(JournalCorrupt, match="status"):
            replay(path)

    def test_empty_journal_replays_to_empty_state(self, tmp_path):
        state = replay(tmp_path / "missing.jsonl")
        assert state.spec is None and state.records == 0
        assert not state.ended and state.in_flight == []
