"""The FLOW rule family riding the ordinary lint machinery: findings,
fingerprints, baselines, and JSON-report round-trips."""

import json

from repro.flow import FLOW_RULES, flow_linter
from repro.lint import (Baseline, Linter, Severity, build_scenario,
                        validate_report_dict)
from repro.lint.scenarios import SCENARIOS


class TestFamily:
    def test_four_rules_with_stable_ids(self):
        assert [r.rule_id for r in FLOW_RULES] \
            == ["FLOW001", "FLOW002", "FLOW003", "FLOW004"]

    def test_flow_linter_runs_only_flow_rules(self):
        linter = flow_linter()
        assert {r.rule_id for r in linter.rules} \
            == {r.rule_id for r in FLOW_RULES}

    def test_messages_carry_witness_and_cut(self):
        report = flow_linter().run(build_scenario("pkes-legacy"))
        (finding,) = [f for f in report.findings if f.rule_id == "FLOW001"]
        assert finding.subject == "keyfob=>immobilizer"
        assert "keyfob -> pkes-receiver" in finding.message
        assert "harden first:" in finding.message

    def test_flow002_fires_on_cariad_bucket(self):
        report = flow_linter().run(build_scenario("cariad-breach"))
        subjects = {f.subject for f in report.findings
                    if f.rule_id == "FLOW002"}
        assert any("bucket:telemetry-records" in s for s in subjects)

    def test_flow003_names_gateway_edges(self):
        report = flow_linter().run(build_scenario("onboard-insecure"))
        subjects = {f.subject for f in report.findings
                    if f.rule_id == "FLOW003"}
        assert "telematics->brake-ecu" in subjects

    def test_hardened_scenario_yields_no_flow_findings(self):
        report = flow_linter().run(build_scenario("onboard-hardened"))
        assert report.findings == (), report.to_table()


class TestMachineryRoundTrip:
    def test_findings_round_trip_through_json_report(self):
        linter = flow_linter()
        for name in SCENARIOS:
            report = linter.run(build_scenario(name))
            document = report.to_json_dict(linter.enabled_rules())
            validate_report_dict(document)
            reparsed = json.loads(json.dumps(document))
            assert reparsed["summary"]["total"] == len(report.findings)
            assert {f["ruleId"] for f in reparsed["findings"]} \
                <= {"FLOW001", "FLOW002", "FLOW003", "FLOW004"}

    def test_baseline_suppresses_flow_findings(self):
        linter = flow_linter()
        target = build_scenario("onboard-insecure")
        first = linter.run(target)
        assert first.findings
        baseline = Baseline.from_report(first, comment="accepted")
        second = linter.run(build_scenario("onboard-insecure"),
                            baseline=baseline)
        assert second.findings == ()
        assert len(second.suppressed) == len(first.findings)
        assert second.exit_code(Severity.LOW) == 0

    def test_fingerprints_stable_across_runs(self):
        linter = flow_linter()
        first = linter.run(build_scenario("onboard-insecure"))
        second = linter.run(build_scenario("onboard-insecure"))
        assert [f.fingerprint for f in first.findings] \
            == [f.fingerprint for f in second.findings]

    def test_full_linter_includes_flow_alongside_classic_rules(self):
        report = Linter().run(build_scenario("onboard-insecure"))
        ids = report.finding_rule_ids()
        assert "FLOW001" in ids and "IVN001" in ids
