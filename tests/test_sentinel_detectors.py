"""Per-layer threshold detectors: events in, risk signals out."""

import pytest

from repro.core.layers import Layer
from repro.obs.events import EventKind, EventLog
from repro.sentinel import (
    CanRateDetector,
    CloudBudgetDetector,
    DidResolutionDetector,
    RangingResidualDetector,
    SecocAuthDetector,
    Signal,
    default_detectors,
)


def make_log():
    return EventLog(capacity=256)


def feed(detector, log):
    """Wire a log straight into one detector (no engine)."""
    return log.subscribe(lambda e: detector.on_event(e)
                         if e.kind in detector.kinds else None)


class TestSignal:
    def test_risk_bounds_validated(self):
        with pytest.raises(ValueError):
            Signal(0.0, "s", "d", 1.5, False, "r")
        with pytest.raises(ValueError):
            Signal(0.0, "s", "d", -0.1, False, "r")

    def test_default_detectors_cover_five_layers(self):
        detectors = default_detectors()
        assert sorted(d.name for d in detectors) == [
            "can-rate", "cloud-budget", "did-resolution",
            "ranging-residual", "secoc-auth"]


class TestCanRate:
    def test_quiet_bus_produces_no_signal(self):
        detector = CanRateDetector()
        log = make_log()
        feed(detector, log)
        log.emit(EventKind.FRAME_SENT, Layer.NETWORK, "bus", "f",
                 t=0.0, sender="zc-left", frames=4)
        assert detector.flush(0.0) == []

    def test_storm_scored_and_hard_at_saturation(self):
        detector = CanRateDetector()
        detector.on_event(make_log().emit(
            EventKind.FRAME_SENT, Layer.NETWORK, "bus", "storm",
            t=0.0, sender="babbler", frames=24))
        [signal] = detector.flush(0.0)
        assert signal.source == "babbler"
        assert signal.hard and signal.risk == 1.0
        assert "saturates" in signal.reason

    def test_rate_accumulates_across_events_in_one_tick(self):
        detector = CanRateDetector()
        log = make_log()
        feed(detector, log)
        for _ in range(3):
            log.emit(EventKind.FRAME_SENT, Layer.NETWORK, "bus", "f",
                     t=0.0, sender="ecu", frames=3)
        [signal] = detector.flush(0.0)
        assert not signal.hard
        assert signal.risk == pytest.approx(9 / 12)

    def test_flush_resets_per_tick_counters(self):
        detector = CanRateDetector()
        detector.on_event(make_log().emit(
            EventKind.FRAME_SENT, Layer.NETWORK, "bus", "f",
            t=0.0, sender="ecu", frames=20))
        assert detector.flush(0.0)
        assert detector.flush(1.0) == []

    def test_bus_off_storm_is_hard(self):
        detector = CanRateDetector()
        log = make_log()
        feed(detector, log)
        for _ in range(3):
            log.emit(EventKind.BUS_OFF, Layer.NETWORK, "victim-ecu", "off",
                     t=0.0)
        [signal] = detector.flush(0.0)
        assert signal.hard and "bus-off storm" in signal.reason


class TestSecocAuth:
    def test_single_reject_is_ignored(self):
        detector = SecocAuthDetector()
        detector.on_event(make_log().emit(
            EventKind.MAC_REJECTED, Layer.NETWORK, "zonal-can", "bad",
            t=0.0))
        assert detector.flush(0.0) == []

    def test_burst_scores_within_window(self):
        detector = SecocAuthDetector(window_s=6.0, alarm_burst=4)
        log = make_log()
        feed(detector, log)
        for t in (0.0, 1.0, 2.0):
            log.emit(EventKind.MAC_REJECTED, Layer.NETWORK, "zonal-can",
                     "bad", t=t)
            detector.flush(t)
        log.emit(EventKind.MAC_REJECTED, Layer.NETWORK, "zonal-can",
                 "bad", t=3.0)
        [signal] = detector.flush(3.0)
        assert signal.risk == pytest.approx(1.0)  # 4 rejects / alarm_burst 4
        assert not signal.hard

    def test_old_rejects_age_out_of_the_window(self):
        detector = SecocAuthDetector(window_s=2.0, suspect_burst=2)
        log = make_log()
        feed(detector, log)
        log.emit(EventKind.MAC_REJECTED, Layer.NETWORK, "bus", "x", t=0.0)
        detector.flush(0.0)
        log.emit(EventKind.MAC_REJECTED, Layer.NETWORK, "bus", "x", t=5.0)
        assert detector.flush(5.0) == []  # the t=0 reject expired

    def test_no_signal_on_quiet_ticks_even_with_window_history(self):
        detector = SecocAuthDetector(suspect_burst=1)
        detector.on_event(make_log().emit(
            EventKind.MAC_REJECTED, Layer.NETWORK, "bus", "x", t=0.0))
        assert detector.flush(0.0)
        assert detector.flush(1.0) == []  # window non-empty, tick quiet


class TestRangingResidual:
    def test_nominal_residuals_are_quiet(self):
        detector = RangingResidualDetector()
        detector.on_event(make_log().emit(
            EventKind.RANGING, Layer.PHYSICAL, "uwb", "r",
            t=0.0, residual_m=0.05, rejected=False))
        assert detector.flush(0.0) == []

    def test_large_positive_residual_is_probabilistic(self):
        detector = RangingResidualDetector()
        detector.on_event(make_log().emit(
            EventKind.RANGING, Layer.PHYSICAL, "uwb", "r",
            t=0.0, residual_m=1.2))
        [signal] = detector.flush(0.0)
        assert not signal.hard
        assert signal.risk == pytest.approx(0.8)

    def test_impossible_early_arrival_is_hard(self):
        detector = RangingResidualDetector()
        detector.on_event(make_log().emit(
            EventKind.RANGING, Layer.PHYSICAL, "uwb", "r",
            t=0.0, residual_m=-2.5))
        [signal] = detector.flush(0.0)
        assert signal.hard
        assert "impossible ToA" in signal.reason

    def test_rejected_samples_are_soft_evidence(self):
        detector = RangingResidualDetector(reject_risk=0.5)
        detector.on_event(make_log().emit(
            EventKind.RANGING, Layer.PHYSICAL, "uwb", "r",
            t=0.0, rejected=True, residual_m=0.0))
        [signal] = detector.flush(0.0)
        assert signal.risk == 0.5 and not signal.hard

    def test_residual_falls_back_to_measured_minus_true(self):
        detector = RangingResidualDetector()
        detector.on_event(make_log().emit(
            EventKind.RANGING, Layer.PHYSICAL, "uwb", "r",
            t=0.0, measured_m=12.0, true_m=10.0))
        [signal] = detector.flush(0.0)
        assert signal.risk == 1.0  # |2.0| / 1.5, clamped

    def test_event_without_usable_fields_is_skipped(self):
        detector = RangingResidualDetector()
        detector.on_event(make_log().emit(
            EventKind.RANGING, Layer.PHYSICAL, "uwb", "r", t=0.0))
        assert detector.flush(0.0) == []


class TestCloudBudget:
    def _tick(self, detector, t, status, latency=80.0):
        detector.on_event(make_log().emit(
            EventKind.CLOUD_REQUEST, Layer.DATA, "backend", "GET",
            t=t, status=status, latency_ms=latency))
        return detector.flush(t)

    def test_ok_within_budget_is_quiet(self):
        detector = CloudBudgetDetector()
        assert self._tick(detector, 0.0, "ok") == []

    def test_slow_ok_counts_against_the_budget(self):
        detector = CloudBudgetDetector(budget_ms=250.0)
        [signal] = self._tick(detector, 0.0, "ok", latency=400.0)
        assert signal.risk == pytest.approx(0.3)  # floor risk
        assert not signal.hard

    def test_raw_failure_streak_blows_the_budget(self):
        detector = CloudBudgetDetector(hard_raw_streak=4)
        signals = [self._tick(detector, float(t), "5xx") for t in range(4)]
        assert not signals[2][0].hard
        assert signals[3][0].hard
        assert "availability budget blown" in signals[3][0].reason

    def test_shedding_breaks_the_raw_streak(self):
        # Deliberate load-shedding is the breaker working: it must not
        # count toward the raw-outage streak that makes a hard gate.
        detector = CloudBudgetDetector(hard_raw_streak=3)
        self._tick(detector, 0.0, "5xx")
        self._tick(detector, 1.0, "5xx")
        [shed] = self._tick(detector, 2.0, "shed")
        assert not shed.hard
        [after] = self._tick(detector, 3.0, "5xx")
        assert not after.hard  # streak restarted at 1

    def test_window_risk_grows_with_degraded_ticks(self):
        detector = CloudBudgetDetector(window_s=6.0, alarm_fails=4,
                                       hard_raw_streak=99)
        risks = [self._tick(detector, float(t), "timeout")[0].risk
                 for t in range(4)]
        assert risks == pytest.approx([0.3, 0.5, 0.75, 1.0])


class TestDidResolution:
    def _tick(self, detector, t, status):
        detector.on_event(make_log().emit(
            EventKind.DID_RESOLUTION, Layer.SOFTWARE_PLATFORM, "registry",
            "resolve", t=t, status=status))
        return detector.flush(t)

    def test_ok_is_quiet(self):
        detector = DidResolutionDetector()
        assert self._tick(detector, 0.0, "ok") == []

    def test_failures_score_over_the_window(self):
        detector = DidResolutionDetector(alarm_fails=3)
        risks = [self._tick(detector, float(t), "fail")[0].risk
                 for t in range(3)]
        assert risks == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_stale_cache_is_weak_evidence_only(self):
        detector = DidResolutionDetector(stale_risk=0.2)
        [signal] = self._tick(detector, 0.0, "stale")
        assert signal.risk == 0.2 and not signal.hard
        assert "stale" in signal.reason
