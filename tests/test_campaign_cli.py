"""The ``python -m repro campaign`` subcommand."""

import json

from repro.__main__ import main
from repro.campaign import validate_campaign_dict


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def run_args(root, *extra):
    return ("campaign", "run", "--tools", "lint,flow",
            "--scenarios", "pkes-legacy,maas-platform",
            "--journal-root", str(root), "--name", "clitest") + extra


class TestRun:
    def test_table_output_and_exit_code(self, capsys, tmp_path):
        code, out, _ = run_cli(capsys, *run_args(tmp_path))
        assert code == 0
        assert "campaign clitest (4 shards)" in out and "4 ok" in out
        assert "lint/pkes-legacy/-/s0" in out

    def test_json_validates(self, capsys, tmp_path):
        code, out, _ = run_cli(capsys, *run_args(tmp_path, "--json"))
        assert code == 0
        document = json.loads(out)
        validate_campaign_dict(document)
        assert document["campaign"]["id"] == "clitest"
        assert document["summary"]["ok"] == 4

    def test_report_file_is_byte_identical_across_fresh_runs(self, capsys,
                                                             tmp_path):
        paths = []
        for run in ("a", "b"):
            root = tmp_path / run      # fresh journal root per run
            path = tmp_path / f"{run}.json"
            code, _, err = run_cli(capsys, *run_args(
                root, "--report", str(path)))
            assert code == 0 and "wrote campaign report" in err
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_second_run_over_same_journal_is_refused(self, capsys, tmp_path):
        assert run_cli(capsys, *run_args(tmp_path))[0] == 0
        code, _, err = run_cli(capsys, *run_args(tmp_path))
        assert code == 2
        assert "campaign resume clitest" in err

    def test_unknown_axis_values_exit_2(self, capsys, tmp_path):
        for extra in (("--tools", "fuzzer"),
                      ("--scenarios", "nope"),
                      ("--plans", "nope")):
            code, _, err = run_cli(
                capsys, "campaign", "run", "--journal-root", str(tmp_path),
                *extra)
            assert code == 2 and "available" in err


class TestResumeStatusList:
    def test_resume_completes_to_identical_bytes(self, capsys, tmp_path):
        first = tmp_path / "first.json"
        again = tmp_path / "again.json"
        run_cli(capsys, *run_args(tmp_path / "j", "--report", str(first)))
        code, _, _ = run_cli(capsys, "campaign", "resume", "clitest",
                             "--journal-root", str(tmp_path / "j"),
                             "--report", str(again))
        assert code == 0
        assert first.read_bytes() == again.read_bytes()

    def test_status_summarises_without_running(self, capsys, tmp_path):
        run_cli(capsys, *run_args(tmp_path))
        code, out, _ = run_cli(capsys, "campaign", "status", "clitest",
                               "--journal-root", str(tmp_path))
        assert code == 0
        assert "complete" in out and "4/4 shard(s) settled" in out

    def test_list_enumerates_journaled_campaigns(self, capsys, tmp_path):
        run_cli(capsys, *run_args(tmp_path))
        code, out, _ = run_cli(capsys, "campaign", "list",
                               "--journal-root", str(tmp_path))
        assert code == 0
        assert "clitest" in out and "complete" in out

    def test_list_with_no_journals(self, capsys, tmp_path):
        code, out, _ = run_cli(capsys, "campaign", "list",
                               "--journal-root", str(tmp_path))
        assert code == 0 and "no journaled campaigns" in out

    def test_unknown_campaign_id_exits_2(self, capsys, tmp_path):
        for command in ("resume", "status"):
            code, _, err = run_cli(capsys, "campaign", command, "ghost",
                                   "--journal-root", str(tmp_path))
            assert code == 2 and "ghost" in err
