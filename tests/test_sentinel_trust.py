"""Time-variant trust: fusion, EMA, phases, decay, collapse."""

import pytest

from repro.sentinel import (
    DEFAULT_WEIGHTS,
    TrustPhase,
    TrustRegistry,
    TrustScore,
)


class TestFusion:
    def test_weighted_sum_of_soft_risks(self):
        score = TrustScore("ecu")
        fused = score.fuse({"can-rate": 0.5, "secoc-auth": 0.25}, False)
        assert fused == pytest.approx(0.5 * 1.0 + 0.25 * 0.8)

    def test_weighted_sum_clamps_at_one(self):
        score = TrustScore("ecu")
        assert score.fuse({"can-rate": 0.9, "ranging-residual": 0.9},
                          False) == 1.0

    def test_hard_gate_overrides_everything(self):
        score = TrustScore("ecu")
        assert score.fuse({}, True) == 1.0
        assert score.fuse({"can-rate": 0.01}, True) == 1.0

    def test_unknown_detector_gets_default_weight(self):
        score = TrustScore("ecu")
        assert score.fuse({"mystery": 1.0}, False) == 0.5

    def test_default_weights_cover_all_five_detectors(self):
        assert sorted(DEFAULT_WEIGHTS) == [
            "can-rate", "cloud-budget", "did-resolution",
            "ranging-residual", "secoc-auth"]


class TestEmaAndHardCrash:
    def test_clean_ticks_grow_trust(self):
        score = TrustScore("ecu", initial=0.5, alpha=0.35)
        score.update(0.0, {}, False)
        assert score.score == pytest.approx(0.65 * 0.5 + 0.35 * 1.0)

    def test_single_noisy_tick_dents_but_does_not_collapse(self):
        score = TrustScore("ecu", initial=0.5)
        score.update(0.0, {"can-rate": 0.6}, False)
        assert 0.3 < score.score < 0.5
        assert score.collapsed_t is None

    def test_hard_tick_crashes_the_score(self):
        score = TrustScore("ecu", initial=0.9, hard_crash=0.05)
        events = score.update(0.0, {}, True)
        assert score.score == 0.05
        assert score.hard_hits == 1
        assert any(e.kind == "collapse" for e in events)

    def test_collapse_fires_once_and_records_time(self):
        score = TrustScore("ecu", initial=0.9)
        score.update(3.0, {}, True)
        assert score.collapsed_t == 3.0
        events = score.update(4.0, {}, True)
        assert score.collapsed_t == 3.0  # first crossing wins
        assert not any(e.kind == "collapse" for e in events)

    def test_min_score_tracks_the_low_water_mark(self):
        score = TrustScore("ecu", initial=0.5)
        score.update(0.0, {}, True)
        low = score.score
        for t in range(1, 30):
            score.update(float(t), {}, False)
        assert score.score > low
        assert score.min_score == pytest.approx(low)


class TestPhases:
    def test_cold_start_amplifies_risk(self):
        cold = TrustScore("a", cold_start_gain=1.25)
        warm = TrustScore("b", cold_start_gain=1.25)
        warm.phase = TrustPhase.VERIFYING
        cold.update(0.0, {"can-rate": 0.4}, False)
        warm.update(0.0, {"can-rate": 0.4}, False)
        assert cold.score < warm.score

    def test_cold_start_graduates_to_verifying(self):
        score = TrustScore("ecu", cold_start_obs=3)
        for t in range(3):
            events = score.update(float(t), {}, False)
        assert score.phase is TrustPhase.VERIFYING
        assert any(e.kind == "phase" and e.phase is TrustPhase.VERIFYING
                   for e in events)

    def test_sustained_good_behavior_reaches_trusted(self):
        score = TrustScore("ecu", cold_start_obs=2, trusted_at=0.8)
        for t in range(12):
            score.update(float(t), {}, False)
        assert score.phase is TrustPhase.TRUSTED

    def test_trusted_absorbs_line_noise(self):
        score = TrustScore("ecu", noise_floor=0.1)
        score.phase = TrustPhase.TRUSTED
        score.observations = 20
        score.score = 0.9
        score.update(0.0, {"secoc-auth": 0.05}, False)  # fused 0.04 <= floor
        assert score.score > 0.9  # treated as zero risk

    def test_trusted_falls_back_to_verifying_when_score_sags(self):
        score = TrustScore("ecu", trusted_exit=0.7)
        score.phase = TrustPhase.TRUSTED
        score.observations = 20
        score.score = 0.75
        events = score.update(0.0, {"can-rate": 0.9}, False)
        assert score.phase is TrustPhase.VERIFYING
        assert any(e.kind == "phase" for e in events)

    def test_trusted_exit_must_not_exceed_trusted_at(self):
        with pytest.raises(ValueError):
            TrustScore("ecu", trusted_at=0.6, trusted_exit=0.7)
        with pytest.raises(ValueError):
            TrustScore("ecu", alpha=0.0)


class TestDecay:
    def test_unobserved_trust_decays_toward_ambient(self):
        score = TrustScore("ecu", ambient=0.4, decay_rate=0.05)
        score.score = 0.9
        score.decay(0.0)
        assert score.score == pytest.approx(0.9 - 0.05 * 0.5)

    def test_distrust_is_not_forgiven_by_decay(self):
        score = TrustScore("ecu", ambient=0.4)
        score.score = 0.1
        score.decay(0.0)
        assert score.score == 0.1  # below ambient: stays down


class TestRegistry:
    def test_get_creates_and_memoizes(self):
        registry = TrustRegistry()
        assert registry.get("a") is registry.get("a")
        assert registry.sources() == ["a"]

    def test_decay_except_skips_sources_seen_this_tick(self):
        registry = TrustRegistry()
        registry.get("seen").score = 0.9
        registry.get("idle").score = 0.9
        registry.decay_except(0.0, {"seen"})
        assert registry.get("seen").score == 0.9
        assert registry.get("idle").score < 0.9

    def test_collapsed_lists_sources_sorted(self):
        registry = TrustRegistry()
        registry.update(0.0, "zeta", {}, True)
        registry.update(0.0, "alpha", {}, True)
        registry.update(0.0, "fine", {}, False)
        assert registry.collapsed() == ["alpha", "zeta"]

    def test_custom_weights_flow_through_update(self):
        registry = TrustRegistry(weights={"can-rate": 0.0})
        registry.update(0.0, "ecu", {"can-rate": 1.0}, False)
        default = TrustRegistry()
        default.update(0.0, "ecu", {"can-rate": 1.0}, False)
        assert registry.get("ecu").score > default.get("ecu").score

    def test_to_dict_is_sorted_and_rounded(self):
        registry = TrustRegistry()
        registry.update(0.0, "b", {"can-rate": 0.123456}, False)
        registry.update(0.0, "a", {}, False)
        docs = registry.to_dict()
        assert [d["source"] for d in docs] == ["a", "b"]
        for doc in docs:
            assert set(doc) == {"source", "score", "minScore", "phase",
                                "observations", "hardHits", "collapsedT"}
            assert doc["score"] == round(doc["score"], 4)
