"""``repro --help`` polish: the subcommand listing stays in sync.

The SUBCOMMANDS table in ``repro.__main__`` drives the ``--help``
output; these smoke tests pin that every registered subparser is
described there (and vice versa), so a new subcommand cannot ship
without a one-line description.
"""

import argparse

import pytest

from repro.__main__ import SUBCOMMANDS, build_parser, main


def _subparsers_action(parser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action
    raise AssertionError("parser has no subparsers")


def test_registered_subparsers_match_table():
    action = _subparsers_action(build_parser())
    assert set(action.choices) == set(SUBCOMMANDS)


def test_every_subcommand_described_in_help(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for name, description in SUBCOMMANDS.items():
        assert name in out
        assert description in out


def test_descriptions_are_one_line_and_non_empty():
    for name, description in SUBCOMMANDS.items():
        assert description.strip(), name
        assert "\n" not in description, name


def test_expected_subcommand_set():
    assert set(SUBCOMMANDS) == {"list", "run", "lint", "flow", "trace",
                                "chaos", "redteam", "sentinel", "audit",
                                "campaign"}


def test_module_docstring_mentions_every_subcommand():
    import repro.__main__ as cli

    for name in SUBCOMMANDS:
        assert f"python -m repro {name}" in cli.__doc__, name
