"""Sentinel report schema: self-validation plus mutation rejections."""

import copy
import json

import pytest

from repro.sentinel import (
    SentinelSchemaError,
    run_sentinel_campaign,
    validate_sentinel_dict,
)


@pytest.fixture(scope="module")
def document():
    return run_sentinel_campaign(["onboard-hardened", "onboard-insecure"],
                                 "severe")


class TestAcceptance:
    def test_document_passes_its_own_validator(self, document):
        validate_sentinel_dict(document)
        # and survives a JSON round trip
        validate_sentinel_dict(json.loads(json.dumps(document)))

    def test_schema_error_is_a_value_error(self):
        assert issubclass(SentinelSchemaError, ValueError)
        with pytest.raises(SentinelSchemaError):
            validate_sentinel_dict([])  # not even a mapping


def _scenario(d, index=1):
    return d["scenarios"][index]  # onboard-insecure: has alarms + incidents


MUTATIONS = [
    ("drop-version", lambda d: d.pop("version")),
    ("bad-version", lambda d: d.update(version="9.9")),
    ("bad-tool", lambda d: d["tool"].update(name="someone-else")),
    ("extra-top-key", lambda d: d.update(surprise=1)),
    ("bad-plan", lambda d: d["plan"].update(name=42)),
    ("bad-base-seed", lambda d: d.update(baseSeed="zero")),
    ("scenario-extra-key", lambda d: _scenario(d).update(extra=1)),
    ("scenario-window-inverted",
     lambda d: _scenario(d)["window"].update(start=1e9)),
    ("faults-bykind-mismatch",
     lambda d: _scenario(d)["faults"]["byKind"].update(surprise=3)),
    ("sentinel-missing-key",
     lambda d: _scenario(d)["sentinel"].pop("machines")),
    ("sentinel-transition-sum",
     lambda d: _scenario(d)["sentinel"].update(alarmTransitions=999)),
    ("sentinel-unsorted-alarmed",
     lambda d: _scenario(d)["sentinel"].update(
         alarmedSources=list(reversed(
             _scenario(d)["sentinel"]["alarmedSources"])))),
    ("machine-bad-state",
     lambda d: _scenario(d)["sentinel"]["machines"][0].update(
         finalState="panicking")),
    ("incident-nondense-ids",
     lambda d: _scenario(d)["sentinel"]["incidents"][0].update(id=7)),
    ("incident-crosslayer-lie",
     lambda d: _scenario(d)["sentinel"]["incidents"][0].update(
         crossLayer=not _scenario(d)["sentinel"]["incidents"][0]
         ["crossLayer"])),
    ("trust-min-above-score",
     lambda d: _scenario(d)["sentinel"]["trust"][0].update(minScore=1.5)),
    ("trust-hardhits-exceed-obs",
     lambda d: _scenario(d)["sentinel"]["trust"][0].update(
         hardHits=10_000)),
    ("detection-alarm-lie",
     lambda d: _scenario(d)["detection"].update(alarmRaised=False)),
    ("detection-incidents-lie",
     lambda d: _scenario(d)["detection"].update(alarmIncidents=99)),
    ("detection-lead-lie",
     lambda d: _scenario(d)["detection"].update(leadTicks=42.0)),
    ("summary-count-lie", lambda d: d["summary"].update(scenarioCount=9)),
    ("summary-detected-lie",
     lambda d: d["summary"].update(scenariosDetected=[])),
    ("summary-collapsed-unsorted",
     lambda d: d["summary"].update(trustCollapsed=list(reversed(
         d["summary"]["trustCollapsed"])))),
]


class TestMutationRejections:
    @pytest.mark.parametrize("label,mutate", MUTATIONS,
                             ids=[m[0] for m in MUTATIONS])
    def test_mutation_raises_schema_error(self, document, label, mutate):
        mutated = copy.deepcopy(document)
        mutate(mutated)
        with pytest.raises(SentinelSchemaError):
            validate_sentinel_dict(mutated)

    def test_mutation_fixtures_actually_mutate(self, document):
        # Guard against a reversed([]) no-op silently passing validation.
        for label, mutate in MUTATIONS:
            mutated = copy.deepcopy(document)
            mutate(mutated)
            assert mutated != document, label
