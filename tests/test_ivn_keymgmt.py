"""Tests for MACsec key lifecycle management (PN exhaustion / rekey)."""

import pytest

from repro.ivn.keymgmt import KeyLifecycleManager, run_traffic_with_rekey
from repro.ivn.macsec import MacsecPort, MkaSession


class TestLifecycle:
    def test_rekey_triggered_before_exhaustion(self):
        delivered, events = run_traffic_with_rekey(100, pn_limit=32,
                                                   rekey_fraction=0.75)
        assert events
        first = events[0]
        assert first.tx_pn_at_trigger <= 32
        assert first.key_number >= 2

    def test_zero_loss_across_many_rotations(self):
        # 300 frames with a 32-PN space: ~12 rotations, AN wraps thrice.
        delivered, events = run_traffic_with_rekey(300, pn_limit=32,
                                                   rekey_fraction=0.75)
        assert delivered == 300
        assert len(events) >= 10

    def test_no_rekey_when_space_is_large(self):
        delivered, events = run_traffic_with_rekey(50, pn_limit=2**32)
        assert delivered == 50
        assert events == []

    def test_rekey_interval_matches_threshold(self):
        _, events = run_traffic_with_rekey(200, pn_limit=40, rekey_fraction=0.5)
        frames_between = [b.at_frame - a.at_frame
                          for a, b in zip(events, events[1:])]
        # Each generation serves ~threshold frames.
        assert all(15 <= gap <= 25 for gap in frames_between)

    def test_parameter_validation(self):
        session = MkaSession(b"\x29" * 16, [MacsecPort("a"), MacsecPort("b")])
        with pytest.raises(ValueError):
            KeyLifecycleManager(session, rekey_fraction=1.0)
        with pytest.raises(ValueError):
            KeyLifecycleManager(session, pn_limit=1)
        with pytest.raises(ValueError):
            run_traffic_with_rekey(0)


class TestAnWrapReplayState:
    def test_fresh_sa_under_reused_an_accepts_new_pns(self):
        a, b = MacsecPort("a"), MacsecPort("b")
        session = MkaSession(b"\x2a" * 16, [a, b])
        session.distribute_sak()
        # Burn through 5 generations: AN cycles 1,2,3,0,1.
        for _ in range(5):
            frame = a.protect(b"payload")
            assert b.validate(frame) is not None
            session.distribute_sak()
        # Back on AN 1 with a fresh SAK and pn=1: must not be treated
        # as a replay of generation-1 traffic.
        frame = a.protect(b"after wrap")
        assert b.validate(frame) == b"after wrap"
