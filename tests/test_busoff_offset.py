"""Tests for the bus-off attack model and the position-offset insider."""

import numpy as np
import pytest

from repro.collab.attacks import PositionOffsetAttacker
from repro.collab.detection import member_bias_estimates
from repro.collab.perception import CollabVehicle, PerceptionWorld, WorldObject
from repro.ivn.busoff import BusOffAttack, ErrorCounter, simulate_busoff


class TestErrorCounter:
    def test_tec_dynamics(self):
        counter = ErrorCounter()
        counter.on_tx_error()
        assert counter.tec == 8
        counter.on_tx_success()
        assert counter.tec == 7

    def test_state_thresholds(self):
        counter = ErrorCounter()
        for _ in range(16):
            counter.on_tx_error()
        assert counter.error_passive
        for _ in range(16):
            counter.on_tx_error()
        assert counter.bus_off

    def test_tec_floor_and_cap(self):
        counter = ErrorCounter()
        counter.on_tx_success()
        assert counter.tec == 0
        for _ in range(100):
            counter.on_tx_error()
        assert counter.tec == 256


class TestBusOffAttack:
    def test_undefended_victim_evicted(self):
        outcome = simulate_busoff(BusOffAttack())
        assert outcome.victim_bus_off
        # ~8 TEC per hit: eviction within ~35 rounds.
        assert outcome.rounds_to_bus_off < 50
        assert outcome.rounds_to_error_passive < outcome.rounds_to_bus_off

    def test_defense_saves_the_victim(self):
        outcome = simulate_busoff(BusOffAttack(), defend=True)
        assert not outcome.victim_bus_off
        assert outcome.attacker_isolated
        assert outcome.detection_round is not None
        assert outcome.detection_round < 10

    def test_no_attack_no_problem(self):
        outcome = simulate_busoff(BusOffAttack(hit_probability=0.0), defend=True)
        assert not outcome.victim_bus_off
        assert outcome.detection_round is None

    def test_weak_attacker_slower_or_fails(self):
        strong = simulate_busoff(BusOffAttack(hit_probability=0.95),
                                 seed_label="w1")
        weak = simulate_busoff(BusOffAttack(hit_probability=0.6),
                               rounds=400, seed_label="w1")
        if weak.victim_bus_off:
            assert weak.rounds_to_bus_off > strong.rounds_to_bus_off

    def test_validation(self):
        with pytest.raises(ValueError):
            BusOffAttack(hit_probability=1.5)
        with pytest.raises(ValueError):
            simulate_busoff(BusOffAttack(), rounds=0)


def _offset_world():
    objects = [WorldObject(1, 10.0, 10.0), WorldObject(2, 35.0, -5.0)]
    vehicles = [CollabVehicle(f"v{i}", x=i * 12.0, y=0.0, noise_sigma_m=0.3)
                for i in range(4)]
    return PerceptionWorld(objects, vehicles)


class TestPositionOffsetInsider:
    def _rounds(self, attacker, world, n=10):
        rounds = []
        for _ in range(n):
            shares = [s for v in world.vehicles[1:] for s in v.sense(world.objects)]
            shares.extend(attacker.malicious_shares(world.objects))
            rounds.append(shares)
        return rounds

    def test_offset_attacker_biases_reports(self):
        world = _offset_world()
        attacker = PositionOffsetAttacker(world.vehicles[0], offset_x=2.0)
        shares = attacker.malicious_shares(world.objects)
        assert shares
        assert all(s.reporter == "v0" for s in shares)

    def test_bias_estimation_identifies_the_attacker(self):
        world = _offset_world()
        attacker = PositionOffsetAttacker(world.vehicles[0], offset_x=2.0,
                                          offset_y=-1.0)
        biases = member_bias_estimates(self._rounds(attacker, world))
        assert "v0" in biases
        bias_x, bias_y = biases["v0"]
        assert bias_x == pytest.approx(2.0, abs=0.8)
        assert bias_y == pytest.approx(-1.0, abs=0.8)

    def test_honest_members_near_zero_bias(self):
        world = _offset_world()
        attacker = PositionOffsetAttacker(world.vehicles[0], offset_x=2.0)
        biases = member_bias_estimates(self._rounds(attacker, world))
        for member in ("v1", "v2", "v3"):
            bias = biases.get(member)
            if bias is not None:
                assert float(np.hypot(*bias)) < 1.2

    def test_attacker_has_largest_bias_magnitude(self):
        world = _offset_world()
        attacker = PositionOffsetAttacker(world.vehicles[0], offset_x=2.5)
        biases = member_bias_estimates(self._rounds(attacker, world))
        magnitudes = {m: float(np.hypot(*b)) for m, b in biases.items()}
        assert max(magnitudes, key=magnitudes.get) == "v0"

    def test_all_honest_no_standout(self):
        world = _offset_world()
        rounds = [world.collect_shares() for _ in range(10)]
        biases = member_bias_estimates(rounds)
        for bias in biases.values():
            assert float(np.hypot(*bias)) < 1.0
