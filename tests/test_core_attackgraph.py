"""Tests for the probabilistic attack-graph analyzer."""

import pytest

from repro.core.attackgraph import AttackGraph, default_hop_probability
from repro.core.entities import Component, Interface, SystemModel
from repro.core.layers import Layer
from repro.core.threats import AccessLevel


def diamond_model(*, secure_upper=False):
    """entry -> {a, b} -> target; the upper path optionally authenticated."""
    model = SystemModel("diamond")
    for name, exposed in (("entry", True), ("a", False), ("b", False),
                          ("target", False)):
        model.add_component(Component(name, Layer.NETWORK, criticality=3,
                                      exposed=exposed))
    model.connect(Interface("entry", "a", "eth", authenticated=secure_upper))
    model.connect(Interface("a", "target", "eth", authenticated=secure_upper))
    model.connect(Interface("entry", "b", "eth"))
    model.connect(Interface("b", "target", "eth"))
    return model


class TestHopProbability:
    def test_authentication_lowers_probability(self):
        open_if = Interface("a", "b", "eth")
        auth_if = Interface("a", "b", "eth", authenticated=True)
        enc_if = Interface("a", "b", "eth", authenticated=True, encrypted=True)
        assert (default_hop_probability(enc_if)
                < default_hop_probability(auth_if)
                < default_hop_probability(open_if))

    def test_access_level_scales(self):
        remote = Interface("a", "b", "eth", AccessLevel.REMOTE)
        physical = Interface("a", "b", "eth", AccessLevel.PHYSICAL)
        assert default_hop_probability(physical) < default_hop_probability(remote)


class TestPaths:
    def test_most_likely_path_found(self):
        graph = AttackGraph(diamond_model())
        path = graph.most_likely_path("target")
        assert path is not None
        assert path.nodes[0] == "entry"
        assert path.nodes[-1] == "target"
        assert 0.0 < path.probability <= 1.0

    def test_path_prefers_unsecured_route(self):
        graph = AttackGraph(diamond_model(secure_upper=True))
        path = graph.most_likely_path("target")
        assert "b" in path.nodes  # the open lower route wins

    def test_probability_is_product_of_hops(self):
        graph = AttackGraph(diamond_model())
        path = graph.most_likely_path("target")
        # Two unauthenticated local-bus hops: (0.8 * 0.6)^2.
        assert path.probability == pytest.approx((0.8 * 0.6) ** 2, rel=1e-6)

    def test_unreachable_target(self):
        model = diamond_model()
        model.add_component(Component("island", Layer.NETWORK))
        graph = AttackGraph(model)
        assert graph.most_likely_path("island") is None

    def test_target_is_entry(self):
        graph = AttackGraph(diamond_model())
        path = graph.most_likely_path("entry", source="entry")
        assert path.probability == 1.0
        assert path.hops == 0

    def test_top_paths_sorted(self):
        graph = AttackGraph(diamond_model(secure_upper=True))
        paths = graph.top_paths("target", k=3)
        assert len(paths) == 2  # both diamond branches
        probs = [p.probability for p in paths]
        assert probs == sorted(probs, reverse=True)


class TestCompromiseProbability:
    def test_redundant_paths_raise_probability(self):
        graph = AttackGraph(diamond_model())
        single = graph.most_likely_path("target").probability
        combined = graph.compromise_probability("target")
        assert combined > single

    def test_hardening_lowers_probability(self):
        open_p = AttackGraph(diamond_model()).compromise_probability("target")
        hardened_p = AttackGraph(
            diamond_model(secure_upper=True)).compromise_probability("target")
        assert hardened_p < open_p


class TestHardeningCut:
    def test_cut_disconnects_target(self):
        model = diamond_model()
        graph = AttackGraph(model)
        cut = graph.minimal_hardening_cut("target")
        assert cut  # something must be hardened
        assert len(cut) <= 2
        # Securing (removing) the cut edges must break reachability.
        import networkx as nx

        g = graph._graph.copy()
        g.remove_edges_from(cut)
        assert not nx.has_path(g, "entry", "target")

    def test_bottleneck_preferred(self):
        # entry -> hub -> {x, y} -> target: the single hub edge is the cut.
        model = SystemModel("bottleneck")
        for name, exposed in (("entry", True), ("hub", False), ("x", False),
                              ("y", False), ("target", False)):
            model.add_component(Component(name, Layer.NETWORK, exposed=exposed))
        model.connect(Interface("entry", "hub", "eth"))
        model.connect(Interface("hub", "x", "eth"))
        model.connect(Interface("hub", "y", "eth"))
        model.connect(Interface("x", "target", "eth"))
        model.connect(Interface("y", "target", "eth"))
        cut = AttackGraph(model).minimal_hardening_cut("target")
        assert cut == {("entry", "hub")}

    def test_no_entry_points_empty_cut(self):
        model = SystemModel("no-entry")
        model.add_component(Component("a", Layer.NETWORK))
        model.add_component(Component("t", Layer.NETWORK))
        model.connect(Interface("a", "t", "eth"))
        assert AttackGraph(model).minimal_hardening_cut("t") == set()

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            AttackGraph(diamond_model()).minimal_hardening_cut("ghost")


class TestOnMaasModel:
    def test_safety_functions_attack_path(self):
        from repro.sos.maas import build_maas_sos

        model = build_maas_sos().to_system_model()
        graph = AttackGraph(model)
        path = graph.most_likely_path("safety-functions")
        assert path is not None
        cut = graph.minimal_hardening_cut("safety-functions")
        assert cut
        # Hardening the full interface set must beat the open model.
        secured = build_maas_sos(secured_interfaces=True).to_system_model()
        assert (AttackGraph(secured).compromise_probability("safety-functions")
                < graph.compromise_probability("safety-functions"))
