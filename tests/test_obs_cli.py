"""The ``python -m repro trace`` subcommand and the trace scenarios.

Pins the PR's acceptance criteria: every trace scenario runs, the JSON
output validates against the documented schema with events from at
least two distinct layers, and usage errors exit 2 (matching the lint
CLI conventions).
"""

import json

import pytest

from repro.__main__ import main
from repro.obs import (run_trace_scenario, trace_scenario_names,
                       validate_trace_dict)
from repro.obs.runtime import OBS, instrumented


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestScenarios:
    def test_all_lint_scenarios_have_trace_counterparts(self):
        from repro.lint import scenario_names

        assert set(trace_scenario_names()) == set(scenario_names())

    def test_unknown_scenario_raises_with_listing(self):
        with pytest.raises(KeyError, match="available"):
            run_trace_scenario("not-a-scenario")

    @pytest.mark.parametrize("name", trace_scenario_names())
    def test_every_scenario_produces_a_trace(self, name):
        with instrumented() as obs:
            result = run_trace_scenario(name)
        assert isinstance(result, dict) and result
        assert obs.tracer.span_count() >= 1
        assert len(obs.events) >= 2

    @pytest.mark.parametrize("name", ["onboard-hardened", "maas-platform"])
    def test_cross_layer_scenarios_span_two_layers(self, name):
        with instrumented() as obs:
            run_trace_scenario(name)
        assert len({event.layer for event in obs.events}) >= 2, name


class TestCliUsageErrors:
    def test_missing_scenario_exits_2_and_lists_names(self, capsys):
        code, _, err = run_cli(capsys, "trace")
        assert code == 2
        assert "onboard-hardened" in err

    def test_unknown_scenario_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "trace", "not-a-scenario")
        assert code == 2
        assert "available" in err


class TestCliOutput:
    def test_hardened_table_exits_zero(self, capsys):
        code, out, _ = run_cli(capsys, "trace", "onboard-hardened")
        assert code == 0
        assert "=== trace: onboard-hardened ===" in out
        assert "span(s)" in out

    def test_json_is_schema_valid_with_two_layers(self, capsys):
        code, out, _ = run_cli(capsys, "trace", "onboard-hardened", "--json")
        assert code == 0
        document = json.loads(out)
        validate_trace_dict(document)
        assert len(document["summary"]["layers"]) >= 2
        assert document["summary"]["events"] >= 2

    def test_json_all_emits_an_array_per_scenario(self, capsys):
        code, out, _ = run_cli(capsys, "trace", "all", "--json")
        assert code == 0
        documents = json.loads(out)
        assert [d["scenario"] for d in documents] == trace_scenario_names()
        for document in documents:
            validate_trace_dict(document)

    def test_timeline_flag_prints_only_the_timeline(self, capsys):
        code, out, _ = run_cli(capsys, "trace", "cariad-breach", "--timeline")
        assert code == 0
        assert "=== timeline: cariad-breach ===" in out
        assert "attack-step" in out
        assert "wall=" not in out

    def test_metrics_flag_appends_the_table(self, capsys):
        code, out, _ = run_cli(capsys, "trace", "onboard-insecure", "--metrics")
        assert code == 0
        assert "ivn.bus.frames_sent" in out

    def test_jsonl_export_round_trips(self, capsys, tmp_path):
        from repro.obs.events import EventLog

        path = tmp_path / "events.jsonl"
        code, _, err = run_cli(capsys, "trace", "pkes-legacy",
                               "--jsonl", str(path))
        assert code == 0
        assert "wrote" in err
        log = EventLog.read_jsonl(path)
        assert len(log) >= 2

    def test_events_capacity_bounds_the_ring(self, capsys):
        code, out, _ = run_cli(capsys, "trace", "onboard-insecure",
                               "--events", "4", "--json")
        assert code == 0
        document = json.loads(out)
        validate_trace_dict(document)
        assert document["summary"]["events"] <= 4

    def test_cli_leaves_instrumentation_disabled(self, capsys):
        run_cli(capsys, "trace", "onboard-hardened")
        assert not OBS.enabled
