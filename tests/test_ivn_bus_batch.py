"""Batched-vs-scalar CAN bus equivalence and fallback tests.

The repo's core invariant — same (seed, scenario) → byte-identical
outputs — must survive the batched fast path, so every test here pins
*exact* equality (not approximate) between the scalar event-loop path
and :meth:`CanBus.run_batch`: identical ``DeliveryRecord`` streams,
identical clocks, identical per-node receive logs.
"""

import numpy as np
import pytest

from repro.core.events import Simulator
from repro.ivn.bus import BusNode, CanBus, DeliveryRecord
from repro.ivn.frames import CanFdFrame, CanFrame, CanXlFrame, frame_shape_key, frame_time_s
from repro.obs.runtime import OBS, instrumented


def _record_tuple(record: DeliveryRecord) -> tuple:
    return (record.sender, record.frame, record.enqueued_at,
            record.started_at, record.completed_at)


def _random_frames(seed: int, n: int) -> list:
    """A seeded mixed burst: classic / FD / XL, random ids and payloads."""
    rng = np.random.default_rng(seed)
    frames: list = []
    for _ in range(n):
        kind = int(rng.integers(0, 3))
        can_id = int(rng.integers(0, 0x7FF))
        if kind == 0:
            payload = bytes(rng.integers(0, 256, int(rng.integers(0, 9))).tolist())
            frames.append(CanFrame(can_id, payload))
        elif kind == 1:
            payload = bytes(rng.integers(0, 256, int(rng.integers(0, 65))).tolist())
            frames.append(CanFdFrame(can_id, payload))
        else:
            payload = bytes(rng.integers(0, 256, int(rng.integers(1, 129))).tolist())
            frames.append(CanXlFrame(can_id, payload))
    return frames


def _build_bus(node_names=("tx", "rx-1", "rx-2")) -> tuple[Simulator, CanBus]:
    sim = Simulator()
    bus = CanBus(sim)
    for name in node_names:
        bus.attach(BusNode(name))
    return sim, bus


def _run_scalar(frames) -> tuple[Simulator, CanBus]:
    sim, bus = _build_bus()
    for frame in frames:
        bus.send("tx", frame)
    sim.run()
    return sim, bus


def _run_batched(frames) -> tuple[Simulator, CanBus]:
    sim, bus = _build_bus()
    bus.send_batch("tx", frames)
    bus.run_batch()
    return sim, bus


def _assert_equivalent(scalar: tuple[Simulator, CanBus],
                       batched: tuple[Simulator, CanBus]) -> None:
    sim_s, bus_s = scalar
    sim_b, bus_b = batched
    assert sim_s.now == sim_b.now
    assert sim_s.processed_events == sim_b.processed_events
    assert len(bus_s.delivered) == len(bus_b.delivered)
    for rec_s, rec_b in zip(bus_s.delivered, bus_b.delivered):
        assert _record_tuple(rec_s) == _record_tuple(rec_b)
    for name in bus_s.nodes:
        got_s = [_record_tuple(r) for r in bus_s.nodes[name].received]
        got_b = [_record_tuple(r) for r in bus_b.nodes[name].received]
        assert got_s == got_b


class TestBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_mixed_burst_is_byte_identical(self, seed):
        frames = _random_frames(seed, 300)
        _assert_equivalent(_run_scalar(frames), _run_batched(frames))

    def test_single_frame(self):
        frames = [CanFrame(0x100, b"\x11" * 8)]
        _assert_equivalent(_run_scalar(frames), _run_batched(frames))

    def test_empty_batch(self):
        sim, bus = _build_bus()
        assert bus.send_batch("tx", []) == 0
        assert bus.run_batch() == 0
        assert sim.now == 0.0

    def test_arbitration_order_priority_then_fifo(self):
        # Idle bus: the first-sent frame transmits immediately; queued
        # contenders then drain lowest-id-first, FIFO among equal ids.
        frames = [CanFrame(0x500, b"a"), CanFrame(0x100, b"b"),
                  CanFrame(0x300, b"c"), CanFrame(0x100, b"d")]
        for runner in (_run_scalar, _run_batched):
            _, bus = runner(frames)
            order = [r.frame.payload for r in bus.delivered]
            assert order == [b"a", b"b", b"d", b"c"]

    def test_batch_after_partial_scalar_run(self):
        """run_batch picks up mid-stream: a frame already in flight (with
        its completion event scheduled) completes at the same instant the
        scalar path would have completed it."""
        frames = _random_frames(3, 60)
        sim_s, bus_s = _run_scalar(frames)

        sim_b, bus_b = _build_bus()
        bus_b.send_batch("tx", frames)
        # Drain half the burst through the event loop, leaving one frame
        # in flight and the rest queued.
        sim_b.run(max_events=30)
        assert bus_b.pending_frames > 0
        bus_b.run_batch()
        _assert_equivalent((sim_s, bus_s), (sim_b, bus_b))

    def test_interleaved_send_and_send_batch(self):
        frames = _random_frames(5, 40)
        sim_s, bus_s = _run_scalar(frames)

        sim_b, bus_b = _build_bus()
        for frame in frames[:10]:
            bus_b.send("tx", frame)
        bus_b.send_batch("tx", frames[10:])
        bus_b.run_batch()
        _assert_equivalent((sim_s, bus_s), (sim_b, bus_b))

    def test_multi_sender_batches(self):
        frames_a = _random_frames(11, 50)
        frames_b = _random_frames(12, 50)

        sim_s, bus_s = _build_bus()
        for frame in frames_a:
            bus_s.send("tx", frame)
        for frame in frames_b:
            bus_s.send("rx-1", frame)
        sim_s.run()

        sim_b, bus_b = _build_bus()
        bus_b.send_batch("tx", frames_a)
        bus_b.send_batch("rx-1", frames_b)
        bus_b.run_batch()
        _assert_equivalent((sim_s, bus_s), (sim_b, bus_b))

    def test_send_batch_requires_attached_sender(self):
        _, bus = _build_bus()
        with pytest.raises(KeyError):
            bus.send_batch("ghost", [CanFrame(0x1, b"")])


class TestScalarFallback:
    def test_receive_callback_forces_fallback(self):
        """A node callback needs per-frame fidelity; run_batch must fall
        back to the event loop and still produce identical results."""
        frames = _random_frames(21, 40)
        seen_scalar: list = []
        seen_batch: list = []

        def build(seen):
            sim = Simulator()
            bus = CanBus(sim)
            bus.attach(BusNode("tx"))
            bus.attach(BusNode("rx", on_receive=lambda r: seen.append(r.frame)))
            return sim, bus

        sim_s, bus_s = build(seen_scalar)
        for frame in frames:
            bus_s.send("tx", frame)
        sim_s.run()

        sim_b, bus_b = build(seen_batch)
        bus_b.send_batch("tx", frames)
        assert not bus_b._batch_eligible()
        bus_b.run_batch()
        assert seen_scalar == seen_batch
        assert sim_s.now == sim_b.now
        assert [_record_tuple(r) for r in bus_s.delivered] == \
               [_record_tuple(r) for r in bus_b.delivered]

    def test_obs_enabled_forces_fallback(self):
        frames = _random_frames(22, 20)
        with instrumented() as obs:
            sim, bus = _build_bus()
            bus.send_batch("tx", frames)
            assert not bus._batch_eligible()
            delivered = bus.run_batch()
            assert delivered == 20
            assert obs.metrics.counter("ivn.bus.batch_fallbacks").value == 1
            assert obs.metrics.counter("ivn.bus.frames_delivered").value == 20
        assert not OBS.enabled

    def test_foreign_live_event_forces_fallback(self):
        sim, bus = _build_bus()
        fired = []
        bus.send_batch("tx", [CanFrame(0x100, b"\x01" * 8)] * 5)
        sim.schedule(1e-5, lambda: fired.append(sim.now))
        assert not bus._batch_eligible()
        bus.run_batch()
        assert fired  # the foreign event interleaved with the burst
        assert len(bus.delivered) == 5

    def test_canceled_foreign_event_keeps_fast_path(self):
        sim, bus = _build_bus()
        bus.send_batch("tx", [CanFrame(0x100, b"\x01" * 8)] * 5)
        sim.schedule(1e-5, lambda: None).cancel()
        assert bus._batch_eligible()
        assert bus.run_batch() == 5


class TestUtilizationWindow:
    def test_includes_in_flight_partial_interval(self):
        """Regression: a mid-transmission query must count the active
        frame's elapsed busy time, not just completed records."""
        sim, bus = _build_bus()
        frame = CanFrame(0x100, b"\x11" * 8)
        duration = frame.transmission_time_s(bus.bitrate_bps)
        bus.send("tx", frame)
        sim.run(until=duration / 2.0)
        assert bus.delivered == []
        assert bus.utilization_window == pytest.approx(1.0)
        sim.run()
        assert bus.utilization_window == pytest.approx(1.0)

    def test_idle_gap_dilutes_utilization(self):
        sim, bus = _build_bus()
        frame = CanFrame(0x100, b"\x11" * 8)
        duration = frame.transmission_time_s(bus.bitrate_bps)
        bus.send("tx", frame)
        sim.run(until=2.0 * duration)
        assert bus.utilization_window == pytest.approx(0.5)

    def test_zero_time_is_zero(self):
        _, bus = _build_bus()
        assert bus.utilization_window == 0.0


class TestFrameTimeMemo:
    def test_shape_key_ignores_id_and_payload_bytes(self):
        assert frame_shape_key(CanFrame(0x1, b"ab")) == \
               frame_shape_key(CanFrame(0x7FE, b"zz"))
        assert frame_shape_key(CanFrame(0x1, b"ab")) != \
               frame_shape_key(CanFrame(0x1, b"abc"))
        assert frame_shape_key(CanFrame(0x1, b"ab", extended=True)) != \
               frame_shape_key(CanFrame(0x1, b"ab"))
        assert frame_shape_key(CanFrame(0x1, b"ab")) != \
               frame_shape_key(CanFdFrame(0x1, b"ab"))

    def test_shape_key_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            frame_shape_key(object())

    def test_memoized_time_matches_direct_computation(self):
        for frame in (CanFrame(0x123, b"\x01" * 8),
                      CanFrame(0x1FFFF, b"\x02" * 4, extended=True)):
            assert frame_time_s(frame, 500e3, 2e6) == \
                   frame.transmission_time_s(500e3)
        fd = CanFdFrame(0x456, b"\x03" * 48)
        assert frame_time_s(fd, 500e3, 2e6) == fd.transmission_time_s(500e3, 2e6)
        xl = CanXlFrame(0x77, b"\x04" * 256)
        assert frame_time_s(xl, 500e3, 10e6) == xl.transmission_time_s(500e3, 10e6)

    def test_memoization_is_per_bitrate(self):
        frame = CanFrame(0x100, b"\x11" * 8)
        assert frame_time_s(frame, 500e3, 2e6) != frame_time_s(frame, 1e6, 2e6)
