"""Tests for signed/linked documents, envelopes, and plug-and-charge flows."""

import hashlib

import pytest

from repro.crypto.x25519 import x25519_base
from repro.ssi.charging import CHARGING_CONTRACT, CertError, Iso15118Pki, SsiChargingFlow
from repro.ssi.documents import DocumentStore, EncryptedEnvelope, SignedDocument
from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.trust import TrustPolicy
from repro.ssi.wallet import Wallet

NOW = 1_700_000_000.0


@pytest.fixture()
def doc_world():
    registry = VerifiableDataRegistry()
    vehicle = Wallet.create("vehicle", registry)
    sensor = Wallet.create("sensor-unit", registry)
    store = DocumentStore(registry)
    return registry, vehicle, sensor, store


class TestSignedDocuments:
    def test_single_document_verifies(self, doc_world):
        _, vehicle, _, store = doc_world
        doc = SignedDocument.create(author_did=str(vehicle.did),
                                    author_key=vehicle.keypair,
                                    doc_type="crash-report",
                                    content={"severity": "minor"})
        digest = store.add(doc)
        assert store.verify_chain(digest)

    def test_linked_chain_verifies(self, doc_world):
        _, vehicle, sensor, store = doc_world
        log = SignedDocument.create(author_did=str(sensor.did),
                                    author_key=sensor.keypair,
                                    doc_type="sensor-log",
                                    content={"samples": 120})
        log_hash = store.add(log)
        report = SignedDocument.create(author_did=str(vehicle.did),
                                       author_key=vehicle.keypair,
                                       doc_type="crash-report",
                                       content={"cause": "unknown"},
                                       links=[log_hash])
        assert store.verify_chain(store.add(report))

    def test_tampered_linked_document_breaks_chain(self, doc_world):
        _, vehicle, sensor, store = doc_world
        log = SignedDocument.create(author_did=str(sensor.did),
                                    author_key=sensor.keypair,
                                    doc_type="sensor-log", content={"v": 1})
        log_hash = store.add(log)
        report = SignedDocument.create(author_did=str(vehicle.did),
                                       author_key=vehicle.keypair,
                                       doc_type="crash-report", content={},
                                       links=[log_hash])
        report_hash = store.add(report)
        # Tamper with the stored log in place.
        tampered = SignedDocument(log.author, log.doc_type, {"v": 999},
                                  log.links, log.signature)
        store._docs[log_hash] = tampered
        assert not store.verify_chain(report_hash)

    def test_dangling_link_rejected(self, doc_world):
        _, vehicle, _, store = doc_world
        orphan = SignedDocument.create(author_did=str(vehicle.did),
                                       author_key=vehicle.keypair,
                                       doc_type="report", content={},
                                       links=["ff" * 32])
        with pytest.raises(KeyError):
            store.add(orphan)

    def test_unknown_author_fails_verification(self, doc_world):
        registry, _, _, store = doc_world
        from repro.ssi.did import KeyPair

        ghost_key = KeyPair.from_seed_label("ghost")
        doc = SignedDocument.create(author_did="did:vreg:ghost",
                                    author_key=ghost_key,
                                    doc_type="report", content={})
        digest = store.add(doc)
        assert not store.verify_chain(digest)


class TestEncryptedEnvelope:
    def _keys(self):
        recipient_secret = hashlib.sha256(b"recipient-x").digest()
        recipient_public = x25519_base(recipient_secret)
        from repro.ssi.did import KeyPair

        sender = KeyPair.from_seed_label("sender")
        return recipient_secret, recipient_public, sender

    def test_seal_open_roundtrip(self):
        recipient_secret, recipient_public, sender = self._keys()
        env = EncryptedEnvelope.seal(b"driving record", recipient_x25519_public=recipient_public,
                                     sender_signing_key=sender)
        assert env.open(recipient_x25519_secret=recipient_secret,
                        sender_ed25519_public=sender.public) == b"driving record"

    def test_payload_confidential(self):
        _, recipient_public, sender = self._keys()
        env = EncryptedEnvelope.seal(b"location-history", recipient_x25519_public=recipient_public,
                                     sender_signing_key=sender)
        assert b"location" not in env.ciphertext

    def test_wrong_recipient_cannot_open(self):
        _, recipient_public, sender = self._keys()
        env = EncryptedEnvelope.seal(b"data", recipient_x25519_public=recipient_public,
                                     sender_signing_key=sender)
        wrong_secret = hashlib.sha256(b"eavesdropper").digest()
        assert env.open(recipient_x25519_secret=wrong_secret,
                        sender_ed25519_public=sender.public) is None

    def test_wrong_sender_key_rejected(self):
        from repro.ssi.did import KeyPair

        recipient_secret, recipient_public, sender = self._keys()
        env = EncryptedEnvelope.seal(b"data", recipient_x25519_public=recipient_public,
                                     sender_signing_key=sender)
        impostor = KeyPair.from_seed_label("impostor")
        assert env.open(recipient_x25519_secret=recipient_secret,
                        sender_ed25519_public=impostor.public) is None


class TestIso15118Pki:
    def _pki(self):
        pki = Iso15118Pki()
        pki.issue("cpo-sub-ca", "v2g-root")
        pki.issue("emsp-sub-ca", "v2g-root")
        pki.issue("station-1", "cpo-sub-ca")
        pki.issue("contract-vehicle-1", "emsp-sub-ca")
        return pki

    def test_chain_verifies(self):
        pki = self._pki()
        assert pki.verify("contract-vehicle-1")
        assert len(pki.chain_to_root("contract-vehicle-1")) == 3

    def test_single_trust_anchor(self):
        assert self._pki().trust_anchor_count == 1

    def test_revocation_only_online(self):
        pki = self._pki()
        pki.revoke("contract-vehicle-1")
        assert not pki.verify("contract-vehicle-1", online=True)
        # Offline the PKI *cannot* see the revocation — the weakness the
        # SSI cached-anchor model shares but makes explicit.
        assert pki.verify("contract-vehicle-1", online=False)

    def test_unknown_subject(self):
        pki = self._pki()
        assert not pki.verify("ghost")
        with pytest.raises(CertError):
            pki.issue("x", "unknown-ca")


@pytest.fixture()
def charging_world():
    registry = VerifiableDataRegistry()
    policy = TrustPolicy(registry)
    flow = SsiChargingFlow(registry, policy)
    provider = Wallet.create("emsp-green", registry)
    vehicle = Wallet.create("ev-1", registry)
    policy.add_anchor(CHARGING_CONTRACT, str(provider.did))
    flow.subscribe(vehicle, provider, now=NOW)
    return registry, policy, flow, provider, vehicle


class TestSsiCharging:
    def test_online_authorization(self, charging_world):
        _, _, flow, _, vehicle = charging_world
        auth = flow.authorize(vehicle, now=NOW + 100)
        assert auth.authorized
        assert auth.reason == "ok"

    def test_no_contract_denied(self, charging_world):
        registry, _, flow, _, _ = charging_world
        stranger = Wallet.create("ev-stranger", registry)
        auth = flow.authorize(stranger, now=NOW + 100)
        assert not auth.authorized

    def test_unanchored_provider_denied(self, charging_world):
        registry, _, flow, _, _ = charging_world
        rogue_provider = Wallet.create("emsp-rogue", registry)
        victim = Wallet.create("ev-2", registry)
        flow.subscribe(victim, rogue_provider, now=NOW)
        auth = flow.authorize(victim, now=NOW + 100)
        assert not auth.authorized

    def test_offline_requires_cached_docs(self, charging_world):
        _, _, flow, provider, vehicle = charging_world
        auth = flow.authorize(vehicle, now=NOW + 100, offline=True)
        assert not auth.authorized
        flow.cache_for_offline([str(vehicle.did), str(provider.did)])
        auth = flow.authorize(vehicle, now=NOW + 100, offline=True)
        assert auth.authorized

    def test_offline_misses_revocation(self, charging_world):
        registry, _, flow, provider, vehicle = charging_world
        contract = vehicle.find(CHARGING_CONTRACT)[0]
        registry.revoke_credential(contract.credential_id, provider.did)
        assert not flow.authorize(vehicle, now=NOW + 100).authorized
        flow.cache_for_offline([str(vehicle.did), str(provider.did)])
        # Documented trade-off: offline acceptance of revoked contracts.
        assert flow.authorize(vehicle, now=NOW + 100, offline=True).authorized

    def test_roaming_is_one_anchor_addition(self, charging_world):
        registry, policy, flow, _, _ = charging_world
        partner = Wallet.create("emsp-partner", registry)
        roamer = Wallet.create("ev-roamer", registry)
        flow.subscribe(roamer, partner, now=NOW)
        assert not flow.authorize(roamer, now=NOW + 1).authorized
        policy.add_anchor(CHARGING_CONTRACT, str(partner.did))
        assert flow.authorize(roamer, now=NOW + 1).authorized

    def test_ssi_fewer_messages_than_pki(self, charging_world):
        _, _, flow, _, _ = charging_world
        assert flow.message_count() < Iso15118Pki().message_count()
