"""Ctrl-C during a sweep: partial, schema-valid reports (regression).

Before the campaign-engine work, a ``KeyboardInterrupt`` mid-sweep
escaped :meth:`SweepRunner.run` and every already-completed result was
lost with it.  The contract now: completed results survive, the report
carries ``interrupted: true``, validates against the sweep schema, and
exits 130.
"""

import json
import sys

import pytest

from repro.experiments import Experiment
from repro.runner import SweepRunner
from repro.runner.report import validate_sweep_dict

SCRIPT = "print('=== {exp_id} table ===')\n"


def make_runner(tmp_path, count=4, **kwargs):
    experiments = []
    for i in range(count):
        name = f"syn{i}.py"
        (tmp_path / name).write_text(SCRIPT.format(exp_id=f"SYN{i}"))
        experiments.append(Experiment(f"SYN{i}", "-", "synthetic", name))
    kwargs.setdefault("use_cache", False)
    kwargs.setdefault("timeout_s", 30.0)
    return SweepRunner(experiments, bench_dir=tmp_path,
                       command_template=(sys.executable, "{bench}"),
                       digest_paths=[], **kwargs)


def interrupt_after(runner, n):
    """Deliver a KeyboardInterrupt once n live results have recorded."""
    original = runner._record
    seen = {"n": 0}

    def record(result, root):
        original(result, root)
        seen["n"] += 1
        if seen["n"] >= n:
            raise KeyboardInterrupt

    runner._record = record


class TestSweepInterrupt:
    def test_completed_results_survive_the_interrupt(self, tmp_path):
        runner = make_runner(tmp_path, jobs=1)
        interrupt_after(runner, 2)
        report = runner.run()  # must NOT re-raise
        assert report.interrupted
        assert len(report.results) == 2
        assert all(r.status == "passed" for r in report.results)

    def test_partial_report_is_schema_valid_and_flagged(self, tmp_path):
        runner = make_runner(tmp_path, jobs=1)
        interrupt_after(runner, 1)
        document = runner.run().to_json_dict()
        validate_sweep_dict(document)
        assert document["sweep"]["interrupted"] is True
        assert len(document["experiments"]) == 1

    def test_interrupted_report_exits_130(self, tmp_path):
        runner = make_runner(tmp_path, jobs=1)
        interrupt_after(runner, 1)
        assert runner.run().exit_code() == 130

    def test_interrupt_beats_failure_in_exit_code(self, tmp_path):
        runner = make_runner(tmp_path, jobs=1, retry=False)
        (tmp_path / "syn0.py").write_text("import sys; sys.exit(3)\n")
        interrupt_after(runner, 1)
        report = runner.run()
        assert any(r.status == "failed" for r in report.results)
        assert report.exit_code() == 130  # interrupt outranks failure

    def test_table_marks_partial_results(self, tmp_path):
        runner = make_runner(tmp_path, jobs=1)
        interrupt_after(runner, 1)
        assert "[interrupted — partial results]" in runner.run().to_table()

    def test_uninterrupted_sweep_is_unchanged(self, tmp_path):
        report = make_runner(tmp_path, jobs=2).run()
        assert not report.interrupted
        document = report.to_json_dict()
        validate_sweep_dict(document)
        assert document["sweep"]["interrupted"] is False
        assert report.exit_code() == 0
        flat = json.dumps(document)
        assert flat.count('"interrupted"') == 1


class TestValidatorCoversInterrupted:
    def test_non_bool_interrupted_rejected(self, tmp_path):
        document = make_runner(tmp_path, count=1, jobs=1).run().to_json_dict()
        document["sweep"]["interrupted"] = "no"
        with pytest.raises(Exception, match="interrupted"):
            validate_sweep_dict(document)
