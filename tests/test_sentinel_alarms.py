"""Alarm state machines: hysteresis, hard gates, time-based clearing."""

import pytest

from repro.sentinel import AlarmMachine, AlarmState
from repro.sentinel.detectors import Signal


def soft(t, risk=0.6):
    return Signal(t, "ecu", "can-rate", risk, False, "soft evidence")


def hard(t):
    return Signal(t, "ecu", "can-rate", 1.0, True, "saturated bus")


class TestLadder:
    def test_starts_idle_with_no_history(self):
        machine = AlarmMachine("ecu", "can-rate")
        assert machine.state is AlarmState.IDLE
        assert machine.transitions == []
        assert machine.first_alarm_t is None

    def test_single_trigger_does_not_page(self):
        machine = AlarmMachine("ecu", "can-rate", suspect_after=2)
        assert machine.trigger(soft(0.0)) is None
        assert machine.state is AlarmState.IDLE

    def test_consecutive_triggers_climb_to_suspect_then_alarm(self):
        machine = AlarmMachine("ecu", "can-rate", suspect_after=2,
                               alarm_after=4)
        states = [machine.trigger(soft(float(t))) for t in range(4)]
        assert states[0] is None
        assert states[1].state is AlarmState.SUSPECT
        assert states[2] is None
        assert states[3].state is AlarmState.ALARM
        assert machine.first_alarm_t == 3.0

    def test_alarm_state_absorbs_further_triggers(self):
        machine = AlarmMachine("ecu", "can-rate", suspect_after=1,
                               alarm_after=1)
        machine.trigger(soft(0.0))   # IDLE -> SUSPECT
        machine.trigger(soft(1.0))   # SUSPECT -> ALARM
        assert machine.state is AlarmState.ALARM
        assert machine.trigger(soft(2.0)) is None
        assert len(machine.transitions) == 2

    def test_hard_signal_jumps_straight_to_alarm(self):
        machine = AlarmMachine("ecu", "can-rate")
        transition = machine.trigger(hard(2.0))
        assert transition.state is AlarmState.ALARM
        assert "hard signal" in transition.reason
        assert machine.first_alarm_t == 2.0


class TestQuietAndClearing:
    def test_quiet_tick_resets_the_streak_immediately(self):
        # Hysteresis counts *consecutive* ticks: sparse triggers at 50%
        # duty cycle must never accumulate to an alarm.
        machine = AlarmMachine("ecu", "can-rate", suspect_after=2,
                               alarm_after=4)
        for t in range(10):
            if t % 2 == 0:
                machine.trigger(soft(float(t)))
            else:
                machine.quiet(float(t))
        assert machine.state is AlarmState.IDLE
        assert machine.first_alarm_t is None

    def test_state_falls_back_only_after_clear_timeout(self):
        machine = AlarmMachine("ecu", "can-rate", suspect_after=1,
                               alarm_after=1, clear_after_s=4.0)
        machine.trigger(hard(0.0))
        assert machine.state is AlarmState.ALARM
        assert machine.quiet(1.0) is None          # quiet, but too recent
        assert machine.state is AlarmState.ALARM
        transition = machine.quiet(4.0)            # 4s quiet -> CLEARED
        assert transition.state is AlarmState.CLEARED
        assert "quiet" in transition.reason

    def test_suspect_falls_back_to_idle(self):
        machine = AlarmMachine("ecu", "can-rate", suspect_after=1,
                               alarm_after=9, clear_after_s=2.0)
        machine.trigger(soft(0.0))
        assert machine.state is AlarmState.SUSPECT
        assert machine.quiet(2.0).state is AlarmState.IDLE

    def test_quiet_before_any_trigger_is_a_noop(self):
        machine = AlarmMachine("ecu", "can-rate")
        assert machine.quiet(10.0) is None
        assert machine.transitions == []

    def test_cleared_machine_reenters_warm_at_suspect(self):
        machine = AlarmMachine("ecu", "can-rate", suspect_after=2,
                               alarm_after=4, clear_after_s=1.0)
        machine.trigger(hard(0.0))
        machine.quiet(1.0)
        assert machine.state is AlarmState.CLEARED
        # one trigger suffices after a clear (IDLE would need two)
        transition = machine.trigger(soft(2.0))
        assert transition.state is AlarmState.SUSPECT
        assert "re-offense" in transition.reason


class TestValidationAndReporting:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AlarmMachine("s", "d", suspect_after=0)
        with pytest.raises(ValueError):
            AlarmMachine("s", "d", suspect_after=3, alarm_after=2)
        with pytest.raises(ValueError):
            AlarmMachine("s", "d", clear_after_s=0.0)

    def test_to_dict_shape(self):
        machine = AlarmMachine("ecu", "can-rate")
        machine.trigger(hard(5.0))
        document = machine.to_dict()
        assert document == {"source": "ecu", "detector": "can-rate",
                            "finalState": "alarm", "transitions": 1,
                            "firstAlarmT": 5.0}

    def test_transition_to_dict_rounds_risk(self):
        machine = AlarmMachine("ecu", "can-rate", suspect_after=1,
                               alarm_after=1)
        transition = machine.trigger(soft(0.0, risk=0.123456))
        assert transition.to_dict()["risk"] == 0.1235
