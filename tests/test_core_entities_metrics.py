"""Tests for the system model, attack-surface metrics, and analyzer."""

import pytest

from repro.core.analysis import LayeredSecurityAnalyzer, ablate_layers
from repro.core.entities import Component, Interface, SystemModel
from repro.core.layers import Layer
from repro.core.metrics import (
    attack_surface,
    criticality_weighted_exposure,
    defense_coverage,
    layer_synergy,
)
from repro.core.threats import AccessLevel, default_catalog


def toy_vehicle_model() -> SystemModel:
    """Telematics -> gateway -> brake ECU chain plus an isolated sensor."""
    model = SystemModel("toy-vehicle")
    model.add_component(Component("telematics", Layer.NETWORK, criticality=2, exposed=True))
    model.add_component(Component("gateway", Layer.NETWORK, criticality=3))
    model.add_component(Component("brake-ecu", Layer.NETWORK, criticality=5))
    model.add_component(Component("lidar", Layer.PHYSICAL, criticality=4))
    model.connect(Interface("telematics", "gateway", "ethernet"))
    model.connect(Interface("gateway", "brake-ecu", "can"))
    model.connect(Interface("lidar", "gateway", "ethernet"))
    return model


class TestSystemModel:
    def test_duplicate_component_rejected(self):
        model = toy_vehicle_model()
        with pytest.raises(ValueError):
            model.add_component(Component("gateway", Layer.NETWORK))

    def test_connect_requires_known_endpoints(self):
        model = toy_vehicle_model()
        with pytest.raises(KeyError):
            model.connect(Interface("gateway", "ghost", "can"))

    def test_criticality_bounds(self):
        with pytest.raises(ValueError):
            Component("x", Layer.NETWORK, criticality=6)
        with pytest.raises(ValueError):
            Component("x", Layer.NETWORK, criticality=0)

    def test_reachability_follows_direction(self):
        model = toy_vehicle_model()
        assert model.reachable_from("telematics") == {"telematics", "gateway", "brake-ecu"}
        assert model.reachable_from("brake-ecu") == {"brake-ecu"}

    def test_unsecured_reachability_blocked_by_authentication(self):
        model = toy_vehicle_model()
        # Re-build with an authenticated CAN hop: attacker stops at gateway.
        secured = SystemModel("secured")
        for c in model.components():
            secured.add_component(c)
        secured.connect(Interface("telematics", "gateway", "ethernet"))
        secured.connect(Interface("gateway", "brake-ecu", "can", authenticated=True))
        reach = secured.reachable_from("telematics", only_unsecured=True)
        assert "brake-ecu" not in reach
        assert "gateway" in reach

    def test_attack_paths(self):
        model = toy_vehicle_model()
        paths = model.attack_paths("telematics", "brake-ecu")
        assert paths == [["telematics", "gateway", "brake-ecu"]]

    def test_entry_points_and_exposure(self):
        model = toy_vehicle_model()
        assert [c.name for c in model.entry_points()] == ["telematics"]
        assert model.exposure_of("brake-ecu") == 1
        assert model.exposure_of("lidar") == 0


class TestMetrics:
    def test_attack_surface_counts(self):
        report = attack_surface(toy_vehicle_model())
        assert report.entry_points == 1
        assert report.total_interfaces == 3
        assert report.unsecured_interfaces == 3
        assert report.reachable_components == 3  # telematics, gateway, brake-ecu
        assert report.reachable_critical == 1  # brake-ecu
        assert report.unsecured_fraction == 1.0

    def test_securing_interfaces_shrinks_surface(self):
        model = SystemModel("hardened")
        model.add_component(Component("tcu", Layer.NETWORK, exposed=True))
        model.add_component(Component("ecu", Layer.NETWORK, criticality=5))
        model.connect(Interface("tcu", "ecu", "ethernet", authenticated=True))
        report = attack_surface(model)
        assert report.reachable_components == 1  # only the entry point itself
        assert report.reachable_critical == 0

    def test_weighted_exposure_monotone_in_connectivity(self):
        sparse = SystemModel("sparse")
        sparse.add_component(Component("a", Layer.NETWORK, exposed=True))
        sparse.add_component(Component("b", Layer.NETWORK, criticality=5))
        base = criticality_weighted_exposure(sparse)
        sparse.connect(Interface("a", "b", "eth"))
        assert criticality_weighted_exposure(sparse) > base

    def test_defense_coverage_bounds(self):
        cat = default_catalog()
        assert defense_coverage(cat) == 1.0
        assert defense_coverage(cat, set()) == 0.0

    def test_layer_synergy_all_enabled(self):
        cat = default_catalog()
        synergy = layer_synergy(cat)
        assert all(v == 1.0 for v in synergy.values())


class TestAnalyzer:
    def test_assessment_with_all_defenses(self):
        analyzer = LayeredSecurityAnalyzer(default_catalog())
        assessment = analyzer.assess()
        assert assessment.overall_coverage == 1.0
        assert assessment.residual_attacks == ()

    def test_assessment_with_no_defenses(self):
        cat = default_catalog()
        analyzer = LayeredSecurityAnalyzer(cat)
        assessment = analyzer.assess(set())
        assert assessment.overall_coverage == 0.0
        assert len(assessment.residual_attacks) == len(cat.attacks)

    def test_single_layer_defense_leaves_other_layers_open(self):
        cat = default_catalog()
        analyzer = LayeredSecurityAnalyzer(cat)
        network_only = {d.name for d in cat.defenses_on_layer(Layer.NETWORK)}
        assessment = analyzer.assess(network_only)
        assert assessment.per_layer[Layer.NETWORK].coverage == 1.0
        assert assessment.per_layer[Layer.PHYSICAL].coverage == 0.0
        assert assessment.weakest_layer != Layer.NETWORK

    def test_ablation_is_monotone(self):
        rows = ablate_layers(default_catalog())
        residuals = [r[1] for r in rows]
        coverages = [r[2] for r in rows]
        assert residuals == sorted(residuals, reverse=True)
        assert coverages == sorted(coverages)
        assert residuals[-1] == 0
        assert coverages[-1] == 1.0

    def test_exploitable_by_attacker_capability(self):
        cat = default_catalog()
        analyzer = LayeredSecurityAnalyzer(cat)
        remote_only = analyzer.exploitable_by(0, set())
        everyone = analyzer.exploitable_by(4, set())
        assert len(remote_only) < len(everyone)
        assert all(a.access == AccessLevel.REMOTE for a in remote_only)

    def test_synergy_table_shape(self):
        analyzer = LayeredSecurityAnalyzer(default_catalog())
        table = analyzer.synergy_table()
        assert len(table) == len(Layer)
        assert all(isinstance(t, str) and 0 <= c <= 1 for t, c in table)
