"""The ``python -m repro lint`` subcommand and the shipped scenarios.

Pins the PR's acceptance criteria: the intentionally-insecure scenarios
flag a wide set of distinct rules, the hardened onboard scenario exits
0, and the JSON output validates against the documented schema.
"""

import json

import pytest

from repro.__main__ import main
from repro.lint import (Linter, build_scenario, scenario_names,
                        validate_report_dict)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestScenarios:
    def test_at_least_three_scenarios_registered(self):
        assert len(scenario_names()) >= 3

    def test_unknown_scenario_raises_with_listing(self):
        with pytest.raises(KeyError, match="available"):
            build_scenario("not-a-scenario")

    def test_insecure_setups_flag_many_distinct_rules(self):
        linter = Linter()
        flagged = set()
        for name in ("pkes-legacy", "cariad-breach"):
            flagged |= linter.run(build_scenario(name)).finding_rule_ids()
        assert len(flagged) >= 8, sorted(flagged)

    def test_hardened_onboard_is_clean(self):
        report = Linter().run(build_scenario("onboard-hardened"))
        assert report.findings == (), report.to_table()


class TestCli:
    def test_hardened_exits_zero(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "onboard-hardened")
        assert code == 0
        assert "clean" in out

    def test_insecure_exits_nonzero(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "onboard-insecure")
        assert code == 1
        assert "IVN001" in out

    def test_gate_none_reports_without_failing(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "cariad-breach", "--gate", "none")
        assert code == 0
        assert "DAT001" in out

    def test_gate_critical_passes_medium_only_target(self, capsys):
        code, _, _ = run_cli(capsys, "lint", "pkes-legacy", "--gate", "critical")
        assert code == 1  # pkes-legacy includes critical SEC002/FLOW001 findings
        code, _, _ = run_cli(capsys, "lint", "pkes-legacy",
                             "--disable", "SEC002,FLOW001,RT001",
                             "--gate", "critical")
        assert code == 0

    def test_json_output_validates_against_schema(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "cariad-breach", "--json")
        assert code == 1
        document = json.loads(out)
        validate_report_dict(document)
        assert document["target"] == "cariad-breach"
        assert document["summary"]["total"] >= 8
        assert {r["id"] for r in document["rules"]} \
            == {r.rule_id for r in Linter().rules}

    def test_disable_removes_rule(self, capsys):
        _, out, _ = run_cli(capsys, "lint", "onboard-insecure",
                            "--disable", "IVN001,IVN003")
        assert "IVN001" not in out
        assert "IVN003" not in out
        assert "IVN002" in out

    def test_write_then_apply_baseline(self, capsys, tmp_path):
        path = tmp_path / "baseline.json"
        code, out, _ = run_cli(capsys, "lint", "pkes-legacy",
                               "--write-baseline", str(path))
        assert code == 0
        assert path.exists()
        code, out, _ = run_cli(capsys, "lint", "pkes-legacy",
                               "--baseline", str(path))
        assert code == 0
        assert "baselined" in out

    def test_write_baseline_all_merges_every_scenario(self, capsys, tmp_path):
        # regression: the old loop wrote the baseline once per scenario
        # to the same path, keeping only the *last* scenario's entries
        merged_path = tmp_path / "all.json"
        code, out, _ = run_cli(capsys, "lint", "all",
                               "--write-baseline", str(merged_path))
        assert code == 0
        assert "scenario(s)" in out
        merged = json.loads(merged_path.read_text())
        assert merged["target"] == "all"

        single_path = tmp_path / "pkes.json"
        run_cli(capsys, "lint", "pkes-legacy",
                "--write-baseline", str(single_path))
        single = json.loads(single_path.read_text())
        merged_prints = {e["fingerprint"] for e in merged["suppressions"]}
        single_prints = {e["fingerprint"] for e in single["suppressions"]}
        assert single_prints < merged_prints  # strict superset across scenarios

        # the merged baseline suppresses every scenario's findings
        code, _, _ = run_cli(capsys, "lint", "all",
                             "--baseline", str(merged_path))
        assert code == 0

    def test_lint_all_covers_every_scenario(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "all", "--gate", "none")
        assert code == 0
        for name in scenario_names():
            assert name in out

    def test_rules_listing(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "--rules")
        assert code == 0
        for rule in Linter().rules:
            assert rule.rule_id in out

    def test_missing_scenario_is_usage_error(self, capsys):
        code, _, err = run_cli(capsys, "lint")
        assert code == 2
        assert "scenario" in err

    def test_unknown_scenario_is_usage_error(self, capsys):
        code, _, err = run_cli(capsys, "lint", "bogus")
        assert code == 2
        assert "unknown scenario" in err
