"""Tests for LRP distance bounding, TWR algebra, PKES, and collision avoidance."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.attacks import RelayAttack
from repro.phy.collision import (
    FusionPipeline,
    GhostObjectAttack,
    ObjectRemovalAttack,
    Sensor,
    SensorKind,
)
from repro.phy.lrp import DistanceBoundingSession, attack_success_probability
from repro.phy.pkes import PkesSystem
from repro.phy.ranging import ds_twr, ss_twr

KEY = b"\x77" * 16


class TestDistanceBounding:
    def test_honest_prover_in_range_accepted(self):
        session = DistanceBoundingSession(KEY, rounds=32)
        result = session.run_honest(2.0, distance_bound_m=5.0)
        assert result.accepted
        assert result.response_errors == 0
        assert result.measured_distance_m == pytest.approx(2.0, abs=1e-6)

    def test_honest_prover_out_of_range_rejected(self):
        session = DistanceBoundingSession(KEY, rounds=32)
        result = session.run_honest(20.0, distance_bound_m=5.0)
        assert not result.accepted

    def test_early_reply_attack_mostly_fails(self):
        session = DistanceBoundingSession(KEY, rounds=32, seed_label="atk")
        successes = sum(
            session.run_early_reply_attack(
                50.0, claimed_distance_m=2.0
            ).accepted
            for _ in range(20)
        )
        # Analytic success is 2^-32 per attempt; 20 attempts ~ never.
        assert successes == 0

    def test_attack_errors_scale_with_rounds(self):
        session = DistanceBoundingSession(KEY, rounds=64, seed_label="err")
        result = session.run_early_reply_attack(50.0, claimed_distance_m=2.0)
        # ~half the guesses are wrong.
        assert 16 <= result.response_errors <= 48

    def test_pulse_randomization_increases_errors(self):
        plain = DistanceBoundingSession(KEY, rounds=64, seed_label="pr")
        randomized = DistanceBoundingSession(
            KEY, rounds=64, pulse_randomization=True, position_space=8,
            seed_label="pr",
        )
        err_plain = plain.run_early_reply_attack(50.0, claimed_distance_m=2.0).response_errors
        err_rand = randomized.run_early_reply_attack(50.0, claimed_distance_m=2.0).response_errors
        assert err_rand > err_plain

    def test_claimed_distance_must_be_shorter(self):
        session = DistanceBoundingSession(KEY)
        with pytest.raises(ValueError):
            session.run_early_reply_attack(5.0, claimed_distance_m=10.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DistanceBoundingSession(KEY, rounds=0)
        with pytest.raises(ValueError):
            DistanceBoundingSession(KEY, position_space=0)


class TestAttackSuccessProbability:
    def test_halves_per_round(self):
        assert attack_success_probability(1) == pytest.approx(0.5)
        assert attack_success_probability(8) == pytest.approx(2.0**-8)

    def test_error_tolerance_increases_success(self):
        strict = attack_success_probability(16, max_errors=0)
        tolerant = attack_success_probability(16, max_errors=4)
        assert tolerant > strict

    def test_pulse_randomization_reduces_success(self):
        base = attack_success_probability(8)
        hardened = attack_success_probability(8, pulse_randomization=True, position_space=8)
        assert hardened < base
        assert hardened == pytest.approx((0.5 / 8.0) ** 8)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=64))
    def test_probability_in_unit_interval(self, rounds):
        p = attack_success_probability(rounds, max_errors=min(2, rounds - 1) if rounds > 1 else 0)
        assert 0.0 <= p <= 1.0

    def test_monotone_decreasing_in_rounds(self):
        probs = [attack_success_probability(n) for n in range(1, 20)]
        assert all(a > b for a, b in zip(probs, probs[1:]))


class TestTwr:
    def test_ss_twr_exact_without_drift(self):
        m = ss_twr(25.0)
        assert m.error_m == pytest.approx(0.0, abs=1e-9)

    def test_ss_twr_biased_by_drift(self):
        m = ss_twr(25.0, responder_drift_ppm=20.0, reply_time_s=300e-6)
        # bias ~ drift * reply/2 * c ~ 0.9 m for 20 ppm, 300 us.
        assert abs(m.error_m) > 0.5

    def test_ds_twr_cancels_drift(self):
        m = ds_twr(25.0, responder_drift_ppm=20.0)
        assert abs(m.error_m) < 0.01

    def test_relay_only_adds_distance(self):
        m = ds_twr(25.0, extra_path_m=30.0)
        assert m.measured_distance_m > 25.0 + 29.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            ss_twr(-1.0)
        with pytest.raises(ValueError):
            ds_twr(1.0, extra_path_m=-1.0)


class TestPkes:
    def test_legitimate_unlock_near(self):
        for policy in ("lf-rssi", "uwb-hrp", "uwb-lrp"):
            system = PkesSystem(policy=policy)
            assert system.try_unlock(1.0).unlocked, policy

    def test_no_unlock_when_fob_far(self):
        for policy in ("lf-rssi", "uwb-hrp", "uwb-lrp"):
            system = PkesSystem(policy=policy)
            assert not system.try_unlock(50.0).unlocked, policy

    def test_relay_defeats_legacy_rssi(self):
        system = PkesSystem(policy="lf-rssi")
        assert system.relay_attack_succeeds(50.0)

    @pytest.mark.parametrize("policy", ["uwb-hrp", "uwb-lrp"])
    def test_relay_fails_against_tof_ranging(self, policy):
        system = PkesSystem(policy=policy)
        assert not system.relay_attack_succeeds(50.0)

    def test_relay_cannot_reduce_distance(self):
        relay = RelayAttack(cable_length_m=100.0)
        assert relay.effective_distance_m(40.0) > 140.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PkesSystem(policy="bluetooth")
        with pytest.raises(ValueError):
            PkesSystem(unlock_range_m=0.0)
        system = PkesSystem()
        with pytest.raises(ValueError):
            system.try_unlock(-1.0)


class TestCollisionAvoidance:
    def test_honest_scene_perceived(self):
        pipeline = FusionPipeline(quorum=2)
        report = pipeline.perceive([15.0, 40.0])
        assert report.missed_obstacles == 0
        assert report.false_obstacles == 0
        assert len(report.confirmed_objects_m) == 2

    def test_single_sensor_ghost_rejected_by_quorum(self):
        pipeline = FusionPipeline(quorum=2)
        attack = GhostObjectAttack(SensorKind.LIDAR, ghost_distance_m=8.0)
        report = pipeline.perceive([40.0], attacks=[attack])
        assert report.false_obstacles == 0
        assert report.rejected_detections >= 1

    def test_quorum_one_is_fooled_by_ghost(self):
        pipeline = FusionPipeline(quorum=1)
        attack = GhostObjectAttack(SensorKind.LIDAR, ghost_distance_m=8.0)
        report = pipeline.perceive([40.0], attacks=[attack])
        assert report.false_obstacles >= 1

    def test_multi_sensor_ghost_needs_secure_corroboration(self):
        # Attacker spoofs ghost into all three spoofable modalities:
        # quorum alone is fooled, secure-ranging corroboration is not.
        attacks = [
            GhostObjectAttack(SensorKind.LIDAR, 8.0),
            GhostObjectAttack(SensorKind.RADAR, 8.0),
            GhostObjectAttack(SensorKind.CAMERA, 8.0),
        ]
        naive = FusionPipeline(quorum=2)
        assert naive.perceive([40.0], attacks=attacks).false_obstacles >= 1
        secured = FusionPipeline(quorum=2, require_secure_corroboration=True)
        assert secured.perceive([40.0], attacks=attacks).false_obstacles == 0

    def test_removal_attack_on_one_sensor_not_enough(self):
        pipeline = FusionPipeline(quorum=2)
        attack = ObjectRemovalAttack(SensorKind.LIDAR, target_distance_m=20.0)
        report = pipeline.perceive([20.0], attacks=[attack])
        assert report.missed_obstacles == 0

    def test_secure_ranging_not_spoofable(self):
        sensor = Sensor(SensorKind.SECURE_RANGING, spoofable=False)
        attack = GhostObjectAttack(SensorKind.SECURE_RANGING, 5.0)
        detections = sensor.observe([30.0])
        assert attack.apply(sensor, detections) == detections

    def test_quorum_validation(self):
        with pytest.raises(ValueError):
            FusionPipeline(quorum=0)
