"""The RT rule family through the ordinary lint machinery."""

import pytest

from repro.lint import Linter, build_scenario
from repro.lint.engine import Severity
from repro.redteam import RT_RULES


def rt_report(name):
    return Linter(RT_RULES).run(build_scenario(name))


class TestRtFamily:
    def test_four_rules_with_stable_ids(self):
        assert [r.rule_id for r in RT_RULES] == ["RT001", "RT002",
                                                 "RT003", "RT004"]

    def test_rt001_critical_on_pkes_legacy(self):
        report = rt_report("pkes-legacy")
        assert "RT001" in report.finding_rule_ids()
        finding = next(f for f in report.findings if f.rule_id == "RT001")
        assert finding.severity == Severity.CRITICAL
        assert finding.subject == "keyfob=>immobilizer"
        # the message carries the ranked chain with per-step defenses
        assert "defeated by:" in finding.message
        assert "[1]" in finding.message

    def test_rt002_fires_on_cariad_datastore(self):
        report = rt_report("cariad-breach")
        assert "RT002" in report.finding_rule_ids()

    def test_rt003_fires_on_disruptable_ecu(self):
        report = rt_report("onboard-insecure")
        assert "RT003" in report.finding_rule_ids()

    def test_rt004_fires_on_cross_layer_campaign(self):
        report = rt_report("pkes-legacy")
        assert "RT004" in report.finding_rule_ids()

    def test_hardened_is_rt_clean(self):
        assert rt_report("onboard-hardened").findings == ()

    @pytest.mark.parametrize("name", ["pkes-legacy", "onboard-insecure",
                                      "cariad-breach", "maas-platform"])
    def test_every_insecure_scenario_has_rt_findings(self, name):
        assert rt_report(name).findings

    def test_fingerprints_stable_across_runs(self):
        first = {f.fingerprint for f in rt_report("pkes-legacy").findings}
        second = {f.fingerprint for f in rt_report("pkes-legacy").findings}
        assert first == second

    def test_subjects_are_entry_to_sink_labels(self):
        for name in ("pkes-legacy", "cariad-breach"):
            for finding in rt_report(name).findings:
                assert "=>" in finding.subject

    def test_rt_rules_join_the_default_catalog(self):
        default_ids = {r.rule_id for r in Linter().rules}
        assert {"RT001", "RT002", "RT003", "RT004"} <= default_ids
