"""The typed attack library: instantiation conditions and invariants.

Every attack must be a *conditional* instantiation — present exactly
when the scenario configures the weakness it abuses — with unique ids,
positive costs, and movement steps confined to open flow edges.  The
library is the planner's ground truth, so holes or phantom attacks here
become analyzer disagreements downstream.
"""

import pytest

from repro.flow import analyze
from repro.lint import build_scenario
from repro.redteam import TECHNIQUES, build_attack_library
from repro.redteam.capability import CONTROL, control

ALL_SCENARIOS = ["pkes-legacy", "onboard-insecure", "onboard-hardened",
                 "cariad-breach", "maas-platform"]


def library_for(name):
    target = build_scenario(name)
    return build_attack_library(target, analyze(target))


class TestLibraryInvariants:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_ids_unique_and_sorted(self, name):
        library = library_for(name)
        ids = [a.attack_id for a in library]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_costs_positive_and_techniques_cataloged(self, name):
        for attack in library_for(name):
            assert attack.cost > 0
            assert attack.technique in TECHNIQUES
            name_text, paper_ref = TECHNIQUES[attack.technique]
            assert attack.name == name_text
            assert attack.paper_ref == paper_ref
            assert attack.defense  # every step names its breaking defense

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_movement_attacks_only_on_open_edges(self, name):
        target = build_scenario(name)
        result = analyze(target)
        open_pairs = {(e.src, e.dst) for e in result.graph.open_edges()}
        for attack in build_attack_library(target, result):
            if attack.is_entry:
                continue
            # a movement/availability attack always requires control of
            # a node it starts from, over an edge flow also calls open
            sources = {c.node for c in attack.requires if c.kind == CONTROL}
            assert sources, attack.attack_id
            for granted in attack.grants:
                assert any((src, granted.node) in open_pairs
                           for src in sources), attack.attack_id

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_every_flow_source_admits_an_entry_attack(self, name):
        """The completeness backstop behind the differential gates."""
        target = build_scenario(name)
        result = analyze(target)
        library = build_attack_library(target, result)
        entry_nodes = {c.node for a in library if a.is_entry
                       for c in a.grants if c.kind == CONTROL}
        for node in result.graph.sources():
            assert node.name in entry_nodes, node.name


class TestConditionalInstantiation:
    def test_pkes_relay_only_where_lf_rssi(self):
        techniques = {a.technique for a in library_for("pkes-legacy")}
        assert "pkes-relay" in techniques
        assert "uwb-jamming" in techniques  # no integrity check configured
        hardened = {a.technique for a in library_for("onboard-hardened")}
        assert "pkes-relay" not in hardened

    def test_insider_fabrication_only_on_unsigned_channels(self):
        insecure = library_for("onboard-insecure")
        fabrications = [a for a in insecure
                        if a.technique == "insider-fabrication"]
        assert fabrications and all(a.is_entry for a in fabrications)
        assert all(a.technique != "insider-fabrication"
                   for a in library_for("onboard-hardened"))

    def test_v2x_spoof_requires_channel_control(self):
        insecure = library_for("onboard-insecure")
        spoofs = [a for a in insecure if a.technique == "v2x-spoof"]
        assert spoofs
        for attack in spoofs:
            assert any(c.kind == CONTROL and c.node.startswith("v2x:")
                       for c in attack.requires)

    def test_cariad_killchain_steps_present(self):
        techniques = {a.technique for a in library_for("cariad-breach")}
        assert {"endpoint-abuse", "killchain-recon",
                "heap-dump-theft"} <= techniques

    def test_gateway_abuse_on_wide_whitelists(self):
        techniques = {a.technique for a in library_for("onboard-insecure")}
        assert "gateway-abuse" in techniques

    def test_availability_attacks_only_on_open_can(self):
        insecure = library_for("onboard-insecure")
        assert any(a.technique == "bus-off" for a in insecure)
        babblers = [a for a in insecure if a.technique == "babbling-idiot"]
        assert babblers
        for attack in babblers:
            assert len(attack.grants) >= 2  # starves every peer
        hardened = {a.technique for a in library_for("onboard-hardened")}
        assert "bus-off" not in hardened
        assert "babbling-idiot" not in hardened

    def test_first_instantiation_wins_is_deterministic(self):
        first = library_for("onboard-insecure")
        second = library_for("onboard-insecure")
        assert first == second


class TestAttackObject:
    def test_entry_attack_has_no_requirements(self):
        library = library_for("pkes-legacy")
        relay = next(a for a in library if a.technique == "pkes-relay")
        assert relay.is_entry
        assert relay.primary_grant == control("keyfob")
        assert "keyfob" in relay.describe() or "control:keyfob" in relay.describe()

    def test_invalid_attacks_rejected(self):
        from repro.core.layers import Layer
        from repro.redteam import Attack

        with pytest.raises(ValueError, match="cost"):
            Attack(attack_id="x@y", technique="foothold", name="x",
                   layer=Layer.NETWORK, paper_ref="§1",
                   requires=frozenset(), grants=frozenset({control("y")}),
                   cost=0.0, defense="d")
        with pytest.raises(ValueError, match="grant"):
            Attack(attack_id="x@y", technique="foothold", name="x",
                   layer=Layer.NETWORK, paper_ref="§1",
                   requires=frozenset(), grants=frozenset(),
                   cost=1.0, defense="d")

    def test_capability_kinds_validated(self):
        from repro.redteam import Capability

        with pytest.raises(ValueError, match="kind"):
            Capability("own", "node")
