"""Tests for the multi-layer intrusion response engine."""

import pytest

from repro.core.layers import Layer
from repro.core.response import (
    ResponseAction,
    ResponseEngine,
    SecurityAlert,
    Severity,
)


def alert(component="ecu", severity=Severity.WARNING, confidence=1.0, t=0.0):
    return SecurityAlert(t, Layer.NETWORK, component, "can-masquerade", severity, confidence)


class TestBasePolicy:
    def test_info_logs_only(self):
        engine = ResponseEngine()
        assert engine.handle(alert(severity=Severity.INFO)).action == ResponseAction.LOG_ONLY

    def test_warning_rate_limits(self):
        engine = ResponseEngine()
        assert engine.handle(alert(severity=Severity.WARNING)).action == ResponseAction.RATE_LIMIT

    def test_critical_isolates(self):
        engine = ResponseEngine()
        decision = engine.handle(alert(severity=Severity.CRITICAL))
        assert decision.action == ResponseAction.ISOLATE_COMPONENT

    def test_critical_component_hardens_response(self):
        engine = ResponseEngine(critical_components={"brake-ecu"})
        decision = engine.handle(alert(component="brake-ecu", severity=Severity.CRITICAL))
        assert decision.action == ResponseAction.DEGRADE_FUNCTION


class TestEscalation:
    def test_repeat_alerts_escalate(self):
        engine = ResponseEngine(escalation_threshold=2)
        actions = [engine.handle(alert()).action for _ in range(6)]
        assert actions[0] == ResponseAction.RATE_LIMIT
        assert actions[-1] > actions[0]

    def test_escalation_caps_at_safe_stop(self):
        engine = ResponseEngine(escalation_threshold=1)
        last = None
        for _ in range(20):
            last = engine.handle(alert(severity=Severity.CRITICAL)).action
        assert last == ResponseAction.SAFE_STOP

    def test_never_deescalates(self):
        engine = ResponseEngine(escalation_threshold=1)
        engine.handle(alert(severity=Severity.CRITICAL))
        engine.handle(alert(severity=Severity.CRITICAL))
        strong = engine.component_status("ecu")
        # A later low-severity alert must not weaken the applied response.
        engine.handle(alert(severity=Severity.INFO))
        assert engine.component_status("ecu") >= strong

    def test_per_component_state_is_independent(self):
        engine = ResponseEngine(escalation_threshold=1)
        for _ in range(5):
            engine.handle(alert(component="ecu-a", severity=Severity.CRITICAL))
        decision = engine.handle(alert(component="ecu-b", severity=Severity.WARNING))
        assert decision.action == ResponseAction.RATE_LIMIT


class TestConfidenceGating:
    def test_low_confidence_only_logs(self):
        engine = ResponseEngine(min_confidence=0.8)
        decision = engine.handle(alert(severity=Severity.CRITICAL, confidence=0.3))
        assert decision.action == ResponseAction.LOG_ONLY

    def test_low_confidence_does_not_escalate(self):
        engine = ResponseEngine(min_confidence=0.8, escalation_threshold=1)
        for _ in range(5):
            engine.handle(alert(severity=Severity.CRITICAL, confidence=0.3))
        decision = engine.handle(alert(severity=Severity.CRITICAL, confidence=0.9))
        assert decision.escalation_level == 0

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            alert(confidence=1.5)


class TestStatusQueries:
    def test_isolated_components(self):
        engine = ResponseEngine()
        engine.handle(alert(component="infected", severity=Severity.CRITICAL))
        engine.handle(alert(component="healthy", severity=Severity.INFO))
        assert engine.isolated_components() == {"infected"}

    def test_reset_clears_state(self):
        engine = ResponseEngine()
        engine.handle(alert(component="ecu", severity=Severity.CRITICAL))
        engine.reset("ecu")
        assert engine.component_status("ecu") == ResponseAction.LOG_ONLY

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            ResponseEngine(escalation_threshold=0)


class TestSubscriptionAndFlapping:
    """Listeners hear every decision; flapping alerts cannot oscillate
    the degradation ladder (the hysteresis contract repro.faults relies on)."""

    def test_subscribers_hear_every_decision_in_order(self):
        engine = ResponseEngine()
        heard = []
        engine.subscribe(lambda decision: heard.append(decision.action))
        engine.handle(alert(severity=Severity.INFO))
        engine.handle(alert(severity=Severity.CRITICAL))
        assert heard == [ResponseAction.LOG_ONLY,
                         ResponseAction.ISOLATE_COMPONENT]

    def test_low_confidence_decisions_still_reach_subscribers(self):
        engine = ResponseEngine(min_confidence=0.8)
        heard = []
        engine.subscribe(lambda decision: heard.append(decision.action))
        engine.handle(alert(severity=Severity.CRITICAL, confidence=0.2))
        assert heard == [ResponseAction.LOG_ONLY]

    def test_flapping_alerts_never_deescalate_the_response(self):
        # alert, quiet, alert, ... — the chosen action must be monotone
        # even though severities alternate
        engine = ResponseEngine(escalation_threshold=2)
        actions = []
        for i in range(8):
            severity = Severity.CRITICAL if i % 2 == 0 else Severity.INFO
            actions.append(engine.handle(alert(severity=severity,
                                               t=float(i))).action)
        assert actions == sorted(actions)  # monotone non-decreasing
        assert actions[0] == ResponseAction.ISOLATE_COMPONENT

    def test_flapping_alerts_cannot_oscillate_the_degradation_ladder(self):
        # end-to-end hysteresis: a flapping IDS (critical alert, then
        # healthy ticks, repeatedly) may hold the vehicle DEGRADED but
        # must never walk it below the action's floor
        from repro.faults import DegradationManager, ServiceLevel

        engine = ResponseEngine(escalation_threshold=100)
        manager = DegradationManager(degrade_streak=2, recovery_streak=2)
        manager.attach(engine)
        for cycle in range(6):
            engine.handle(alert(severity=Severity.CRITICAL,
                                t=float(cycle * 3)))
            for sub in range(3):
                manager.report("ivn", True)
                manager.tick(float(cycle * 3 + sub))
        assert manager.level is ServiceLevel.DEGRADED
        assert manager.min_level is ServiceLevel.DEGRADED
        # once the flapping source is cleared, recovery completes
        manager.clear_response_floor()
        for t in range(20, 23):
            manager.report("ivn", True)
            manager.tick(float(t))
        assert manager.level is ServiceLevel.FULL
