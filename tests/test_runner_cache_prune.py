"""LRU pruning of the sweep result cache (``--cache-max-entries``)."""

import os
import sys

import pytest

from repro.experiments import Experiment
from repro.runner import ResultCache, SweepRunner


def fill(cache, n, *, t0=1_000_000):
    """Insert keys k0..k(n-1) with strictly increasing mtimes."""
    for i in range(n):
        path = cache.put(f"k{i}", {"id": f"k{i}"})
        os.utime(path, (t0 + i, t0 + i))


def keys(cache):
    return sorted(p.stem for p in cache.directory.glob("*.json"))


class TestPrune:
    def test_put_evicts_oldest_beyond_cap(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=3)
        fill(cache, 3)
        cache.put("k3", {"id": "k3"})
        assert keys(cache) == ["k1", "k2", "k3"]  # k0 was oldest

    def test_eviction_is_lru_not_insertion_order(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=3)
        fill(cache, 3)
        assert cache.get("k0") is not None  # refreshes k0's recency
        cache.put("k3", {"id": "k3"})
        # k1 is now the least recently used, not k0
        assert keys(cache) == ["k0", "k2", "k3"]

    def test_fresh_write_is_protected_from_its_own_prune(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1)
        fill(cache, 1)
        path = cache.put("knew", {"id": "knew"})
        # force the freshly-written entry to look stale: it must still
        # survive its own put's prune via the keep= protection
        os.utime(path, (1, 1))
        cache.prune(1, keep=path)
        assert keys(cache) == ["knew"]

    def test_prune_returns_removed_count_and_is_stable(self, tmp_path):
        cache = ResultCache(tmp_path)
        fill(cache, 5)
        assert cache.prune(2) == 3
        assert keys(cache) == ["k3", "k4"]
        assert cache.prune(2) == 0  # already at cap: nothing to do

    def test_mtime_ties_break_by_path_deterministically(self, tmp_path):
        cache = ResultCache(tmp_path)
        fill(cache, 4, t0=500)
        for path in cache.directory.glob("*.json"):
            os.utime(path, (500, 500))  # everything equally old
        assert cache.prune(2) == 2
        assert keys(cache) == ["k2", "k3"]  # lexicographic tail survives

    def test_unbounded_cache_never_prunes_on_put(self, tmp_path):
        cache = ResultCache(tmp_path)  # max_entries=None
        fill(cache, 10)
        assert len(cache) == 10

    def test_cap_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(tmp_path, max_entries=0)

    def test_missing_directory_prunes_nothing(self, tmp_path):
        assert ResultCache(tmp_path / "absent").prune(1) == 0


class TestRunnerWiring:
    def test_sweep_runner_caps_its_cache(self, tmp_path):
        bench = tmp_path / "bench"
        bench.mkdir()
        experiments = []
        for i in range(3):
            (bench / f"syn{i}.py").write_text(
                f"print('=== SYN{i} table ===')\n")
            experiments.append(Experiment(f"SYN{i}", "-", "synthetic",
                                          f"syn{i}.py"))
        cache_dir = tmp_path / "cache"
        runner = SweepRunner(experiments, bench_dir=bench,
                             command_template=(sys.executable, "{bench}"),
                             digest_paths=[], use_cache=True,
                             cache_dir=cache_dir, cache_max_entries=2,
                             timeout_s=30.0, jobs=1)
        report = runner.run()
        assert all(r.status == "passed" for r in report.results)
        # three passed results flowed through a cache capped at two
        assert len(ResultCache(cache_dir)) == 2
