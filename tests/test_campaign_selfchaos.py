"""Self-chaos: kill the campaign process itself, then resume.

The acceptance bar for the campaign engine is survival of its *own*
failure modes, not just its workers': these tests SIGKILL the whole
CLI process at several distinct shard boundaries (and SIGTERM it once
for the graceful path) and assert the resumed run reaches a final
report byte-identical to an uninterrupted reference — with the shards
that had already settled never re-executed.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import replay

SRC = str(Path(__file__).resolve().parents[1] / "src")
MATRIX = ["--tools", "chaos", "--scenarios", "all",
          "--plans", "baseline,severe", "--seeds", "0",
          "--duration", "40", "--name", "sc"]
TOTAL_SHARDS = 10  # 5 scenarios x 2 plans
LAUNCH_TIMEOUT_S = 120.0


def spawn(args, root, report=None):
    argv = [sys.executable, "-m", "repro", "campaign", *args,
            "--journal-root", str(root)]
    if report is not None:
        argv += ["--report", str(report)]
    env = {**os.environ, "PYTHONPATH": SRC}
    return subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)


def finish(process):
    out, err = process.communicate(timeout=LAUNCH_TIMEOUT_S)
    return process.returncode, out, err


def shard_done_count(journal):
    try:
        return journal.read_text().count('"type":"shard-done"')
    except OSError:
        return 0


def wait_for_settled(process, journal, n):
    """Poll the journal until n shards have settled (or the run ends)."""
    deadline = time.monotonic() + LAUNCH_TIMEOUT_S
    while time.monotonic() < deadline:
        if shard_done_count(journal) >= n:
            return True
        if process.poll() is not None:
            return False  # finished before reaching the kill point
        time.sleep(0.002)
    raise AssertionError(f"never saw {n} settled shards")


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted run's report bytes."""
    root = tmp_path_factory.mktemp("ref")
    report = root / "report.json"
    code, _, err = finish(spawn(["run", *MATRIX], root / "j", report))
    assert code == 0, err
    return report.read_bytes()


class TestSigkillAtShardBoundaries:
    @pytest.mark.parametrize("kill_after", [1, 4, 8])
    def test_resume_is_byte_identical_after_sigkill(self, tmp_path,
                                                    reference, kill_after):
        root = tmp_path / "j"
        journal = root / "sc" / "journal.jsonl"
        process = spawn(["run", *MATRIX], root)
        reached = wait_for_settled(process, journal, kill_after)
        if reached:
            process.kill()  # SIGKILL: no handler, no flush, no goodbye
        finish(process)
        if not reached:
            pytest.skip("campaign outran the kill point on this machine")

        settled_before = shard_done_count(journal)
        assert settled_before < TOTAL_SHARDS  # the kill left real work

        report = tmp_path / "resumed.json"
        code, _, err = finish(spawn(["resume", "sc"], root, report))
        assert code == 0, err
        assert report.read_bytes() == reference

        # shards settled before the kill were replayed, not re-executed:
        # exactly one shard-start each across both processes' records
        state = replay(journal)
        assert state.ended
        single_start = sum(1 for n in state.starts.values() if n == 1)
        assert single_start >= settled_before

    def test_sigkill_then_status_reports_incomplete(self, tmp_path):
        root = tmp_path / "j"
        journal = root / "sc" / "journal.jsonl"
        process = spawn(["run", *MATRIX], root)
        if not wait_for_settled(process, journal, 2):
            finish(process)
            pytest.skip("campaign outran the kill point on this machine")
        process.kill()
        finish(process)
        code, out, _ = finish(spawn(["status", "sc"], root))
        assert code == 0
        assert "incomplete" in out
        assert "resume with: python -m repro campaign resume sc" in out


class TestSigtermGraceful:
    def test_sigterm_checkpoints_and_prints_resume_command(self, tmp_path,
                                                           reference):
        root = tmp_path / "j"
        journal = root / "sc" / "journal.jsonl"
        partial = tmp_path / "partial.json"
        process = spawn(["run", *MATRIX], root, partial)
        if not wait_for_settled(process, journal, 1):
            finish(process)
            pytest.skip("campaign outran the signal on this machine")
        process.send_signal(signal.SIGTERM)
        code, _, err = finish(process)
        if code == 0:
            pytest.skip("signal landed after the final shard")
        assert code == 130
        assert "resume with: python -m repro campaign resume sc" in err

        # the interrupt checkpoint is durable and explicit
        state = replay(journal)
        assert state.interrupts == 1 and not state.ended

        # the partial report is schema-valid and flagged
        document = json.loads(partial.read_text())
        assert document["summary"]["interrupted"] is True
        assert document["summary"]["pending"] >= 1

        report = tmp_path / "resumed.json"
        resume_code, _, resume_err = finish(spawn(["resume", "sc"], root,
                                                  report))
        assert resume_code == 0, resume_err
        assert report.read_bytes() == reference
