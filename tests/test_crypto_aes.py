"""AES block cipher tests against FIPS 197 appendix vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import AES, xor_bytes

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


def test_aes128_fips197_c1():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    assert AES(key).encrypt_block(PLAINTEXT) == expected


def test_aes192_fips197_c2():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
    expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
    assert AES(key).encrypt_block(PLAINTEXT) == expected


def test_aes256_fips197_c3():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
    expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
    assert AES(key).encrypt_block(PLAINTEXT) == expected


def test_aes128_sp800_38a_vector():
    # NIST SP 800-38A F.1.1 ECB-AES128 block 1.
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
    ct = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
    assert AES(key).encrypt_block(pt) == ct
    assert AES(key).decrypt_block(ct) == pt


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_decrypt_inverts_encrypt(key_len):
    key = bytes(range(key_len))
    cipher = AES(key)
    block = bytes(range(100, 116))
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(st.binary(min_size=16, max_size=16))
def test_encryption_is_permutation_not_identity_mostly(block):
    # Encryption under a fixed key should almost never map a block to itself;
    # more importantly, it must be deterministic.
    cipher = AES(b"\x01" * 16)
    assert cipher.encrypt_block(block) == cipher.encrypt_block(block)


def test_rejects_bad_key_and_block_sizes():
    with pytest.raises(ValueError):
        AES(b"short")
    cipher = AES(b"\x00" * 16)
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"\x00" * 15)
    with pytest.raises(ValueError):
        cipher.decrypt_block(b"\x00" * 17)


def test_xor_bytes():
    assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
    with pytest.raises(ValueError):
        xor_bytes(b"\x00", b"\x00\x00")
