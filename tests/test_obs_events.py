"""Event log semantics: ring wraparound, filtering, JSONL round-trip."""

import pytest

from repro.core.layers import Layer
from repro.obs.events import EventKind, EventLog, SimEvent


def fill(log, n, kind=EventKind.FRAME_SENT, layer=Layer.NETWORK):
    for i in range(n):
        log.emit(kind, layer, "bus", f"event {i}", t=float(i), index=i)


class TestRingBuffer:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_emission_order_and_seq(self):
        log = EventLog()
        fill(log, 3)
        assert [e.seq for e in log] == [0, 1, 2]
        assert [e.message for e in log] == ["event 0", "event 1", "event 2"]

    def test_wraparound_keeps_most_recent(self):
        log = EventLog(capacity=4)
        fill(log, 10)
        assert len(log) == 4
        assert log.dropped == 6
        assert [e.seq for e in log] == [6, 7, 8, 9]
        # seq keeps counting across drops
        event = log.emit(EventKind.BUS_OFF, Layer.NETWORK, "ecu", "gone")
        assert event.seq == 10
        assert log.dropped == 7

    def test_filtering_by_kind_and_layer(self):
        log = EventLog()
        fill(log, 2)
        log.emit(EventKind.RANGING, Layer.PHYSICAL, "ds-twr", "ranged")
        assert len(log.events(kind=EventKind.RANGING)) == 1
        assert len(log.events(layer=Layer.NETWORK)) == 2
        assert log.layers() == {Layer.NETWORK, Layer.PHYSICAL}

    def test_clear_resets_seq_and_dropped(self):
        log = EventLog(capacity=2)
        fill(log, 5)
        log.clear()
        assert len(log) == 0 and log.dropped == 0
        assert log.emit(EventKind.FRAME_SENT, Layer.NETWORK, "b", "m").seq == 0


class TestSubscribe:
    def test_listeners_receive_every_emission_in_order(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        fill(log, 3)
        assert [e.seq for e in seen] == [0, 1, 2]
        assert seen == list(log)

    def test_subscription_order_is_registration_order(self):
        log = EventLog()
        order = []
        log.subscribe(lambda e: order.append(("first", e.seq)))
        log.subscribe(lambda e: order.append(("second", e.seq)))
        fill(log, 2)
        assert order == [("first", 0), ("second", 0),
                         ("first", 1), ("second", 1)]

    def test_unsubscribe_stops_delivery_and_is_idempotent(self):
        log = EventLog()
        seen = []
        unsubscribe = log.subscribe(seen.append)
        fill(log, 2)
        unsubscribe()
        unsubscribe()  # double-unsubscribe must not raise
        fill(log, 2)
        assert len(seen) == 2

    def test_listener_sees_event_after_ring_insert(self):
        # Push-after-insert: at notification time the event is already
        # the newest entry in the ring, even when it evicted another.
        log = EventLog(capacity=2)
        snapshots = []
        log.subscribe(lambda e: snapshots.append((e.seq, list(log)[-1].seq,
                                                  log.dropped)))
        fill(log, 4)
        assert snapshots == [(0, 0, 0), (1, 1, 0), (2, 2, 1), (3, 3, 2)]

    def test_listeners_survive_clear(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        fill(log, 2)
        log.clear()
        fill(log, 1)
        assert [e.seq for e in seen] == [0, 1, 0]

    def test_append_also_notifies(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        event = SimEvent(seq=0, t=1.0, kind=EventKind.RANGING,
                         layer=Layer.PHYSICAL, source="x", message="m")
        log.append(event)
        assert seen == [event]


class TestJsonl:
    def test_round_trip_preserves_events(self):
        log = EventLog()
        fill(log, 3)
        log.emit(EventKind.MAC_REJECTED, Layer.NETWORK, "pdu-0x300",
                 "forged", freshness=7, ok=False, label="x")
        restored = EventLog.from_jsonl(log.to_jsonl())
        assert list(restored) == list(log)

    def test_file_round_trip(self, tmp_path):
        log = EventLog()
        fill(log, 2)
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(path) == 2
        restored = EventLog.read_jsonl(path)
        assert list(restored) == list(log)

    def test_every_line_is_valid_json(self):
        import json

        log = EventLog()
        fill(log, 3)
        for line in log.to_jsonl().splitlines():
            assert json.loads(line)["kind"] == "frame-sent"

    def test_empty_log_round_trip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert EventLog().write_jsonl(path) == 0
        assert len(EventLog.read_jsonl(path)) == 0

    def test_bad_json_line_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 1"):
            EventLog.from_jsonl("not json at all")

    @pytest.mark.parametrize("mutation", [
        {"kind": "not-a-kind"},
        {"layer": "not-a-layer"},
        {"seq": "zero"},
        {"t": "soon"},
        {"fields": {"nested": {"too": "deep"}}},
    ])
    def test_malformed_records_rejected(self, mutation):
        import json

        log = EventLog()
        fill(log, 1)
        record = json.loads(log.to_jsonl())
        record.update(mutation)
        with pytest.raises(ValueError):
            SimEvent.from_dict(record)

    def test_import_respects_capacity(self):
        log = EventLog()
        fill(log, 10)
        restored = EventLog.from_jsonl(log.to_jsonl(), capacity=3)
        assert len(restored) == 3
        assert restored.dropped == 7
