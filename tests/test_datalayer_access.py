"""Tests for owner-controlled data access with trust delegation ([54])."""

import pytest

from repro.datalayer.access import DataConsumer, DataOwner, KeyTrustee

NOW = 1_750_000_000.0


@pytest.fixture()
def world():
    trustees = [KeyTrustee(f"trustee-{i}") for i in range(5)]
    owner = DataOwner("vehicle-owner", trustees, threshold=3)
    protected = owner.publish("trip-logs", b"sensitive trip history data")
    consumer = DataConsumer("insurance-co")
    return owner, trustees, protected, consumer


class TestGrantedAccess:
    def test_granted_consumer_decrypts(self, world):
        owner, trustees, protected, consumer = world
        grant = owner.grant("insurance-co", "trip-logs", now=NOW)
        data = consumer.access(protected, grant, trustees, threshold=3, now=NOW + 10)
        assert data == b"sensitive trip history data"

    def test_ciphertext_hides_plaintext(self, world):
        _, _, protected, _ = world
        assert b"trip history" not in protected.ciphertext

    def test_wrong_consumer_denied(self, world):
        owner, trustees, protected, _ = world
        grant = owner.grant("insurance-co", "trip-logs", now=NOW)
        thief = DataConsumer("data-broker")
        assert thief.access(protected, grant, trustees, threshold=3, now=NOW + 10) is None

    def test_wrong_dataset_denied(self, world):
        owner, trustees, _, consumer = world
        other = owner.publish("service-records", b"other data")
        grant = owner.grant("insurance-co", "trip-logs", now=NOW)
        assert consumer.access(other, grant, trustees, threshold=3, now=NOW + 10) is None

    def test_expired_grant_denied(self, world):
        owner, trustees, protected, consumer = world
        grant = owner.grant("insurance-co", "trip-logs", now=NOW, validity_s=60)
        assert consumer.access(protected, grant, trustees, threshold=3,
                               now=NOW + 61) is None

    def test_no_grant_denied(self, world):
        owner, trustees, protected, consumer = world
        from repro.datalayer.access import AccessGrant

        forged = AccessGrant("forged-g1", "trip-logs", "insurance-co", NOW + 999)
        assert consumer.access(protected, forged, trustees, threshold=3,
                               now=NOW) is None


class TestRevocation:
    def test_full_revocation_blocks_access(self, world):
        owner, trustees, protected, consumer = world
        grant = owner.grant("insurance-co", "trip-logs", now=NOW)
        owner.revoke(grant)
        assert consumer.access(protected, grant, trustees, threshold=3,
                               now=NOW + 10) is None

    def test_partial_revocation_propagation(self, world):
        # The [55] multi-stakeholder reality: if only 2 of 5 trustees
        # learned of the revocation, 3 unaware ones still form a quorum.
        owner, trustees, protected, consumer = world
        grant = owner.grant("insurance-co", "trip-logs", now=NOW)
        owner.revoke(grant, reachable_trustees=trustees[:2])
        assert consumer.access(protected, grant, trustees, threshold=3,
                               now=NOW + 10) is not None
        # Reaching one more trustee leaves only 2 unaware: access dies.
        owner.revoke(grant, reachable_trustees=trustees[2:3])
        assert consumer.access(protected, grant, trustees, threshold=3,
                               now=NOW + 10) is None


class TestThresholdProperties:
    def test_below_threshold_trustees_insufficient(self, world):
        owner, trustees, protected, consumer = world
        grant = owner.grant("insurance-co", "trip-logs", now=NOW)
        assert consumer.access(protected, grant, trustees[:2], threshold=3,
                               now=NOW + 10) is None

    def test_single_trustee_cannot_decrypt(self, world):
        # No trustee alone holds the key: its share is useless by itself.
        owner, trustees, protected, _ = world
        grant = owner.grant("insurance-co", "trip-logs", now=NOW)
        lone = trustees[0].request_share(grant.grant_id, "insurance-co",
                                         "trip-logs", now=NOW + 1)
        assert lone is not None
        from repro.crypto.modes import AuthenticationError, Gcm
        from repro.crypto.shamir import reconstruct_secret

        key_guess = reconstruct_secret([lone])
        with pytest.raises(AuthenticationError):
            Gcm(key_guess).decrypt(protected.nonce, protected.ciphertext,
                                   protected.tag, aad=protected.name.encode())

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DataOwner("o", [KeyTrustee("t")], threshold=2)
        with pytest.raises(ValueError):
            DataOwner("o", [KeyTrustee("t")], threshold=0)

    def test_fresh_key_per_dataset(self, world):
        owner, trustees, protected, consumer = world
        other = owner.publish("dataset-2", b"second dataset")
        grant = owner.grant("insurance-co", "trip-logs", now=NOW)
        # A grant for dataset 1 does not open dataset 2.
        assert consumer.access(other, grant, trustees, threshold=3,
                               now=NOW + 10) is None
