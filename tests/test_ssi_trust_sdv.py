"""Tests for trust policies, accreditation chains, and SDV reconfiguration."""

import pytest

from repro.ssi.registry import VerifiableDataRegistry
from repro.ssi.sdv import HW_CREDENTIAL, SW_CREDENTIAL, ReconfigurationController
from repro.ssi.trust import ACCREDITATION_TYPE, TrustPolicy
from repro.ssi.wallet import Wallet

NOW = 1_700_000_000.0


@pytest.fixture()
def world():
    registry = VerifiableDataRegistry()
    policy = TrustPolicy(registry)
    return registry, policy


class TestTrustPolicy:
    def test_direct_anchor_trusted(self, world):
        registry, policy = world
        anchor = Wallet.create("anchor", registry)
        subject = Wallet.create("subject", registry)
        policy.add_anchor("Test", str(anchor.did))
        cred = anchor.issue(credential_type="Test", subject=subject.did,
                            claims={}, issued_at=NOW)
        assert policy.verify_credential(cred, now=NOW + 1)

    def test_unanchored_issuer_rejected(self, world):
        registry, policy = world
        rogue = Wallet.create("rogue", registry)
        subject = Wallet.create("subject", registry)
        cred = rogue.issue(credential_type="Test", subject=subject.did,
                           claims={}, issued_at=NOW)
        result = policy.verify_credential(cred, now=NOW + 1)
        assert not result
        assert "anchor" in result.reason

    def test_accreditation_chain(self, world):
        registry, policy = world
        anchor = Wallet.create("root-authority", registry)
        intermediate = Wallet.create("national-body", registry)
        issuer = Wallet.create("oem", registry)
        subject = Wallet.create("ecu", registry)
        policy.add_anchor("Test", str(anchor.did))
        policy.record_accreditation(anchor.issue(
            credential_type=ACCREDITATION_TYPE, subject=intermediate.did,
            claims={"accreditedFor": ["Test"]}, issued_at=NOW))
        policy.record_accreditation(intermediate.issue(
            credential_type=ACCREDITATION_TYPE, subject=issuer.did,
            claims={"accreditedFor": ["Test"]}, issued_at=NOW))
        cred = issuer.issue(credential_type="Test", subject=subject.did,
                            claims={}, issued_at=NOW)
        assert policy.verify_credential(cred, now=NOW + 1)
        assert policy.chain_length_to_anchor(str(issuer.did), "Test", now=NOW + 1) == 2

    def test_chain_scope_respected(self, world):
        # Accreditation for type A does not grant trust for type B.
        registry, policy = world
        anchor = Wallet.create("anchor", registry)
        issuer = Wallet.create("issuer", registry)
        subject = Wallet.create("subject", registry)
        policy.add_anchor("A", str(anchor.did))
        policy.add_anchor("B", str(anchor.did))
        policy.record_accreditation(anchor.issue(
            credential_type=ACCREDITATION_TYPE, subject=issuer.did,
            claims={"accreditedFor": ["A"]}, issued_at=NOW))
        cred_b = issuer.issue(credential_type="B", subject=subject.did,
                              claims={}, issued_at=NOW)
        assert not policy.verify_credential(cred_b, now=NOW + 1)

    def test_chain_length_bounded(self, world):
        registry, policy = world
        policy.max_chain_length = 1
        anchor = Wallet.create("anchor", registry)
        mid = Wallet.create("mid", registry)
        leaf = Wallet.create("leaf", registry)
        subject = Wallet.create("subject", registry)
        policy.add_anchor("Test", str(anchor.did))
        policy.record_accreditation(anchor.issue(
            credential_type=ACCREDITATION_TYPE, subject=mid.did,
            claims={"accreditedFor": ["Test"]}, issued_at=NOW))
        policy.record_accreditation(mid.issue(
            credential_type=ACCREDITATION_TYPE, subject=leaf.did,
            claims={"accreditedFor": ["Test"]}, issued_at=NOW))
        cred = leaf.issue(credential_type="Test", subject=subject.did,
                          claims={}, issued_at=NOW)
        assert not policy.verify_credential(cred, now=NOW + 1)

    def test_multiple_independent_anchors(self, world):
        # The Fig. 7 point: different stakeholders, each their own root.
        registry, policy = world
        oem = Wallet.create("oem-anchor", registry)
        cloud = Wallet.create("cloud-anchor", registry)
        subject = Wallet.create("component", registry)
        policy.add_anchor("Test", str(oem.did))
        policy.add_anchor("Test", str(cloud.did))
        for anchor in (oem, cloud):
            cred = anchor.issue(credential_type="Test", subject=subject.did,
                                claims={}, issued_at=NOW)
            assert policy.verify_credential(cred, now=NOW + 1)
        assert len(policy.anchors_for("Test")) == 2

    def test_record_accreditation_type_checked(self, world):
        registry, policy = world
        anchor = Wallet.create("anchor", registry)
        with pytest.raises(ValueError):
            policy.record_accreditation(anchor.issue(
                credential_type="Other", subject="did:vreg:x",
                claims={}, issued_at=NOW))


def build_sdv_world():
    registry = VerifiableDataRegistry()
    policy = TrustPolicy(registry)
    hw_vendor = Wallet.create("hw-vendor", registry)
    sw_vendor = Wallet.create("sw-vendor", registry)
    policy.add_anchor(HW_CREDENTIAL, str(hw_vendor.did))
    policy.add_anchor(SW_CREDENTIAL, str(sw_vendor.did))

    platform = Wallet.create("zone-ecu-a", registry)
    platform.store(hw_vendor.issue(
        credential_type=HW_CREDENTIAL, subject=platform.did,
        claims={"platformType": "adas-gen3"}, issued_at=NOW))

    software = Wallet.create("lane-keeping-v2", registry)
    software.store(sw_vendor.issue(
        credential_type=SW_CREDENTIAL, subject=software.did,
        claims={"approvedPlatforms": ["adas-gen3"]}, issued_at=NOW))
    return registry, policy, hw_vendor, sw_vendor, platform, software


class TestReconfiguration:
    def test_compatible_placement_authorized(self):
        _, policy, _, _, platform, software = build_sdv_world()
        controller = ReconfigurationController(policy)
        decision = controller.authorize_placement(software, platform, now=NOW + 10)
        assert decision.authorized
        assert controller.placements[str(software.did)] == str(platform.did)
        assert decision.verification_steps >= 5

    def test_incompatible_platform_denied(self):
        registry, policy, hw_vendor, _, _, software = build_sdv_world()
        wrong = Wallet.create("infotainment-ecu", registry)
        wrong.store(hw_vendor.issue(
            credential_type=HW_CREDENTIAL, subject=wrong.did,
            claims={"platformType": "infotainment-gen1"}, issued_at=NOW))
        controller = ReconfigurationController(policy)
        decision = controller.authorize_placement(software, wrong, now=NOW + 10)
        assert not decision.authorized
        assert "not approved" in decision.reason

    def test_unaccredited_software_vendor_denied(self):
        registry, policy, _, _, platform, _ = build_sdv_world()
        rogue_vendor = Wallet.create("rogue-vendor", registry)
        malware = Wallet.create("malware-v1", registry)
        malware.store(rogue_vendor.issue(
            credential_type=SW_CREDENTIAL, subject=malware.did,
            claims={"approvedPlatforms": ["adas-gen3"]}, issued_at=NOW))
        controller = ReconfigurationController(policy)
        decision = controller.authorize_placement(malware, platform, now=NOW + 10)
        assert not decision.authorized
        assert "untrusted" in decision.reason

    def test_missing_credentials_denied(self):
        registry, policy, _, _, platform, _ = build_sdv_world()
        bare = Wallet.create("bare-sw", registry)
        controller = ReconfigurationController(policy)
        decision = controller.authorize_placement(bare, platform, now=NOW + 10)
        assert not decision.authorized
        assert "no release credential" in decision.reason

    def test_revoked_release_denied(self):
        registry, policy, _, _, platform, software = build_sdv_world()
        release = software.find(SW_CREDENTIAL)[0]
        registry.revoke_credential(release.credential_id, release.issuer)
        controller = ReconfigurationController(policy)
        decision = controller.authorize_placement(software, platform, now=NOW + 10)
        assert not decision.authorized

    def test_failover_picks_first_compatible(self):
        registry, policy, hw_vendor, _, platform, software = build_sdv_world()
        incompatible = Wallet.create("body-ecu", registry)
        incompatible.store(hw_vendor.issue(
            credential_type=HW_CREDENTIAL, subject=incompatible.did,
            claims={"platformType": "body-gen2"}, issued_at=NOW))
        controller = ReconfigurationController(policy)
        decision = controller.failover(software, [incompatible, platform], now=NOW + 10)
        assert decision.authorized
        assert decision.hardware == str(platform.did)
        assert len(controller.audit_log) == 2  # denial + success

    def test_failover_requires_candidates(self):
        _, policy, _, _, _, software = build_sdv_world()
        controller = ReconfigurationController(policy)
        with pytest.raises(ValueError):
            controller.failover(software, [], now=NOW)
