"""Tests for UWB pulse shaping, channel, and ToA estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.channel import Channel, Multipath
from repro.phy.pulses import (
    HRP_CONFIG,
    LRP_CONFIG,
    SPEED_OF_LIGHT,
    build_pulse_train,
    pulse_template,
)
from repro.phy.toa import cross_correlation, first_path_toa


class TestPulses:
    def test_template_peak_is_amplitude(self):
        template = pulse_template(HRP_CONFIG)
        assert np.max(np.abs(template)) == pytest.approx(HRP_CONFIG.pulse_amplitude)
        lrp = pulse_template(LRP_CONFIG)
        assert np.max(np.abs(lrp)) == pytest.approx(LRP_CONFIG.pulse_amplitude)

    def test_lrp_slot_is_512ns(self):
        # Fig. 2: LRP pulse slot is 512 ns.
        assert LRP_CONFIG.pulse_repetition_interval_s == pytest.approx(512e-9)
        assert LRP_CONFIG.samples_per_pri > HRP_CONFIG.samples_per_pri

    def test_metres_per_sample(self):
        assert HRP_CONFIG.metres_per_sample == pytest.approx(
            SPEED_OF_LIGHT / HRP_CONFIG.sample_rate_hz
        )

    def test_build_pulse_train_places_pulses(self):
        symbols = np.array([1.0, -1.0, 1.0])
        signal = build_pulse_train(symbols, HRP_CONFIG)
        spp = HRP_CONFIG.samples_per_pri
        template = pulse_template(HRP_CONFIG)
        peak_offset = int(np.argmax(np.abs(template)))
        assert signal[peak_offset] == pytest.approx(template[peak_offset])
        assert signal[spp + peak_offset] == pytest.approx(-template[peak_offset])

    def test_build_pulse_train_validates_symbols(self):
        with pytest.raises(ValueError):
            build_pulse_train(np.array([0.5, 1.0]), HRP_CONFIG)
        with pytest.raises(ValueError):
            build_pulse_train(np.array([]), HRP_CONFIG)

    def test_custom_positions(self):
        symbols = np.array([1.0, 1.0])
        positions = np.array([0, 100])
        signal = build_pulse_train(symbols, HRP_CONFIG, positions=positions)
        template = pulse_template(HRP_CONFIG)
        peak_offset = int(np.argmax(np.abs(template)))
        assert signal[100 + peak_offset] == pytest.approx(template[peak_offset])

    def test_positions_must_match_and_be_nonnegative(self):
        with pytest.raises(ValueError):
            build_pulse_train(np.array([1.0, 1.0]), HRP_CONFIG, positions=np.array([0]))
        with pytest.raises(ValueError):
            build_pulse_train(np.array([1.0]), HRP_CONFIG, positions=np.array([-5]))


class TestChannel:
    def test_delay_matches_distance(self):
        channel = Channel(distance_m=30.0, seed_label="t")
        expected = round(30.0 / SPEED_OF_LIGHT * HRP_CONFIG.sample_rate_hz)
        assert channel.delay_samples(HRP_CONFIG) == expected

    def test_noise_sigma_from_snr(self):
        assert Channel(1.0, snr_db=20.0, seed_label="t").noise_sigma() == pytest.approx(0.1)
        assert Channel(1.0, snr_db=0.0, seed_label="t").noise_sigma() == pytest.approx(1.0)

    def test_propagation_shifts_signal(self):
        channel = Channel(distance_m=15.0, snr_db=80.0, seed_label="quiet")
        signal = build_pulse_train(np.array([1.0]), HRP_CONFIG)
        received = channel.propagate(signal, HRP_CONFIG)
        delay = channel.delay_samples(HRP_CONFIG)
        template = pulse_template(HRP_CONFIG)
        peak_offset = int(np.argmax(np.abs(template)))
        assert received[delay + peak_offset] == pytest.approx(
            template[peak_offset], abs=1e-3
        )

    def test_multipath_must_be_later(self):
        with pytest.raises(ValueError):
            Multipath(extra_delay_s=-1e-9, gain=0.5)
        with pytest.raises(ValueError):
            Multipath(extra_delay_s=0.0, gain=0.5)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            Channel(distance_m=-1.0)

    def test_deterministic_noise(self):
        signal = np.zeros(100)
        rx1 = Channel(0.0, seed_label="same").propagate(signal, HRP_CONFIG)
        rx2 = Channel(0.0, seed_label="same").propagate(signal, HRP_CONFIG)
        assert np.array_equal(rx1, rx2)


class TestToa:
    def _received(self, distance_m, snr_db=25.0, label="toa"):
        from repro.phy.hrp import generate_sts

        symbols = generate_sts(b"\x99" * 16, 0, 64)
        signal = build_pulse_train(symbols, HRP_CONFIG)
        channel = Channel(distance_m, snr_db=snr_db, seed_label=label)
        return channel.propagate(signal, HRP_CONFIG), signal, channel

    def test_peak_at_true_delay(self):
        received, template, channel = self._received(20.0)
        corr = cross_correlation(received, template)
        estimate = first_path_toa(corr)
        true_delay = channel.delay_samples(HRP_CONFIG)
        assert abs(estimate.peak_sample - true_delay) <= 1

    def test_back_search_finds_weak_early_path(self):
        # Direct path at 10 m with gain 0.5 plus a strong echo 3 m later:
        # peak locks the echo, back-search must recover the early path.
        from repro.phy.hrp import generate_sts

        symbols = generate_sts(b"\x98" * 16, 0, 64)
        signal = build_pulse_train(symbols, HRP_CONFIG)
        echo_delay_s = 3.0 / SPEED_OF_LIGHT
        channel = Channel(10.0, snr_db=30.0, path_gain=0.5,
                          multipath=(Multipath(echo_delay_s, 1.0),),
                          seed_label="mp")
        received = channel.propagate(signal, HRP_CONFIG)
        corr = cross_correlation(received, template=signal)
        estimate = first_path_toa(corr, threshold_ratio=0.3, back_search_window=64)
        true_delay = channel.delay_samples(HRP_CONFIG)
        assert estimate.used_early_path
        assert abs(estimate.toa_sample - true_delay) <= 4

    def test_threshold_validation(self):
        corr = np.ones(10)
        with pytest.raises(ValueError):
            first_path_toa(corr, threshold_ratio=0.0)
        with pytest.raises(ValueError):
            first_path_toa(corr, threshold_ratio=1.5)
        with pytest.raises(ValueError):
            first_path_toa(corr, back_search_window=-1)

    def test_correlation_requires_long_enough_signal(self):
        with pytest.raises(ValueError):
            cross_correlation(np.zeros(5), np.zeros(10))

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=1.0, max_value=80.0))
    def test_ranging_error_bounded_property(self, distance):
        received, template, channel = self._received(distance, label=f"p{distance}")
        corr = cross_correlation(received, template)
        estimate = first_path_toa(corr)
        measured = estimate.toa_sample * HRP_CONFIG.metres_per_sample
        # Within half a metre at 25 dB SNR (one sample is ~15 cm).
        assert abs(measured - distance) < 0.5
