"""Tests for on-wire frame size models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ivn.frames import (
    MACSEC_ICV_BYTES,
    MACSEC_SECTAG_BYTES,
    MACSEC_SECTAG_SCI_BYTES,
    CanFdFrame,
    CanFrame,
    CanXlFrame,
    EthernetFrame,
    can_fd_dlc_for,
)


class TestClassicCan:
    def test_base_frame_bits_without_stuffing(self):
        # 44 fixed + 64 data + 3 IFS = 111 for an 8-byte base frame.
        frame = CanFrame(0x123, b"\x00" * 8)
        assert frame.wire_bits(worst_case_stuffing=False) == 111

    def test_worst_case_stuffing_adds_quarter(self):
        frame = CanFrame(0x123, b"\x00" * 8)
        # stuffable region 34 + 64 = 98 -> 24 stuff bits.
        assert frame.wire_bits() == 111 + (98 - 1) // 4

    def test_extended_frame_larger(self):
        base = CanFrame(0x123, b"\xaa" * 8)
        ext = CanFrame(0x123, b"\xaa" * 8, extended=True)
        assert ext.wire_bits() > base.wire_bits()

    def test_payload_limit(self):
        with pytest.raises(ValueError):
            CanFrame(0x1, b"\x00" * 9)

    def test_id_range(self):
        with pytest.raises(ValueError):
            CanFrame(0x800, b"")
        CanFrame(0x7FF, b"")              # max base id ok
        CanFrame(0x1FFFFFFF, b"", extended=True)
        with pytest.raises(ValueError):
            CanFrame(0x20000000, b"", extended=True)

    def test_transmission_time_at_500k(self):
        frame = CanFrame(0x100, b"\x00" * 8)
        expected = frame.wire_bits() / 500e3
        assert frame.transmission_time_s() == pytest.approx(expected)
        with pytest.raises(ValueError):
            frame.transmission_time_s(0)

    @given(st.binary(max_size=8))
    def test_bits_monotone_in_payload(self, payload):
        frame = CanFrame(0x100, payload)
        bigger = CanFrame(0x100, payload + b"\x00") if len(payload) < 8 else frame
        assert bigger.wire_bits() >= frame.wire_bits()


class TestCanFd:
    def test_dlc_rounding(self):
        assert can_fd_dlc_for(0) == 0
        assert can_fd_dlc_for(9) == 12
        assert can_fd_dlc_for(33) == 48
        assert can_fd_dlc_for(64) == 64
        with pytest.raises(ValueError):
            can_fd_dlc_for(65)

    def test_crc_switches_at_16_bytes(self):
        small = CanFdFrame(0x1, b"\x00" * 16)
        large = CanFdFrame(0x1, b"\x00" * 20)
        # CRC21 vs CRC17 plus 4 extra payload bytes.
        assert large.data_phase_bits() > small.data_phase_bits() + 32

    def test_dual_bitrate_faster_than_classic_for_large_payload(self):
        fd = CanFdFrame(0x1, b"\x00" * 64)
        classic_time = sum(
            CanFrame(0x1, b"\x00" * 8).transmission_time_s(500e3) for _ in range(8)
        )
        assert fd.transmission_time_s(500e3, 2e6) < classic_time

    def test_payload_limit(self):
        with pytest.raises(ValueError):
            CanFdFrame(0x1, b"\x00" * 65)


class TestCanXl:
    def test_large_payload_supported(self):
        frame = CanXlFrame(0x10, b"\x00" * 2048)
        assert frame.data_phase_bits() > 8 * 2048

    def test_payload_bounds(self):
        with pytest.raises(ValueError):
            CanXlFrame(0x10, b"")
        with pytest.raises(ValueError):
            CanXlFrame(0x10, b"\x00" * 2049)

    def test_field_validation(self):
        with pytest.raises(ValueError):
            CanXlFrame(0x800, b"\x00")
        with pytest.raises(ValueError):
            CanXlFrame(0x10, b"\x00", sdu_type=256)
        with pytest.raises(ValueError):
            CanXlFrame(0x10, b"\x00", acceptance_field=1 << 32)

    def test_xl_beats_fd_for_bulk(self):
        # 1500 bytes over XL in one frame vs FD in 24 frames.
        xl_time = CanXlFrame(0x10, b"\x00" * 1500).transmission_time_s(500e3, 10e6)
        fd_time = 24 * CanFdFrame(0x10, b"\x00" * 64).transmission_time_s(500e3, 2e6)
        assert xl_time < fd_time


class TestEthernet:
    def test_minimum_frame_padding(self):
        tiny = EthernetFrame("a", "b", b"\x01")
        # 14 header + 46 padded + 4 FCS = 64.
        assert tiny.frame_bytes() == 64

    def test_wire_bits_include_preamble_and_ifg(self):
        frame = EthernetFrame("a", "b", b"\x00" * 46)
        assert frame.wire_bits() == 8 * (8 + 64 + 12)

    def test_macsec_overhead(self):
        plain = EthernetFrame("a", "b", b"\x00" * 100)
        protected = EthernetFrame("a", "b", b"\x00" * 100, macsec=True)
        with_sci = EthernetFrame("a", "b", b"\x00" * 100, macsec=True, macsec_sci=True)
        assert protected.frame_bytes() - plain.frame_bytes() == (
            MACSEC_SECTAG_BYTES + MACSEC_ICV_BYTES
        )
        assert with_sci.frame_bytes() - plain.frame_bytes() == (
            MACSEC_SECTAG_SCI_BYTES + MACSEC_ICV_BYTES
        )

    def test_vlan_tag_adds_4_bytes(self):
        plain = EthernetFrame("a", "b", b"\x00" * 100)
        tagged = EthernetFrame("a", "b", b"\x00" * 100, vlan_tag=True)
        assert tagged.frame_bytes() - plain.frame_bytes() == 4

    def test_mtu_and_sci_validation(self):
        with pytest.raises(ValueError):
            EthernetFrame("a", "b", b"\x00" * 1501)
        with pytest.raises(ValueError):
            EthernetFrame("a", "b", b"", macsec=False, macsec_sci=True)
