"""The campaign engine: determinism, resume, supervision verdicts.

These tests run real supervised worker processes over tiny matrices of
cheap shards (chaos at short durations), so every supervision path —
crash retry, hang detection, quarantine, timeout, interrupt — is the
production code path, not a mock.
"""

import json

import pytest

from repro.campaign import (
    CampaignEngine,
    CampaignError,
    CampaignSpec,
    CampaignTool,
    ShardSpec,
    plan_worker_faults,
    replay,
    validate_campaign_dict,
)
from repro.faults import get_plan

CRASH = "runner-worker-crash"
HANG = "runner-worker-hang"


def small_spec(name="eng"):
    return CampaignSpec.matrix(
        tools=[CampaignTool.CHAOS, CampaignTool.LINT],
        scenarios=["pkes-legacy", "onboard-insecure"],
        plans=["baseline"], seeds=[5], duration=8, name=name)


def make_engine(root, spec=None, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("fsync", False)
    return CampaignEngine(spec or small_spec(), journal_root=root, **kwargs)


def doc_bytes(report):
    document = report.to_json_dict()
    validate_campaign_dict(document)
    return json.dumps(document, sort_keys=True)


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted run every other test compares bytes against."""
    root = tmp_path_factory.mktemp("ref")
    return doc_bytes(make_engine(root).run())


class TestDeterminism:
    def test_two_fresh_runs_are_byte_identical(self, tmp_path, reference):
        assert doc_bytes(make_engine(tmp_path).run()) == reference

    def test_parallelism_does_not_change_bytes(self, tmp_path, reference):
        sequential = make_engine(tmp_path, jobs=1)
        assert doc_bytes(sequential.run()) == reference

    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        make_engine(tmp_path).run()
        with pytest.raises(CampaignError, match="resume"):
            make_engine(tmp_path).run()

    def test_resume_refuses_edited_spec(self, tmp_path):
        make_engine(tmp_path).run()
        other = CampaignSpec.matrix(
            tools=[CampaignTool.LINT], scenarios=["pkes-legacy"],
            seeds=[5], name="eng")  # same id, different matrix
        with pytest.raises(CampaignError, match="different"):
            make_engine(tmp_path, spec=other).run(resume=True)

    def test_resume_of_complete_campaign_is_pure_replay(self, tmp_path,
                                                        reference):
        make_engine(tmp_path).run()
        resumed = make_engine(tmp_path)
        report = resumed.run(resume=True)
        assert doc_bytes(report) == reference
        assert report.resumed_shards == len(small_spec())
        # replay executed nothing: only the original journal records
        state = replay(resumed.journal_file)
        assert state.ended and len(state.starts) == len(small_spec())


class TestSupervisionVerdicts:
    def test_worker_crash_is_retried_to_the_same_bytes(self, tmp_path,
                                                       reference):
        sid = small_spec().shards[0].shard_id
        engine = make_engine(tmp_path, worker_faults={sid: {0: CRASH}})
        report = engine.run()
        assert doc_bytes(report) == reference
        assert report.entries[sid].attempts == 2

    def test_worker_hang_is_detected_and_retried(self, tmp_path, reference):
        sid = small_spec().shards[0].shard_id
        engine = make_engine(tmp_path, worker_faults={sid: {0: HANG}},
                             heartbeat_interval_s=0.02, hang_timeout_s=0.3)
        report = engine.run()
        assert doc_bytes(report) == reference
        assert report.entries[sid].attempts == 2

    def test_poison_shard_is_quarantined_not_dropped(self, tmp_path):
        sid = small_spec().shards[0].shard_id
        engine = make_engine(
            tmp_path, quarantine_after=2,
            worker_faults={sid: {0: CRASH, 1: CRASH}})
        report = engine.run()
        document = report.to_json_dict()
        validate_campaign_dict(document)
        entry = report.entries[sid]
        assert entry.status == "quarantined" and entry.attempts == 2
        assert "quarantined after 2" in entry.error
        assert document["summary"]["quarantined"] == 1
        assert document["summary"]["complete"]
        assert report.exit_code() == 1
        # the quarantine is durable: resume does not retry poison
        resumed = make_engine(tmp_path).run(resume=True)
        assert resumed.entries[sid].status == "quarantined"
        assert resumed.entries[sid].attempts == 2

    def test_hung_shard_past_budget_times_out(self, tmp_path):
        sid = small_spec().shards[0].shard_id
        engine = make_engine(
            tmp_path, shard_timeout_s=0.3, hang_timeout_s=10.0,
            worker_faults={sid: {0: HANG}})
        report = engine.run()
        entry = report.entries[sid]
        assert entry.status == "timeout"
        assert "timed out" in entry.error
        assert report.exit_code() == 1

    def test_deterministic_tool_failure_is_error_without_retry(self,
                                                               tmp_path):
        bad = CampaignSpec(shards=(
            ShardSpec(tool=CampaignTool.LINT, scenario="no-such-scenario"),),
            name="bad")
        report = make_engine(tmp_path, spec=bad, jobs=1).run()
        entry = report.entries["lint/no-such-scenario/-/s0"]
        assert entry.status == "error" and entry.attempts == 1
        assert "KeyError" in entry.error
        validate_campaign_dict(report.to_json_dict())


class TestInterruptAndResume:
    def stop_after(self, engine, n):
        """Request a graceful stop once n shards have settled."""
        original = engine._emit
        seen = {"n": 0}

        def spy(kind, source, message, **fields):
            original(kind, source, message, **fields)
            if kind.value == "shard-done":
                seen["n"] += 1
                if seen["n"] >= n:
                    engine.request_stop()

        engine._emit = spy

    @pytest.mark.parametrize("settle_first", [1, 2, 3])
    def test_interrupt_then_resume_is_byte_identical(self, tmp_path,
                                                     reference,
                                                     settle_first):
        engine = make_engine(tmp_path, jobs=1)
        self.stop_after(engine, settle_first)
        partial = engine.run()
        assert partial.interrupted and partial.exit_code() == 130
        partial_doc = partial.to_json_dict()
        validate_campaign_dict(partial_doc)
        assert partial_doc["summary"]["interrupted"]
        assert partial_doc["summary"]["pending"] >= 1
        state = replay(engine.journal_file)
        assert state.interrupts == 1 and not state.ended

        resumed = make_engine(tmp_path).run(resume=True)
        assert doc_bytes(resumed) == reference
        assert resumed.resumed_shards == settle_first
        assert not resumed.interrupted

    def test_partial_report_contains_only_settled_results(self, tmp_path):
        engine = make_engine(tmp_path, jobs=1)
        self.stop_after(engine, 1)
        partial = engine.run()
        statuses = {e.status for e in partial.entries.values()}
        assert statuses == {"ok"} and len(partial.entries) >= 1
        counts = partial.counts()
        assert counts["pending"] == len(small_spec()) - len(partial.entries)


class TestSelfChaosPlanBridge:
    def test_fault_map_is_deterministic(self):
        spec = small_spec()
        plan = get_plan("severe")
        first = plan_worker_faults(spec, plan, base_seed=4)
        second = plan_worker_faults(spec, plan, base_seed=4)
        assert first == second
        # the severe plan's worker-crash window covers attempts 0-1
        assert any(faults for faults in first.values())
        for per_attempt in first.values():
            assert set(per_attempt.values()) <= {CRASH, HANG}

    def test_fault_map_respects_base_seed(self):
        spec = CampaignSpec.matrix(
            tools=[CampaignTool.CHAOS], scenarios=["pkes-legacy"],
            plans=["baseline"], seeds=list(range(8)), duration=8)
        plan = get_plan("severe")
        maps = {seed: plan_worker_faults(spec, plan, base_seed=seed)
                for seed in (1, 2)}
        # both derive from the same windows but their streams differ;
        # determinism per seed is the contract, equality across seeds
        # is not required (and the windows may still coincide)
        assert maps[1] == plan_worker_faults(spec, plan, base_seed=1)

    def test_plan_driven_self_chaos_reaches_reference_bytes(
            self, tmp_path, reference):
        spec = small_spec()
        faults = plan_worker_faults(spec, get_plan("severe"), base_seed=4)
        # quarantine_after above the faulted attempts: every shard must
        # survive its injected worker deaths and settle identically
        engine = make_engine(tmp_path, worker_faults=faults,
                             quarantine_after=4,
                             heartbeat_interval_s=0.02, hang_timeout_s=0.3)
        assert doc_bytes(engine.run()) == reference
