"""Tests for the threat taxonomy and default catalog."""

import pytest

from repro.core.layers import LAYER_INFO, Layer, adjacent_layers
from repro.core.threats import (
    AccessLevel,
    Attack,
    Defense,
    SecurityProperty,
    ThreatCatalog,
    default_catalog,
)


class TestLayers:
    def test_six_layers_ordered_bottom_up(self):
        assert Layer.PHYSICAL < Layer.NETWORK < Layer.SOFTWARE_PLATFORM
        assert Layer.DATA < Layer.SYSTEM_OF_SYSTEMS < Layer.COLLABORATION

    def test_layer_info_complete(self):
        assert set(LAYER_INFO) == set(Layer)
        for info in LAYER_INFO.values():
            assert info.title
            assert info.paper_section
            assert info.example_mechanisms
            assert info.subpackage.startswith("repro.")

    def test_adjacency(self):
        assert adjacent_layers(Layer.PHYSICAL) == (Layer.NETWORK,)
        assert adjacent_layers(Layer.COLLABORATION) == (Layer.SYSTEM_OF_SYSTEMS,)
        assert set(adjacent_layers(Layer.DATA)) == {Layer.SOFTWARE_PLATFORM, Layer.SYSTEM_OF_SYSTEMS}


class TestCatalogConstruction:
    def test_attack_requires_property(self):
        with pytest.raises(ValueError):
            Attack("empty", Layer.NETWORK, frozenset(), AccessLevel.REMOTE)

    def test_duplicate_attack_rejected(self):
        cat = ThreatCatalog()
        attack = Attack("a", Layer.NETWORK, frozenset({SecurityProperty.INTEGRITY}),
                        AccessLevel.REMOTE)
        cat.add_attack(attack)
        with pytest.raises(ValueError):
            cat.add_attack(attack)

    def test_defense_must_reference_known_attacks(self):
        cat = ThreatCatalog()
        with pytest.raises(ValueError):
            cat.add_defense(Defense(
                "d", Layer.NETWORK, frozenset({SecurityProperty.INTEGRITY}),
                frozenset({"nonexistent"}),
            ))

    def test_defense_covers_same_layer_only(self):
        attack = Attack("x", Layer.NETWORK, frozenset({SecurityProperty.INTEGRITY}),
                        AccessLevel.REMOTE)
        wrong_layer = Defense("d", Layer.PHYSICAL,
                              frozenset({SecurityProperty.INTEGRITY}), frozenset({"x"}))
        right_layer = Defense("d2", Layer.NETWORK,
                              frozenset({SecurityProperty.INTEGRITY}), frozenset({"x"}))
        assert not wrong_layer.covers(attack)
        assert right_layer.covers(attack)


class TestDefaultCatalog:
    def test_every_layer_has_attacks_and_defenses(self):
        cat = default_catalog()
        for layer in Layer:
            assert cat.attacks_on_layer(layer), f"no attacks on {layer}"
            assert cat.defenses_on_layer(layer), f"no defenses on {layer}"

    def test_all_defenses_reference_valid_attacks(self):
        cat = default_catalog()
        for defense in cat.defenses.values():
            assert defense.mitigates <= cat.attacks.keys()

    def test_full_catalog_covers_everything(self):
        # The paper argues every discussed attack has a (researched) defense.
        cat = default_catalog()
        assert cat.uncovered_attacks() == []

    def test_no_defenses_covers_nothing(self):
        cat = default_catalog()
        assert len(cat.uncovered_attacks(set())) == len(cat.attacks)

    def test_insider_attacks_exist(self):
        # The paper stresses internal attackers (SVII-B); the catalog must
        # model credentialed adversaries.
        cat = default_catalog()
        insiders = [a for a in cat.attacks.values() if a.access == AccessLevel.INSIDER]
        assert insiders

    def test_access_difficulty_ordering(self):
        assert AccessLevel.REMOTE.difficulty < AccessLevel.ADJACENT.difficulty
        assert AccessLevel.ADJACENT.difficulty < AccessLevel.PHYSICAL.difficulty
