"""Suppression baseline: capture, round-trip, and gating behaviour."""

import pytest

from repro.core.entities import Component, Interface, SystemModel
from repro.core.layers import Layer
from repro.core.threats import AccessLevel
from repro.lint import AnalysisTarget, Baseline, BaselineEntry, Linter, Severity


def insecure_target():
    model = SystemModel("baseline-fixture")
    model.add_component(Component("telematics", Layer.NETWORK, criticality=2,
                                  exposed=True))
    model.add_component(Component("brake", Layer.NETWORK, criticality=5))
    model.connect(Interface("telematics", "brake", "can", AccessLevel.REMOTE))
    return AnalysisTarget(name="baseline-fixture", model=model)


def test_from_report_captures_every_finding():
    report = Linter().run(insecure_target())
    assert report.findings
    baseline = Baseline.from_report(report, comment="intentional")
    assert len(baseline) == len(report.findings)
    for finding in report.findings:
        assert baseline.suppresses(finding)
        assert baseline.entries[finding.fingerprint].comment == "intentional"


def test_baselined_run_suppresses_and_exits_clean():
    linter = Linter()
    first = linter.run(insecure_target())
    baseline = Baseline.from_report(first)
    second = linter.run(insecure_target(), baseline=baseline)
    assert second.findings == ()
    assert len(second.suppressed) == len(first.findings)
    assert second.exit_code(Severity.INFO) == 0


def test_new_finding_still_fails_through_baseline():
    linter = Linter()
    baseline = Baseline.from_report(linter.run(insecure_target()))
    target = insecure_target()
    # A regression appears after the baseline was captured.
    target.model.add_component(Component("steer", Layer.NETWORK, criticality=5,
                                         exposed=True))
    report = linter.run(target, baseline=baseline)
    assert "SEC005" in report.finding_rule_ids()
    assert report.exit_code(Severity.LOW) == 1


def test_round_trip_through_file(tmp_path):
    report = Linter().run(insecure_target())
    baseline = Baseline.from_report(report, comment="pinned")
    path = tmp_path / "lint-baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.target == "baseline-fixture"
    assert loaded.entries == baseline.entries
    assert Linter().run(insecure_target(), baseline=loaded).findings == ()


def test_json_is_stable_and_human_reviewable(tmp_path):
    baseline = Baseline(target="t")
    baseline.add(BaselineEntry("ab" * 8, "SEC001", "a->b", "why"))
    text = baseline.to_json()
    assert '"ruleId": "SEC001"' in text
    assert '"comment": "why"' in text
    assert Baseline.from_json(text).entries == baseline.entries


def test_unsupported_version_rejected():
    with pytest.raises(ValueError, match="version"):
        Baseline.from_json('{"version": 99, "suppressions": []}')
