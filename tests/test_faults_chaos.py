"""Chaos campaigns: determinism, availability, and the degradation gates."""

import json

import pytest

from repro.faults import (
    CHAOS_SCENARIOS,
    FaultInjector,
    FaultKind,
    baseline_plan,
    chaos_scenario_names,
    get_plan,
    run_chaos_campaign,
    run_chaos_scenario,
    validate_chaos_dict,
)

ALL = chaos_scenario_names()


@pytest.fixture(scope="module")
def baseline_campaign():
    return run_chaos_campaign(ALL, "baseline", base_seed=0)


@pytest.fixture(scope="module")
def severe_campaign():
    return run_chaos_campaign(ALL, "severe", base_seed=0)


class TestDeterminism:
    def test_same_seed_is_byte_identical(self, baseline_campaign):
        replay = run_chaos_campaign(ALL, "baseline", base_seed=0)
        assert json.dumps(baseline_campaign, sort_keys=True) \
            == json.dumps(replay, sort_keys=True)

    def test_different_seed_changes_the_fault_sequence(self):
        a = run_chaos_scenario("onboard-insecure", baseline_plan(),
                               base_seed=0)
        b = run_chaos_scenario("onboard-insecure", baseline_plan(),
                               base_seed=1)
        assert a["faults"]["byKind"] != b["faults"]["byKind"]

    def test_injector_streams_are_per_kind_and_target(self):
        injector = FaultInjector(baseline_plan(), base_seed=0)
        replay = FaultInjector(baseline_plan(), base_seed=0)
        fired = [injector.fires(FaultKind.IVN_FRAME_DROP, "zonal-can", t)
                 for t in range(8, 20)]
        assert any(fired) and not all(fired)  # probabilistic window
        assert fired == [replay.fires(FaultKind.IVN_FRAME_DROP, "zonal-can", t)
                         for t in range(8, 20)]


class TestCampaignDocument:
    def test_validates_against_the_schema(self, baseline_campaign,
                                          severe_campaign):
        validate_chaos_dict(baseline_campaign)
        validate_chaos_dict(severe_campaign)

    def test_multiple_layers_sustain_faults_with_availability(
            self, baseline_campaign):
        # Acceptance: >= 3 layers saw in-window faults yet kept availability.
        assert len(baseline_campaign["summary"]["layersSustained"]) >= 3
        assert baseline_campaign["summary"]["faultsInjected"] > 0

    def test_unknown_scenario_and_bad_duration_are_rejected(self):
        with pytest.raises(KeyError, match="unknown chaos scenario"):
            run_chaos_scenario("warp-core", baseline_plan())
        with pytest.raises(ValueError, match="duration"):
            run_chaos_scenario("cariad-breach", baseline_plan(), duration=0)


def scenario(campaign, name):
    return next(s for s in campaign["scenarios"] if s["scenario"] == name)


class TestDegradationGates:
    def test_hardened_rides_out_baseline_at_degraded(self, baseline_campaign):
        hardened = scenario(baseline_campaign, "onboard-hardened")
        degradation = hardened["degradation"]
        assert degradation["minLevel"] == "degraded"  # never lower
        assert degradation["finalLevel"] == "full"    # recovered
        assert degradation["timeToDegradeS"] is not None
        assert degradation["timeToRecoverS"] is not None

    def test_hardened_resilience_machinery_actually_ran(
            self, baseline_campaign):
        hardened = scenario(baseline_campaign, "onboard-hardened")
        assert hardened["retry"]["recovered"] > 0
        assert hardened["breakers"][0]["opens"] >= 1
        assert hardened["ssi"]["staleHits"] > 0  # cached DID fallback
        assert hardened["alerts"] >= 1           # IDS isolated the babbler

    def test_insecure_scenarios_hit_the_floor_under_severe(
            self, severe_campaign):
        at_floor = severe_campaign["summary"]["scenariosAtMinimalRiskOrBelow"]
        for name in ("pkes-legacy", "onboard-insecure", "cariad-breach"):
            assert name in at_floor

    def test_resilient_beats_insecure_cloud_availability_under_severe(
            self, severe_campaign):
        maas = scenario(severe_campaign, "maas-platform")
        insecure = scenario(severe_campaign, "cariad-breach")
        maas_cloud = next(e for e in maas["layers"] if e["layer"] == "data")
        bare_cloud = next(e for e in insecure["layers"]
                          if e["layer"] == "data")
        assert maas_cloud["windowAvailability"] \
            >= bare_cloud["windowAvailability"]

    def test_every_scenario_posture_is_reflected_in_the_doc(
            self, baseline_campaign):
        booked = {"phy": "physical", "ivn": "network", "cloud": "data",
                  "ssi": "software_platform"}
        for result in baseline_campaign["scenarios"]:
            posture = CHAOS_SCENARIOS[result["scenario"]]
            assert result["resilient"] == posture.resilient
            assert [e["layer"] for e in result["layers"]] \
                == [booked[name] for name in posture.subsystems]


class TestScenarioWindows:
    def test_window_covers_only_exposed_kinds(self):
        # cariad-breach is cloud-only: its window must hull the cloud
        # faults, not the runner-crash spec at [0, 1).
        result = run_chaos_scenario("cariad-breach", get_plan("baseline"))
        assert result["window"] == {"start": 8.0, "end": 19.0}
