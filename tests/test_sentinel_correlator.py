"""Cascade correlation: flow-adjacent alarms become one incident."""

from repro.core.layers import Layer
from repro.flow.graph import FlowEdge, FlowGraph, FlowNode
from repro.sentinel import CascadeCorrelator, Incident


def chain_graph():
    """uwb-anchor -> adas-cam -> zc-front -> brake-ecu, plus an island."""
    graph = FlowGraph("test")
    for name in ("uwb-anchor", "adas-cam", "zc-front", "brake-ecu", "island"):
        graph.add_node(FlowNode(name, "component", Layer.NETWORK))
    graph.add_edge(FlowEdge("uwb-anchor", "adas-cam", "interface"))
    graph.add_edge(FlowEdge("adas-cam", "zc-front", "interface"))
    graph.add_edge(FlowEdge("zc-front", "brake-ecu", "interface"))
    return graph


class TestAdjacency:
    def test_anchored_sources_within_hop_budget_are_related(self):
        correlator = CascadeCorrelator.from_flow_graph(
            chain_graph(),
            {"uwb": "uwb-anchor", "camera": "adas-cam", "brake": "brake-ecu"},
            max_hops=2)
        assert correlator.related("uwb", "camera")      # 1 hop
        assert correlator.related("camera", "brake")    # 2 hops
        assert not correlator.related("uwb", "brake")   # 3 hops

    def test_adjacency_is_undirected(self):
        correlator = CascadeCorrelator.from_flow_graph(
            chain_graph(), {"uwb": "uwb-anchor", "camera": "adas-cam"},
            max_hops=1)
        assert correlator.related("camera", "uwb")

    def test_unanchored_source_is_singleton(self):
        correlator = CascadeCorrelator.from_flow_graph(
            chain_graph(), {"uwb": "uwb-anchor", "ghost": "no-such-node"},
            max_hops=3)
        assert not correlator.related("uwb", "ghost")
        assert "ghost" in correlator.adjacency  # present, just isolated

    def test_same_source_is_always_related(self):
        assert CascadeCorrelator().related("x", "x")


class TestIncidents:
    def test_first_alarm_opens_an_incident(self):
        correlator = CascadeCorrelator()
        incident, action = correlator.on_alarm(1.0, "ecu", "can-rate")
        assert action == "opened"
        assert incident.incident_id == 1 and incident.open

    def test_adjacent_alarm_joins_within_window(self):
        correlator = CascadeCorrelator({"a": {"b"}}, join_window_s=8.0)
        correlator.on_alarm(0.0, "a", "can-rate")
        incident, action = correlator.on_alarm(5.0, "b", "secoc-auth")
        assert action == "joined"
        assert incident.sources == {"a", "b"}
        assert incident.to_dict()["crossLayer"] is True

    def test_unrelated_alarm_opens_a_second_incident(self):
        correlator = CascadeCorrelator({"a": {"b"}})
        correlator.on_alarm(0.0, "a", "can-rate")
        incident, action = correlator.on_alarm(1.0, "z", "cloud-budget")
        assert action == "opened"
        assert incident.incident_id == 2

    def test_stale_incident_does_not_absorb_new_alarms(self):
        correlator = CascadeCorrelator({"a": {"b"}}, join_window_s=4.0)
        correlator.on_alarm(0.0, "a", "can-rate")
        _, action = correlator.on_alarm(10.0, "b", "secoc-auth")
        assert action == "opened"

    def test_join_window_measured_from_last_alarm_not_open(self):
        correlator = CascadeCorrelator({"a": {"b"}}, join_window_s=4.0)
        correlator.on_alarm(0.0, "a", "can-rate")
        correlator.on_alarm(3.0, "a", "can-rate")     # keeps it warm
        _, action = correlator.on_alarm(6.0, "b", "secoc-auth")
        assert action == "joined"

    def test_repeat_alarm_on_member_source_joins(self):
        correlator = CascadeCorrelator()
        first, _ = correlator.on_alarm(0.0, "ecu", "can-rate")
        second, action = correlator.on_alarm(1.0, "ecu", "secoc-auth")
        assert action == "joined" and second is first
        assert second.to_dict()["alarmCount"] == 2
        assert second.to_dict()["crossLayer"] is False


class TestClosing:
    def test_incident_closes_when_all_sources_clear(self):
        correlator = CascadeCorrelator({"a": {"b"}})
        correlator.on_alarm(0.0, "a", "can-rate")
        correlator.on_alarm(1.0, "b", "secoc-auth")
        assert correlator.on_all_clear(5.0, {"a"}) == []  # b still alarmed
        [closed] = correlator.on_all_clear(6.0, {"a", "b"})
        assert closed.closed_t == 6.0
        assert correlator.open_incidents() == []

    def test_to_dict_shape(self):
        incident = Incident(3, 2.0, "ecu", "can-rate")
        assert incident.to_dict() == {
            "id": 3, "openedT": 2.0, "closedT": None, "sources": ["ecu"],
            "alarmCount": 1, "crossLayer": False}
