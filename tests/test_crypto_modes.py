"""CMAC (RFC 4493) and GCM (NIST SP 800-38D) tests against published vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.modes import AuthenticationError, Cmac, Gcm, cmac, ctr_xcrypt

RFC4493_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
RFC4493_MSG = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)


class TestCmacRfc4493:
    def test_empty_message(self):
        assert cmac(RFC4493_KEY, b"") == bytes.fromhex("bb1d6929e95937287fa37d129b756746")

    def test_16_byte_message(self):
        assert cmac(RFC4493_KEY, RFC4493_MSG[:16]) == bytes.fromhex(
            "070a16b46b4d4144f79bdd9dd04a287c"
        )

    def test_40_byte_message(self):
        assert cmac(RFC4493_KEY, RFC4493_MSG[:40]) == bytes.fromhex(
            "dfa66747de9ae63030ca32611497c827"
        )

    def test_64_byte_message(self):
        assert cmac(RFC4493_KEY, RFC4493_MSG) == bytes.fromhex(
            "51f0bebf7e3b9d92fc49741779363cfe"
        )


class TestCmacTruncation:
    def test_truncated_tag_is_prefix(self):
        full = cmac(RFC4493_KEY, b"hello")
        assert cmac(RFC4493_KEY, b"hello", tag_bits=32) == full[:4]
        assert cmac(RFC4493_KEY, b"hello", tag_bits=64) == full[:8]

    @pytest.mark.parametrize("bad_bits", [0, -8, 7, 129, 136])
    def test_invalid_truncation_rejected(self, bad_bits):
        with pytest.raises(ValueError):
            cmac(RFC4493_KEY, b"x", tag_bits=bad_bits)

    def test_verify_accepts_and_rejects(self):
        mac = Cmac(RFC4493_KEY)
        tag = mac.tag(b"message", tag_bits=64)
        assert mac.verify(b"message", tag)
        assert not mac.verify(b"messagf", tag)
        assert not mac.verify(b"message", bytes(8))

    @given(st.binary(max_size=80), st.sampled_from([32, 64, 128]))
    def test_verify_roundtrip_property(self, message, bits):
        mac = Cmac(b"\x42" * 16)
        assert mac.verify(message, mac.tag(message, tag_bits=bits))


class TestGcmNistVectors:
    def test_case_1_empty(self):
        gcm = Gcm(b"\x00" * 16)
        ct, tag = gcm.encrypt(b"\x00" * 12, b"")
        assert ct == b""
        assert tag == bytes.fromhex("58e2fccefa7e3061367f1d57a4e7455a")

    def test_case_2_single_block(self):
        gcm = Gcm(b"\x00" * 16)
        ct, tag = gcm.encrypt(b"\x00" * 12, b"\x00" * 16)
        assert ct == bytes.fromhex("0388dace60b6a392f328c2b971b2fe78")
        assert tag == bytes.fromhex("ab6e47d42cec13bdf53a67b21257bddf")

    def test_case_3_multi_block(self):
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        iv = bytes.fromhex("cafebabefacedbaddecaf888")
        pt = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a"
            "86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525"
            "b16aedf5aa0de657ba637b391aafd255"
        )
        gcm = Gcm(key)
        ct, tag = gcm.encrypt(iv, pt)
        assert ct == bytes.fromhex(
            "42831ec2217774244b7221b784d0d49c"
            "e3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa05"
            "1ba30b396a0aac973d58e091473f5985"
        )
        assert tag == bytes.fromhex("4d5c2af327cd64a62cf35abd2ba6fab4")

    def test_case_4_with_aad(self):
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        iv = bytes.fromhex("cafebabefacedbaddecaf888")
        pt = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a"
            "86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525"
            "b16aedf5aa0de657ba637b39"
        )
        aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
        gcm = Gcm(key)
        ct, tag = gcm.encrypt(iv, pt, aad=aad)
        assert ct == bytes.fromhex(
            "42831ec2217774244b7221b784d0d49c"
            "e3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa05"
            "1ba30b396a0aac973d58e091"
        )
        assert tag == bytes.fromhex("5bc94fbc3221a5db94fae95ae7121a47")


class TestGcmBehaviour:
    def test_decrypt_roundtrip(self):
        gcm = Gcm(b"\x07" * 16)
        ct, tag = gcm.encrypt(b"\x01" * 12, b"payload bytes", aad=b"header")
        assert gcm.decrypt(b"\x01" * 12, ct, tag, aad=b"header") == b"payload bytes"

    def test_tampered_ciphertext_rejected(self):
        gcm = Gcm(b"\x07" * 16)
        ct, tag = gcm.encrypt(b"\x01" * 12, b"payload bytes")
        bad = bytes([ct[0] ^ 1]) + ct[1:]
        with pytest.raises(AuthenticationError):
            gcm.decrypt(b"\x01" * 12, bad, tag)

    def test_tampered_aad_rejected(self):
        gcm = Gcm(b"\x07" * 16)
        ct, tag = gcm.encrypt(b"\x01" * 12, b"payload", aad=b"aad-1")
        with pytest.raises(AuthenticationError):
            gcm.decrypt(b"\x01" * 12, ct, tag, aad=b"aad-2")

    def test_non_96_bit_iv(self):
        gcm = Gcm(b"\x07" * 16)
        ct, tag = gcm.encrypt(b"\x02" * 16, b"data")
        assert gcm.decrypt(b"\x02" * 16, ct, tag) == b"data"

    @given(st.binary(max_size=120), st.binary(max_size=40))
    def test_roundtrip_property(self, pt, aad):
        gcm = Gcm(b"\x33" * 16)
        ct, tag = gcm.encrypt(b"\x09" * 12, pt, aad=aad)
        assert gcm.decrypt(b"\x09" * 12, ct, tag, aad=aad) == pt


def test_ctr_xcrypt_is_involution():
    key = b"\x11" * 16
    counter = b"\x00" * 16
    data = b"the quick brown fox jumps over"
    assert ctr_xcrypt(key, counter, ctr_xcrypt(key, counter, data)) == data
