"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.entities import Component, Interface, SystemModel
from repro.core.layers import Layer
from repro.core.metrics import attack_surface
from repro.core.response import ResponseEngine, SecurityAlert, Severity
from repro.ivn.frames import CanFdFrame, CanFrame, CanXlFrame, EthernetFrame
from repro.ivn.secoc import FreshnessManager
from repro.phy.lrp import attack_success_probability
from repro.phy.mtac import attack_acceptance_probability
from repro.sos.cascade import CascadeSimulator
from repro.sos.maas import build_maas_sos


class TestFrameSizeProperties:
    @given(st.binary(max_size=8), st.integers(min_value=0, max_value=0x7FF))
    def test_classic_can_stuffing_bounds(self, payload, can_id):
        frame = CanFrame(can_id, payload)
        unstuffed = frame.wire_bits(worst_case_stuffing=False)
        stuffed = frame.wire_bits(worst_case_stuffing=True)
        assert unstuffed <= stuffed <= unstuffed * 1.25 + 1

    @given(st.integers(min_value=0, max_value=64))
    def test_can_fd_data_bits_monotone(self, n):
        small = CanFdFrame(0x1, b"\x00" * n)
        if n < 64:
            larger = CanFdFrame(0x1, b"\x00" * (n + 1))
            assert larger.data_phase_bits() >= small.data_phase_bits()

    @given(st.integers(min_value=1, max_value=2048))
    def test_can_xl_bits_exceed_payload(self, n):
        frame = CanXlFrame(0x1, b"\x00" * n)
        assert frame.data_phase_bits() > 8 * n

    @given(st.integers(min_value=0, max_value=1500))
    def test_ethernet_frame_bounds(self, n):
        frame = EthernetFrame("a", "b", b"\x00" * n)
        assert 64 <= frame.frame_bytes() <= 1518
        assert frame.wire_bits() == 8 * (frame.frame_bytes() + 20)

    @given(st.integers(min_value=0, max_value=1400))
    def test_macsec_overhead_constant(self, n):
        plain = EthernetFrame("a", "b", b"\x00" * n)
        sec = EthernetFrame("a", "b", b"\x00" * n, macsec=True)
        # Overhead is constant except when padding absorbs it.
        assert 0 <= sec.frame_bytes() - plain.frame_bytes() <= 24


class TestFreshnessProperties:
    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=255))
    def test_reconstruction_exact_within_window(self, last, step):
        manager = FreshnessManager(8)
        if last > 0:
            manager.commit_rx(9, last)
        nxt = last + step
        reconstructed = manager.reconstruct(9, nxt & 0xFF)
        assert reconstructed > last
        assert reconstructed & 0xFF == nxt & 0xFF

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=30))
    def test_sequence_of_increments_always_tracks(self, steps):
        manager = FreshnessManager(8)
        value = 0
        for step in steps:
            value += step
            reconstructed = manager.reconstruct(1, value & 0xFF)
            if step < 256:
                assert reconstructed == value
            manager.commit_rx(1, reconstructed)
            value = reconstructed


class TestSecurityProbabilityProperties:
    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=5))
    def test_lrp_probability_valid_and_monotone_in_errors(self, rounds, max_errors):
        assume(max_errors <= rounds)
        p0 = attack_success_probability(rounds, 0)
        pk = attack_success_probability(rounds, max_errors)
        assert 0.0 <= p0 <= pk <= 1.0

    @given(st.integers(min_value=8, max_value=128),
           st.sampled_from([2, 4, 8, 16]))
    def test_mtac_probability_in_unit_interval(self, n, slots):
        p = attack_acceptance_probability(n, slots, 0.6)
        assert 0.0 <= p <= 1.0


class TestResponseEngineProperties:
    @settings(max_examples=30)
    @given(st.lists(st.sampled_from(list(Severity)), min_size=1, max_size=20))
    def test_applied_action_never_decreases(self, severities):
        engine = ResponseEngine(escalation_threshold=2)
        actions = []
        for t, severity in enumerate(severities):
            engine.handle(SecurityAlert(float(t), Layer.NETWORK, "ecu",
                                        "can-masquerade", severity))
            actions.append(engine.component_status("ecu"))
        assert actions == sorted(actions)


class TestGraphProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=8), st.data())
    def test_securing_edges_never_grows_surface(self, n, data):
        model_open = SystemModel("p-open")
        model_sec = SystemModel("p-sec")
        for i in range(n):
            for model in (model_open, model_sec):
                model.add_component(Component(f"c{i}", Layer.NETWORK,
                                              criticality=1 + i % 5,
                                              exposed=(i == 0)))
        edges = data.draw(st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n * 2))
        secured_flags = data.draw(st.lists(st.booleans(), min_size=len(edges),
                                           max_size=len(edges)))
        for (a, b), secured in zip(edges, secured_flags):
            if a == b:
                continue
            model_open.connect(Interface(f"c{a}", f"c{b}", "x"))
            model_sec.connect(Interface(f"c{a}", f"c{b}", "x",
                                        authenticated=secured))
        open_report = attack_surface(model_open)
        sec_report = attack_surface(model_sec)
        assert sec_report.reachable_components <= open_report.reachable_components
        assert sec_report.unsecured_interfaces <= open_report.unsecured_interfaces


class TestCascadeProperties:
    @pytest.mark.parametrize("p_low,p_high", [(0.1, 0.4), (0.3, 0.8)])
    def test_blast_radius_monotone_in_propagation_probability(self, p_low, p_high):
        model = build_maas_sos()
        low = CascadeSimulator(model, p_unsecured=p_low, p_secured=0.01,
                               seed_label="prop").run("cloud-backend", trials=200)
        high = CascadeSimulator(model, p_unsecured=p_high, p_secured=0.01,
                                seed_label="prop").run("cloud-backend", trials=200)
        assert high.mean_blast_radius >= low.mean_blast_radius
