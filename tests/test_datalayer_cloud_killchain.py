"""Tests for the cloud model, kill-chain engine, and breach scenario."""

import pytest

from repro.datalayer.breach import build_cariad_service, run_breach
from repro.datalayer.cloud import (
    AccessDenied,
    CloudError,
    CloudService,
    CloudTimeout,
    Endpoint,
    EndpointDisabled,
    EndpointNotFound,
    Secret,
    ServiceUnavailable,
    StorageBucket,
    TransientCloudError,
)
from repro.datalayer.killchain import MITIGATIONS, KillChain, cariad_stages


class TestCloudService:
    def _service(self):
        service = CloudService("svc")
        service.add_endpoint(Endpoint("/api", response_tag="api"))
        service.add_endpoint(Endpoint("/open", auth_required=False, response_tag="open"))
        service.add_secret(Secret("master", frozenset({"iam:mint"}), in_process_memory=True))
        service.add_bucket(StorageBucket("data", "data:read",
                                         records=[{"x": 1}, {"x": 2}]))
        return service

    def test_probe_existing_vs_missing(self):
        service = self._service()
        assert service.probe("/api")
        assert not service.probe("/ghost")

    def test_fetch_respects_auth(self):
        service = self._service()
        with pytest.raises(AccessDenied):
            service.fetch("/api")                      # auth required
        assert service.fetch("/open") == "open"

    def test_fetch_unknown_path_is_typed(self):
        service = self._service()
        with pytest.raises(EndpointNotFound):
            service.fetch("/ghost")

    def test_feature_gating(self):
        service = self._service()
        service.add_endpoint(Endpoint("/debug", feature="debug", auth_required=False,
                                      response_tag="dbg"))
        assert not service.probe("/debug")             # feature disabled
        with pytest.raises(EndpointDisabled):
            service.fetch("/debug")
        service.enabled_features.add("debug")
        assert service.probe("/debug")
        assert service.fetch("/debug") == "dbg"

    def test_error_taxonomy_splits_transient_from_permanent(self):
        # Retry machinery keys on TransientCloudError; the permanent
        # classes must not be retryable.
        for transient in (CloudTimeout, ServiceUnavailable):
            assert issubclass(transient, TransientCloudError)
            assert issubclass(transient, CloudError)
        for permanent in (AccessDenied, EndpointNotFound, EndpointDisabled):
            assert issubclass(permanent, CloudError)
            assert not issubclass(permanent, TransientCloudError)

    def test_heap_dump_only_memory_resident(self):
        service = self._service()
        service.add_secret(Secret("kms-held", frozenset({"x"}), in_process_memory=False))
        dumped = service.heap_dump_contents()
        assert [s.key_id for s in dumped] == ["master"]

    def test_mint_requires_scope(self):
        service = self._service()
        master = service.secrets["master"]
        minted = service.mint_access_key(master, "data:read")
        assert service.read_bucket("data", minted) == [{"x": 1}, {"x": 2}]
        weak = Secret("weak", frozenset({"logs:read"}))
        with pytest.raises(AccessDenied):
            service.mint_access_key(weak, "data:read")

    def test_bucket_scope_enforced(self):
        service = self._service()
        with pytest.raises(AccessDenied):
            service.read_bucket("data", Secret("nope", frozenset({"other"})))

    def test_admin_scope_is_wildcard(self):
        bucket = StorageBucket("b", "whatever:read", records=[{}])
        assert bucket.read_all(Secret("root", frozenset({"admin"}))) == [{}]

    def test_endpoint_validation(self):
        with pytest.raises(ValueError):
            Endpoint("no-slash")
        service = self._service()
        with pytest.raises(ValueError):
            service.add_endpoint(Endpoint("/api"))

    def test_access_log_records_operations(self):
        service = self._service()
        service.probe("/api")
        service.fetch("/open")
        assert service.access_log == ["PROBE /api", "GET /open"]


class TestKillChain:
    def test_unmitigated_chain_completes(self):
        report = run_breach(n_vehicles=10, days=5)
        assert report.chain_completed
        assert report.records_exfiltrated == 10 * 5 * 8
        assert report.distinct_vehicles_exposed == 10

    @pytest.mark.parametrize("mitigation", sorted(MITIGATIONS))
    def test_each_mitigation_breaks_the_chain(self, mitigation):
        report = run_breach(n_vehicles=10, days=5, mitigations={mitigation})
        assert not report.chain_completed
        assert report.records_exfiltrated == 0

    def test_mitigation_stops_at_expected_stage(self):
        report = run_breach(n_vehicles=5, days=2,
                            mitigations={"disable-debug-endpoints"})
        stages = [r.stage for r in report.stage_results if r.succeeded]
        assert stages == ["traffic-analysis", "directory-enumeration"]

    def test_stage_results_stop_at_first_failure(self):
        report = run_breach(n_vehicles=5, days=2,
                            mitigations={"scrub-secrets-from-memory"})
        assert not report.stage_results[-1].succeeded
        assert all(r.succeeded for r in report.stage_results[:-1])

    def test_unknown_mitigation_rejected(self):
        service, _ = build_cariad_service(n_vehicles=2, days=1)
        chain = KillChain(cariad_stages())
        with pytest.raises(ValueError):
            chain.run(service, mitigations={"magic-firewall"})

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            KillChain([])

    def test_sensitive_exposure_counted(self):
        # With enough vehicles the 5% sensitive fraction shows up.
        report = run_breach(n_vehicles=100, days=2)
        assert report.sensitive_vehicles_exposed >= 1
        assert report.sensitive_vehicles_exposed <= report.distinct_vehicles_exposed

    def test_deterministic(self):
        a = run_breach(n_vehicles=10, days=3)
        b = run_breach(n_vehicles=10, days=3)
        assert a == b
