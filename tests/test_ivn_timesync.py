"""Tests for PTP delay attacks and PTPsec-style cyclic asymmetry detection."""

import pytest

from repro.ivn.timesync import (
    CyclicAsymmetryDetector,
    DelayAttack,
    SyncNetwork,
    ptp_offset,
)


def triangle_network(jitter=1e-9):
    """Three switches in a triangle plus the grandmaster on node a."""
    network = SyncNetwork(jitter_s=jitter, seed_label="tri")
    network.add_link("a", "b", 5e-6)
    network.add_link("b", "c", 4e-6)
    network.add_link("c", "a", 6e-6)
    return network


class TestPtp:
    def test_offset_accurate_on_symmetric_path(self):
        network = triangle_network()
        result = ptp_offset(network, ["a", "b"], true_offset_s=3e-6)
        assert abs(result.offset_error_s) < 1e-7

    def test_measured_delay_close_to_truth(self):
        network = triangle_network()
        result = ptp_offset(network, ["a", "b"])
        assert result.measured_delay_s == pytest.approx(5e-6, rel=0.05)

    def test_delay_attack_biases_offset_by_half(self):
        network = triangle_network()
        DelayAttack("a", "b", 10e-6).apply(network)
        result = ptp_offset(network, ["a", "b"], true_offset_s=0.0)
        assert result.offset_error_s == pytest.approx(5e-6, rel=0.05)

    def test_attack_invisible_to_delay_estimate_consumer(self):
        # The measured round-trip delay rises, but standard PTP has no
        # reference to compare against — the attack is silent.
        network = triangle_network()
        clean = ptp_offset(network, ["a", "b"])
        DelayAttack("a", "b", 10e-6).apply(network)
        attacked = ptp_offset(network, ["a", "b"])
        assert attacked.measured_delay_s > clean.measured_delay_s
        # Nothing in the PtpResult flags the attack: that is the point.

    def test_attack_validation(self):
        network = triangle_network()
        with pytest.raises(ValueError):
            DelayAttack("a", "b", -1e-6).apply(network)
        with pytest.raises(KeyError):
            network.add_asymmetry("a", "z", 1e-6)

    def test_network_validation(self):
        network = SyncNetwork()
        with pytest.raises(ValueError):
            network.add_link("a", "b", 0.0)
        with pytest.raises(ValueError):
            network.one_way_delay(["a"])


class TestCyclicDetection:
    def test_clean_cycle_not_flagged(self):
        detector = CyclicAsymmetryDetector(triangle_network())
        verdict = detector.measure_cycle(["a", "b", "c"])
        assert not verdict.attack_detected

    def test_attacked_cycle_flagged(self):
        network = triangle_network()
        DelayAttack("a", "b", 10e-6).apply(network)
        detector = CyclicAsymmetryDetector(network)
        verdict = detector.measure_cycle(["a", "b", "c"])
        assert verdict.attack_detected
        # Residual equals the injected asymmetry (one direction only).
        assert verdict.residual_s == pytest.approx(10e-6, rel=0.1)

    def test_detection_threshold_scales_with_jitter(self):
        noisy = triangle_network(jitter=50e-9)
        DelayAttack("a", "b", 10e-6).apply(noisy)
        detector = CyclicAsymmetryDetector(noisy)
        assert detector.measure_cycle(["a", "b", "c"]).attack_detected

    def test_small_attack_below_noise_floor_missed(self):
        noisy = triangle_network(jitter=100e-9)
        DelayAttack("a", "b", 0.2e-6).apply(noisy)
        detector = CyclicAsymmetryDetector(noisy)
        assert not detector.measure_cycle(["a", "b", "c"]).attack_detected

    def test_localization_narrows_to_attacked_link(self):
        # A four-node network with two triangles sharing the link b-c.
        network = SyncNetwork(jitter_s=1e-9, seed_label="quad")
        for a, b, d in (("a", "b", 5e-6), ("b", "c", 4e-6), ("c", "a", 6e-6),
                        ("b", "d", 3e-6), ("d", "c", 5e-6)):
            network.add_link(a, b, d)
        DelayAttack("b", "c", 10e-6).apply(network)
        detector = CyclicAsymmetryDetector(network)
        suspects = detector.localize([["a", "b", "c"], ["b", "d", "c"]])
        assert suspects == {frozenset(("b", "c"))}

    def test_no_attack_no_suspects(self):
        detector = CyclicAsymmetryDetector(triangle_network())
        assert detector.localize([["a", "b", "c"]]) == set()

    def test_cycle_validation(self):
        detector = CyclicAsymmetryDetector(triangle_network())
        with pytest.raises(ValueError):
            detector.measure_cycle(["a", "b"])
        with pytest.raises(ValueError):
            CyclicAsymmetryDetector(triangle_network(), n_probes=0)
