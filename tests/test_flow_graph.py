"""The flow-graph builder: protection lattice, node/edge assembly."""

import pytest

from repro.core.entities import Component, Interface, SystemModel
from repro.core.layers import Layer
from repro.core.threats import AccessLevel
from repro.flow import FlowEdge, FlowGraph, FlowNode, Protection, build_flow_graph
from repro.lint import AnalysisTarget, GatewayBinding, V2xChannelBinding
from repro.lint.scenarios import build_scenario


def node(name, **kwargs):
    kwargs.setdefault("kind", "component")
    kwargs.setdefault("layer", Layer.NETWORK)
    return FlowNode(name, **kwargs)


class TestProtectionLattice:
    def test_ordering_matches_strength(self):
        assert (Protection.NONE < Protection.FILTERED < Protection.SECOC
                < Protection.CANSEC < Protection.MACSEC < Protection.TLS
                < Protection.VC_VERIFIED)

    def test_filtered_never_blocks(self):
        edge = FlowEdge("a", "b", "gateway", Protection.FILTERED)
        assert not edge.blocking
        assert "filtered only" in edge.missing_boundary

    def test_secoc_and_above_block_without_weakness(self):
        for protection in (Protection.SECOC, Protection.CANSEC,
                           Protection.MACSEC, Protection.TLS,
                           Protection.VC_VERIFIED):
            edge = FlowEdge("a", "b", "interface", protection)
            assert edge.blocking, protection

    def test_weakness_voids_any_protection(self):
        edge = FlowEdge("a", "b", "interface", Protection.TLS,
                        weakness="heap-resident key")
        assert not edge.blocking
        assert "void" in edge.missing_boundary
        assert "heap-resident key" in edge.missing_boundary

    def test_label_is_kebab_case(self):
        assert Protection.VC_VERIFIED.label == "vc-verified"


class TestFlowGraph:
    def test_duplicate_node_rejected(self):
        graph = FlowGraph("t")
        graph.add_node(node("a"))
        with pytest.raises(ValueError, match="duplicate"):
            graph.add_node(node("a"))

    def test_edge_requires_known_endpoints(self):
        graph = FlowGraph("t")
        graph.add_node(node("a"))
        with pytest.raises(KeyError):
            graph.add_edge(FlowEdge("a", "missing", "interface"))

    def test_sources_sinks_and_open_edges(self):
        graph = FlowGraph("t")
        graph.add_node(node("entry", source=True))
        graph.add_node(node("ecu", criticality=5, sink=True))
        graph.add_edge(FlowEdge("entry", "ecu", "interface", Protection.NONE))
        graph.add_edge(FlowEdge("ecu", "entry", "interface", Protection.TLS))
        assert [n.name for n in graph.sources()] == ["entry"]
        assert [n.name for n in graph.sinks()] == ["ecu"]
        assert [e.dst for e in graph.open_edges()] == ["ecu"]

    def test_to_system_model_keeps_only_open_edges(self):
        graph = FlowGraph("t")
        graph.add_node(node("entry", source=True))
        graph.add_node(node("mid"))
        graph.add_node(node("ecu", criticality=5))
        graph.add_edge(FlowEdge("entry", "mid", "interface", Protection.NONE))
        graph.add_edge(FlowEdge("mid", "ecu", "interface", Protection.TLS))
        model = graph.to_system_model()
        assert {c.name for c in model.entry_points()} == {"entry"}
        pairs = {(i.source, i.target) for i in model.interfaces()}
        assert pairs == {("entry", "mid")}


def simple_target(*, authenticated, protocol="can"):
    model = SystemModel("t")
    model.add_component(Component("entry", Layer.NETWORK, criticality=2,
                                  exposed=True))
    model.add_component(Component("ecu", Layer.NETWORK, criticality=5))
    model.connect(Interface("entry", "ecu", protocol, AccessLevel.REMOTE,
                            authenticated=authenticated))
    return AnalysisTarget(name="t", model=model)


class TestBuildFromModel:
    def test_exposed_component_is_source_critical_is_sink(self):
        graph = build_flow_graph(simple_target(authenticated=False))
        assert graph.node("entry").source
        assert graph.node("ecu").sink

    @pytest.mark.parametrize("protocol,expected", [
        ("can", Protection.SECOC),
        ("lin", Protection.SECOC),
        ("10base-t1s", Protection.CANSEC),
        ("ethernet", Protection.MACSEC),
        ("https", Protection.TLS),
    ])
    def test_authenticated_protocol_maps_to_mechanism(self, protocol, expected):
        graph = build_flow_graph(
            simple_target(authenticated=True, protocol=protocol))
        (edge,) = graph.edges()
        assert edge.protection == expected
        assert edge.blocking

    def test_unauthenticated_interface_has_no_protection(self):
        graph = build_flow_graph(simple_target(authenticated=False))
        (edge,) = graph.edges()
        assert edge.protection == Protection.NONE

    def test_weak_secoc_profile_voids_every_can_edge(self):
        from repro.ivn.secoc import SecOcProfile

        target = simple_target(authenticated=True, protocol="can")
        target.secoc_profiles["pdus"] = SecOcProfile(
            "trunc", freshness_bits=8, mac_bits=24)
        graph = build_flow_graph(target)
        (edge,) = graph.edges()
        assert edge.protection == Protection.SECOC
        assert not edge.blocking
        assert "24 bits" in edge.weakness

    def test_late_rekey_voids_macsec_edges(self):
        from repro.ivn.keymgmt import KeyLifecycleManager
        from repro.ivn.macsec import MacsecPort, MkaSession

        target = simple_target(authenticated=True, protocol="ethernet")
        session = MkaSession(b"\x28" * 16,
                            [MacsecPort("a"), MacsecPort("b")])
        target.lifecycle_managers.append(
            KeyLifecycleManager(session, rekey_fraction=0.99))
        graph = build_flow_graph(target)
        (edge,) = graph.edges()
        assert edge.protection == Protection.MACSEC
        assert not edge.blocking


class TestBuildGatewayEdges:
    def test_forwarding_rules_become_filtered_edges(self):
        from repro.ivn.gateway import GatewayFilter

        target = simple_target(authenticated=True)
        gateway = GatewayFilter("gw")
        gateway.allow("out", "in", 0x100, 0x1FF)
        binding = GatewayBinding(gateway)
        binding.attach("out", "entry")
        binding.attach("in", "ecu")
        target.add_gateway(binding)
        graph = build_flow_graph(target)
        gw_edges = [e for e in graph.edges() if e.kind == "gateway"]
        assert [(e.src, e.dst) for e in gw_edges] == [("entry", "ecu")]
        assert gw_edges[0].protection == Protection.FILTERED
        assert "256 id(s)" in gw_edges[0].note


class TestBuildCloud:
    def test_cariad_subgraph_shape(self):
        graph = build_flow_graph(build_scenario("cariad-breach"))
        heapdump = graph.node("cloud:telemetry-backend:/actuator/heapdump")
        assert heapdump.source
        bucket = graph.node("cloud:telemetry-backend:bucket:telemetry-records")
        assert bucket.sink
        iam = [e for e in graph.edges() if e.kind == "iam"]
        assert len(iam) == 1
        assert "aws-master" in iam[0].weakness

    def test_authenticated_endpoint_is_not_a_source(self):
        graph = build_flow_graph(build_scenario("cariad-breach"))
        api = graph.node("cloud:telemetry-backend:/api")
        assert not api.source


class TestBuildSsiAndV2x:
    def test_valid_credential_edges_block(self):
        target = build_scenario("onboard-hardened")
        graph = build_flow_graph(target)
        cred = [e for e in graph.edges() if e.kind == "credential"]
        prov = [e for e in graph.edges() if e.kind == "provisioning"]
        assert cred and all(e.blocking for e in cred)
        assert {e.dst for e in prov} == {"zc-left", "zc-right"}
        assert all(e.blocking for e in prov)

    def test_unsigned_v2x_channel_is_source(self):
        graph = build_flow_graph(build_scenario("onboard-insecure"))
        channel = graph.node("v2x:v2v-sidelink")
        assert channel.source
        (edge,) = [e for e in graph.edges() if e.kind == "v2x"]
        assert edge.dst == "adas-cam" and not edge.blocking

    def test_signed_v2x_channel_is_trusted(self):
        graph = build_flow_graph(build_scenario("onboard-hardened"))
        channel = graph.node("v2x:v2v-sidelink")
        assert not channel.source
        (edge,) = [e for e in graph.edges() if e.kind == "v2x"]
        assert edge.blocking

    def test_v2x_binding_to_unknown_component_is_dangling_but_safe(self):
        target = AnalysisTarget(name="t")
        target.add_v2x_channel(V2xChannelBinding("side", "nowhere"))
        graph = build_flow_graph(target)
        assert "v2x:side" in graph
        assert graph.edges() == []


def test_build_is_deterministic():
    def snapshot():
        graph = build_flow_graph(build_scenario("onboard-insecure"))
        return ([n.name for n in graph.nodes()],
                [(e.src, e.dst, e.kind, e.protection) for e in graph.edges()])

    assert snapshot() == snapshot()
