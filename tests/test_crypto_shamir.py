"""Tests for Shamir secret sharing over GF(256)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.shamir import reconstruct_secret, split_secret


class TestSplitReconstruct:
    def test_threshold_shares_reconstruct(self):
        secret = b"sixteen byte key"
        shares = split_secret(secret, threshold=3, n_shares=5)
        assert reconstruct_secret(shares[:3]) == secret
        assert reconstruct_secret(shares[1:4]) == secret
        assert reconstruct_secret(shares[2:5]) == secret

    def test_any_subset_of_threshold_works(self):
        secret = b"\x00\xff\x42"
        shares = split_secret(secret, threshold=2, n_shares=4)
        for i in range(4):
            for j in range(i + 1, 4):
                assert reconstruct_secret([shares[i], shares[j]]) == secret

    def test_more_than_threshold_also_works(self):
        secret = b"over-provisioned"
        shares = split_secret(secret, threshold=2, n_shares=5)
        assert reconstruct_secret(shares) == secret

    def test_below_threshold_reveals_nothing(self):
        secret = b"top secret value"
        shares = split_secret(secret, threshold=3, n_shares=5)
        # Interpolating from 2 shares yields something, but not the secret.
        assert reconstruct_secret(shares[:2]) != secret

    def test_single_share_threshold_one(self):
        secret = b"public-ish"
        shares = split_secret(secret, threshold=1, n_shares=3)
        assert reconstruct_secret([shares[0]]) == secret

    def test_deterministic_per_seed(self):
        a = split_secret(b"k", threshold=2, n_shares=3, seed_label="x")
        b = split_secret(b"k", threshold=2, n_shares=3, seed_label="x")
        c = split_secret(b"k", threshold=2, n_shares=3, seed_label="y")
        assert a == b
        assert a != c

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=32),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=3))
    def test_roundtrip_property(self, secret, threshold, extra):
        n_shares = threshold + extra
        shares = split_secret(secret, threshold=threshold, n_shares=n_shares,
                              seed_label="prop")
        assert reconstruct_secret(shares[:threshold]) == secret


class TestValidation:
    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            split_secret(b"", threshold=1, n_shares=1)

    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            split_secret(b"x", threshold=0, n_shares=1)
        with pytest.raises(ValueError):
            split_secret(b"x", threshold=3, n_shares=2)
        with pytest.raises(ValueError):
            split_secret(b"x", threshold=1, n_shares=256)

    def test_reconstruct_validation(self):
        with pytest.raises(ValueError):
            reconstruct_secret([])
        with pytest.raises(ValueError):
            reconstruct_secret([(1, b"ab"), (1, b"cd")])       # dup x
        with pytest.raises(ValueError):
            reconstruct_secret([(0, b"ab")])                    # x = 0
        with pytest.raises(ValueError):
            reconstruct_secret([(1, b"ab"), (2, b"c")])         # lengths
