"""Tests for HRP STS ranging, ghost-peak attacks, and receiver integrity checks.

These tests pin the paper's §II-A claims: naive cross-correlation is
vulnerable to distance reduction; receiver integrity checks restore
security ([4], [8]).
"""

import numpy as np
import pytest

from repro.phy.attacks import EnlargementAttack, GhostPeakAttack
from repro.phy.channel import Channel
from repro.phy.defenses import UwbEdDetector
from repro.phy.hrp import HrpRangingSession, HrpReceiver, generate_sts
from repro.phy.pulses import HRP_CONFIG, build_pulse_train

KEY = b"\x42" * 16


class TestSts:
    def test_sts_is_pm_one(self):
        sts = generate_sts(KEY, 0, 256)
        assert sts.shape == (256,)
        assert set(np.unique(sts)) <= {-1.0, 1.0}

    def test_sts_deterministic_per_counter(self):
        assert np.array_equal(generate_sts(KEY, 5, 128), generate_sts(KEY, 5, 128))

    def test_sts_differs_across_counters_and_keys(self):
        a = generate_sts(KEY, 0, 256)
        b = generate_sts(KEY, 1, 256)
        c = generate_sts(b"\x43" * 16, 0, 256)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_sts_balanced(self):
        # Pseudorandom: roughly half +1 (binomial, 256 trials).
        sts = generate_sts(KEY, 7, 256)
        assert 96 <= np.sum(sts == 1.0) <= 160

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            generate_sts(KEY, 0, 0)

    def test_session_never_reuses_sts(self):
        session = HrpRangingSession(KEY)
        first = session.next_sts()
        second = session.next_sts()
        assert not np.array_equal(first, second)


class TestHonestRanging:
    @pytest.mark.parametrize("distance", [2.0, 10.0, 50.0])
    def test_accurate_and_accepted(self, distance):
        session = HrpRangingSession(KEY)
        channel = Channel(distance, snr_db=15.0, seed_label=f"h{distance}")
        outcome = session.measure(channel)
        assert outcome.accepted
        assert outcome.integrity_ok
        assert abs(outcome.error_m) < 0.5
        assert not outcome.reduced

    def test_normalized_correlation_high_for_genuine_path(self):
        session = HrpRangingSession(KEY)
        outcome = session.measure(Channel(10.0, snr_db=20.0, seed_label="rho"))
        assert outcome.normalized_correlation > 0.5

    def test_receiver_parameter_validation(self):
        with pytest.raises(ValueError):
            HrpReceiver(min_normalized_corr=0.0)
        with pytest.raises(ValueError):
            HrpRangingSession(KEY, sts_length=8)


class TestGhostPeakAttack:
    N_TRIALS = 8

    def _run(self, receiver, label):
        session = HrpRangingSession(KEY, receiver=receiver)
        reduced_and_accepted = 0
        for i in range(self.N_TRIALS):
            channel = Channel(10.0, snr_db=15.0, seed_label=f"{label}{i}")
            attack = GhostPeakAttack(advance_m=6.0, power=6.0, seed_label=f"{label}a{i}")
            outcome = session.measure(
                channel, attacker_signal=attack.waveform(channel, HRP_CONFIG)
            )
            if outcome.reduced and outcome.accepted:
                reduced_and_accepted += 1
        return reduced_and_accepted

    def test_naive_receiver_is_vulnerable(self):
        naive = HrpReceiver(integrity_check=False, threshold_ratio=0.3)
        assert self._run(naive, "naive") >= self.N_TRIALS // 2

    def test_integrity_check_blocks_reduction(self):
        secure = HrpReceiver(integrity_check=True, threshold_ratio=0.3)
        assert self._run(secure, "naive") == 0  # same channels as naive run

    def test_ghost_peak_rho_is_low(self):
        # The injected energy is template-independent, so the claimed
        # first path has near-zero normalized correlation.
        secure = HrpReceiver(integrity_check=True, threshold_ratio=0.3)
        session = HrpRangingSession(KEY, receiver=secure)
        channel = Channel(10.0, snr_db=15.0, seed_label="rho-atk")
        attack = GhostPeakAttack(advance_m=6.0, power=6.0, seed_label="rho-a")
        outcome = session.measure(
            channel, attacker_signal=attack.waveform(channel, HRP_CONFIG)
        )
        if outcome.reduced:
            assert outcome.normalized_correlation < 0.3

    def test_attack_parameter_validation(self):
        with pytest.raises(ValueError):
            GhostPeakAttack(advance_m=0.0)
        with pytest.raises(ValueError):
            GhostPeakAttack(advance_m=1.0, power=0.0)

    def test_weak_attacker_fails_even_naive(self):
        naive = HrpReceiver(integrity_check=False, threshold_ratio=0.5)
        session = HrpRangingSession(KEY, receiver=naive)
        hits = 0
        for i in range(self.N_TRIALS):
            channel = Channel(10.0, snr_db=15.0, seed_label=f"weak{i}")
            attack = GhostPeakAttack(advance_m=6.0, power=0.5, seed_label=f"weak-a{i}")
            outcome = session.measure(
                channel, attacker_signal=attack.waveform(channel, HRP_CONFIG)
            )
            if outcome.reduced:
                hits += 1
        assert hits == 0


class TestEnlargement:
    def _attacked_rx(self, label, residual):
        session = HrpRangingSession(KEY)
        sts = session.next_sts()
        tx = build_pulse_train(sts, HRP_CONFIG)
        channel = Channel(10.0, snr_db=15.0, seed_label=label)
        attack = EnlargementAttack(extra_delay_m=30.0, residual_gain=residual)
        mod_channel = attack.apply(channel)
        rx = mod_channel.propagate(
            tx, HRP_CONFIG, extra_signal=attack.waveform(channel, HRP_CONFIG, tx)
        )
        estimate, _, _ = session.receiver.estimate(rx, sts)
        return rx, sts, estimate, mod_channel

    def test_attack_enlarges_measured_distance(self):
        _, _, estimate, _ = self._attacked_rx("enl", 0.3)
        measured = estimate.toa_sample * HRP_CONFIG.metres_per_sample
        assert measured > 30.0  # true 10 m + 30 m shift (within tolerance)

    def test_uwb_ed_detects_imperfect_annihilation(self):
        detector = UwbEdDetector()
        detections = 0
        for i in range(6):
            rx, sts, estimate, channel = self._attacked_rx(f"ed{i}", 0.4)
            verdict = detector.inspect(
                rx, sts, estimate.toa_sample, HRP_CONFIG, channel.noise_sigma()
            )
            detections += verdict.attack_detected
        assert detections >= 5

    def test_no_false_positive_on_honest_far_target(self):
        detector = UwbEdDetector()
        session = HrpRangingSession(KEY)
        false_positives = 0
        for i in range(6):
            sts = session.next_sts()
            tx = build_pulse_train(sts, HRP_CONFIG)
            channel = Channel(45.0, snr_db=15.0, seed_label=f"hf{i}")
            rx = channel.propagate(tx, HRP_CONFIG)
            estimate, _, _ = session.receiver.estimate(rx, sts)
            verdict = detector.inspect(
                rx, sts, estimate.toa_sample, HRP_CONFIG, channel.noise_sigma()
            )
            false_positives += verdict.attack_detected
        assert false_positives <= 1

    def test_detector_abstains_when_target_is_near(self):
        detector = UwbEdDetector()
        verdict = detector.inspect(
            np.zeros(50), generate_sts(KEY, 0, 64), 10, HRP_CONFIG, 0.1
        )
        assert not verdict.attack_detected
        assert verdict.early_energy_ratio == 0.0

    def test_attack_validation(self):
        with pytest.raises(ValueError):
            EnlargementAttack(extra_delay_m=-1.0)
        with pytest.raises(ValueError):
            EnlargementAttack(extra_delay_m=1.0, residual_gain=1.0)
        with pytest.raises(ValueError):
            UwbEdDetector(energy_ratio_threshold=0.9)
