"""Per-rule fixtures: every AUD checker fires on a violation and stays
quiet on the idiomatic fix.

``FIXTURES`` maps each rule id to one *positive* tree (must produce at
least one finding for that rule) and one *negative* tree (must produce
none); the meta-test at the bottom pins that every registered checker
has both, so a future PR cannot add an invariant without demonstrating
it actually fires.
"""

import textwrap

import pytest

from repro.audit import REGISTRY, AuditContext, AuditEngine, all_checkers


def _run_rule(tmp_path, rule_id, files):
    root = tmp_path / "repro"
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    context = AuditContext.parse(root)
    all_checkers()  # ensure the catalog has registered
    engine = AuditEngine([REGISTRY[rule_id]()])
    return engine.run(context)


#: rule id -> {"positive": tree, "negative": tree}
FIXTURES = {
    "AUD001": {
        "positive": {
            "faults/jitter.py": """\
                import random

                def jitter() -> float:
                    return random.random()
            """,
        },
        "negative": {
            "faults/jitter.py": """\
                import time

                def elapsed(start: float) -> float:
                    return time.monotonic() - start
            """,
        },
    },
    "AUD002": {
        "positive": {
            "ivn/noise.py": """\
                import numpy as np

                def noise():
                    return np.random.default_rng(7)
            """,
        },
        "negative": {
            # the sanctioned module may construct whatever it wants
            "core/rng.py": """\
                import numpy as np

                def numpy_rng(seed: int):
                    return np.random.default_rng(seed)
            """,
            "ivn/noise.py": """\
                from repro.core.rng import numpy_rng

                def noise(seed: int):
                    return numpy_rng(seed)
            """,
        },
    },
    "AUD003": {
        "positive": {
            "ivn/bus.py": """\
                from repro.obs.runtime import OBS

                def deliver(frame) -> None:
                    OBS.count("ivn.frames")
            """,
        },
        "negative": {
            "ivn/bus.py": """\
                from repro.obs.runtime import OBS

                def deliver(frame) -> None:
                    if OBS.enabled:
                        OBS.count("ivn.frames")

                def drain(frames) -> None:
                    if not OBS.enabled:
                        return
                    OBS.count("ivn.batch", len(frames))

                def _record(n: int) -> None:
                    OBS.count("ivn.helper", n)

                def tick(frames) -> None:
                    if OBS.enabled:
                        _record(len(frames))
            """,
        },
    },
    "AUD004": {
        "positive": {
            "lint/report.py": """\
                def to_table(findings):
                    kinds = {f.kind for f in findings}
                    return [str(kind) for kind in kinds]
            """,
        },
        "negative": {
            "lint/report.py": """\
                def to_table(findings):
                    kinds = {f.kind for f in findings}
                    return [str(kind) for kind in sorted(kinds)]
            """,
        },
    },
    "AUD005": {
        "positive": {
            "sentinel/probe.py": """\
                def probe(resolver, did):
                    try:
                        return resolver.resolve(did)
                    except Exception:
                        return None
            """,
        },
        "negative": {
            "sentinel/probe.py": """\
                from repro.ssi.registry import RegistryUnavailable

                def probe(resolver, did):
                    try:
                        return resolver.resolve(did)
                    except RegistryUnavailable:
                        return None
            """,
        },
    },
    "AUD006": {
        "positive": {
            "core/acc.py": """\
                def collect(item, acc=[]):
                    acc.append(item)
                    return acc
            """,
        },
        "negative": {
            "core/acc.py": """\
                def collect(item, acc=None):
                    if acc is None:
                        acc = []
                    acc.append(item)
                    return acc
            """,
        },
    },
    "AUD007": {
        "positive": {
            "flow/report.py": """\
                def render(result) -> str:
                    return str(result)
            """,
        },
        "negative": {
            "flow/report.py": """\
                FLOW_SCHEMA_VERSION = "1.0"
                FLOW_TOOL_NAME = "repro-flow"

                def validate_flow_dict(document: dict) -> None:
                    if not isinstance(document, dict):
                        raise ValueError("not an object")
            """,
        },
    },
    "AUD008": {
        "positive": {
            "ivn/bus.py": """\
                from repro.sentinel.engine import SentinelEngine

                def watch(bus) -> SentinelEngine:
                    return SentinelEngine()
            """,
        },
        "negative": {
            "ivn/bus.py": """\
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.sentinel.engine import SentinelEngine

                def watch(bus) -> "SentinelEngine":
                    from repro.sentinel.engine import SentinelEngine

                    return SentinelEngine()
            """,
        },
    },
}


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_positive_fixture_fires(rule_id, tmp_path):
    report = _run_rule(tmp_path, rule_id, FIXTURES[rule_id]["positive"])
    assert report.findings, f"{rule_id} did not fire on its positive fixture"
    assert all(f.rule_id == rule_id for f in report.findings)


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_negative_fixture_stays_quiet(rule_id, tmp_path):
    report = _run_rule(tmp_path, rule_id, FIXTURES[rule_id]["negative"])
    messages = [f"{f.subject}: {f.message}" for f in report.findings]
    assert not messages, "\n".join(messages)


def test_every_registered_rule_has_fixtures():
    """A checker cannot ship without demonstrating it fires."""
    registered = {checker.rule_id for checker in all_checkers()}
    assert registered == set(FIXTURES)
    for rule_id, trees in FIXTURES.items():
        assert set(trees) == {"positive", "negative"}, rule_id


def test_catalog_has_at_least_eight_rules():
    assert len(all_checkers()) >= 8


def test_findings_carry_location_and_remediation(tmp_path):
    report = _run_rule(tmp_path, "AUD006", FIXTURES["AUD006"]["positive"])
    finding = report.findings[0]
    assert finding.relpath == "repro/core/acc.py"
    assert finding.line >= 1
    assert finding.remediation
    assert finding.subject == f"{finding.relpath}:{finding.line}"
