"""Tests for CANAL encapsulation and the S1/S2/S3 scenario comparisons."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ivn.canal import CanalCodec, CanalSegment
from repro.ivn.frames import CanXlFrame
from repro.ivn.scenarios import (
    run_all_scenarios,
    run_s1,
    run_s2_end_to_end,
    run_s2_point_to_point,
    run_s3_canal,
)


class TestCanalSegments:
    def test_encode_decode_roundtrip(self):
        segment = CanalSegment(3, 1, 5, b"chunk-bytes")
        assert CanalSegment.decode(segment.encode()) == segment

    def test_decode_validation(self):
        with pytest.raises(ValueError):
            CanalSegment.decode(b"\x00\x01")
        with pytest.raises(ValueError):
            CanalSegment.decode(bytes([0, 0, 0, 10]) + b"short")

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CanalSegment(256, 0, 1, b"").encode()
        with pytest.raises(ValueError):
            CanalSegment(0, 0, 0, b"").encode()


class TestCanalCodec:
    @pytest.mark.parametrize("mode", ["can", "can-fd", "can-xl"])
    def test_roundtrip_all_modes(self, mode):
        tx = CanalCodec(mode=mode)
        rx = CanalCodec(mode=mode)
        blob = bytes(range(256)) * 3
        result = None
        for frame in tx.encapsulate(blob):
            result = rx.reassemble(frame) or result
        assert result == blob

    def test_xl_single_frame_when_fits(self):
        codec = CanalCodec(mode="can-xl")
        frames = codec.encapsulate(b"\x00" * 1000)
        assert len(frames) == 1
        assert isinstance(frames[0], CanXlFrame)
        assert frames[0].sdu_type == 0x03  # tunneled Ethernet marker

    def test_classic_can_segment_count(self):
        codec = CanalCodec(mode="can")
        frames = codec.encapsulate(b"\x00" * 100)
        assert len(frames) == 34  # 3 usable bytes per 8-byte frame

    def test_out_of_order_reassembly(self):
        tx = CanalCodec(mode="can")
        rx = CanalCodec(mode="can")
        blob = b"abcdefghij" * 4
        frames = tx.encapsulate(blob)
        result = None
        for frame in reversed(frames):
            result = rx.reassemble(frame) or result
        assert result == blob

    def test_interleaved_streams(self):
        tx = CanalCodec(mode="can")
        rx = CanalCodec(mode="can")
        frames_a = tx.encapsulate(b"A" * 20)
        frames_b = tx.encapsulate(b"B" * 20)
        results = []
        for fa, fb in zip(frames_a, frames_b):
            for frame in (fa, fb):
                out = rx.reassemble(frame)
                if out is not None:
                    results.append(out)
        assert results == [b"A" * 20, b"B" * 20]

    def test_loss_means_no_delivery(self):
        tx = CanalCodec(mode="can")
        rx = CanalCodec(mode="can")
        frames = tx.encapsulate(b"x" * 40)
        result = None
        for frame in frames[:-1]:  # drop the last segment
            result = rx.reassemble(frame) or result
        assert result is None

    def test_empty_blob_rejected(self):
        with pytest.raises(ValueError):
            CanalCodec().encapsulate(b"")

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            CanalCodec(mode="flexray")

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=600))
    def test_roundtrip_property(self, blob):
        tx = CanalCodec(mode="can-fd")
        rx = CanalCodec(mode="can-fd")
        result = None
        for frame in tx.encapsulate(blob):
            result = rx.reassemble(frame) or result
        assert result == blob


PAYLOAD = b"\x42" * 16


class TestScenarios:
    def test_all_scenarios_deliver(self):
        for report in run_all_scenarios(PAYLOAD):
            assert report.delivered, report.name

    def test_s1_weaknesses_match_paper(self):
        report = run_s1(PAYLOAD)
        # Paper: authentication-only; key storage in the zone controller.
        assert not report.confidentiality_on_edge
        assert report.zc_sees_plaintext
        assert report.keys_at_zc > 0

    def test_s2a_no_keys_in_zone_controller(self):
        report = run_s2_end_to_end(PAYLOAD)
        assert report.keys_at_zc == 0
        assert not report.zc_sees_plaintext
        # Paper: "communication mechanisms restrict the modification of
        # header information".
        assert not report.zc_can_modify_headers

    def test_s2b_exposes_zone_controller(self):
        report = run_s2_point_to_point(PAYLOAD)
        assert report.keys_at_zc > 0
        assert report.zc_sees_plaintext
        assert report.zc_can_modify_headers

    def test_s3_gets_end_to_end_on_can(self):
        report = run_s3_canal(PAYLOAD)
        assert report.keys_at_zc == 0
        assert not report.zc_sees_plaintext
        assert report.confidentiality_on_edge

    def test_s2b_slower_than_s2a(self):
        # Security termination at the ZC costs processing time.
        assert run_s2_point_to_point(PAYLOAD).latency_s > run_s2_end_to_end(PAYLOAD).latency_s

    def test_s1_slowest_edge(self):
        # Classic CAN at 500 kb/s dominates; S1 must be the slowest.
        reports = run_all_scenarios(PAYLOAD)
        s1 = next(r for r in reports if r.name.startswith("S1"))
        assert all(s1.latency_s >= r.latency_s for r in reports)

    def test_goodput_ratio_bounded(self):
        for report in run_all_scenarios(PAYLOAD):
            assert 0.0 < report.goodput_ratio < 1.0

    def test_canal_classic_can_mode_works_but_costs_more(self):
        xl = run_s3_canal(PAYLOAD, canal_mode="can-xl")
        classic = run_s3_canal(PAYLOAD, canal_mode="can")
        assert classic.delivered
        assert classic.wire_bits_edge > xl.wire_bits_edge
        assert classic.latency_s > xl.latency_s

    def test_s1_can_fd_edge_is_faster(self):
        from repro.ivn.scenarios import run_s1

        classic = run_s1(PAYLOAD, edge="can")
        fd = run_s1(PAYLOAD, edge="can-fd")
        assert fd.delivered
        assert fd.latency_s < classic.latency_s
        assert "FD" in fd.name

    def test_s1_edge_validation(self):
        from repro.ivn.scenarios import run_s1

        with pytest.raises(ValueError):
            run_s1(PAYLOAD, edge="flexray")
