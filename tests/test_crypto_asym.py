"""Ed25519 (RFC 8032) and X25519 (RFC 7748) tests against RFC vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ed25519 import generate_public_key, sign, verify
from repro.crypto.x25519 import x25519, x25519_base


class TestEd25519Rfc8032:
    def test_vector_1_empty_message(self):
        sk = bytes.fromhex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60")
        pk = bytes.fromhex("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
        sig = bytes.fromhex(
            "e5564300c360ac729086e2cc806e828a"
            "84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46b"
            "d25bf5f0595bbe24655141438e7a100b"
        )
        assert generate_public_key(sk) == pk
        assert sign(sk, b"") == sig
        assert verify(pk, b"", sig)

    def test_vector_2_one_byte(self):
        sk = bytes.fromhex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb")
        pk = bytes.fromhex("3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
        sig = bytes.fromhex(
            "92a009a9f0d4cab8720e820b5f642540"
            "a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c"
            "387b2eaeb4302aeeb00d291612bb0c00"
        )
        msg = b"\x72"
        assert generate_public_key(sk) == pk
        assert sign(sk, msg) == sig
        assert verify(pk, msg, sig)

    def test_vector_3_two_bytes(self):
        sk = bytes.fromhex("c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7")
        pk = bytes.fromhex("fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025")
        msg = bytes.fromhex("af82")
        sig = bytes.fromhex(
            "6291d657deec24024827e69c3abe01a3"
            "0ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc659"
            "4a7c15e9716ed28dc027beceea1ec40a"
        )
        assert generate_public_key(sk) == pk
        assert sign(sk, msg) == sig
        assert verify(pk, msg, sig)


class TestEd25519Behaviour:
    SK = b"\x13" * 32

    def test_rejects_wrong_message(self):
        pk = generate_public_key(self.SK)
        sig = sign(self.SK, b"approved configuration")
        assert not verify(pk, b"tampered configuration", sig)

    def test_rejects_wrong_key(self):
        sig = sign(self.SK, b"msg")
        other_pk = generate_public_key(b"\x14" * 32)
        assert not verify(other_pk, b"msg", sig)

    def test_rejects_malformed_inputs(self):
        pk = generate_public_key(self.SK)
        assert not verify(pk, b"msg", b"\x00" * 63)
        assert not verify(b"\x00" * 31, b"msg", b"\x00" * 64)
        # s >= group order must be rejected (malleability check).
        sig = bytearray(sign(self.SK, b"msg"))
        sig[32:] = b"\xff" * 32
        assert not verify(pk, b"msg", bytes(sig))

    def test_bad_seed_length(self):
        with pytest.raises(ValueError):
            sign(b"\x00" * 31, b"m")
        with pytest.raises(ValueError):
            generate_public_key(b"\x00" * 33)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=32, max_size=32), st.binary(max_size=64))
    def test_sign_verify_property(self, seed, message):
        pk = generate_public_key(seed)
        assert verify(pk, message, sign(seed, message))


class TestX25519Rfc7748:
    def test_vector_1(self):
        scalar = bytes.fromhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
        u = bytes.fromhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")
        expected = bytes.fromhex("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552")
        assert x25519(scalar, u) == expected

    def test_vector_2(self):
        scalar = bytes.fromhex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d")
        u = bytes.fromhex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493")
        expected = bytes.fromhex("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957")
        assert x25519(scalar, u) == expected

    def test_diffie_hellman_rfc7748_section_6_1(self):
        alice_sk = bytes.fromhex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a")
        alice_pk = bytes.fromhex("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
        bob_sk = bytes.fromhex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb")
        bob_pk = bytes.fromhex("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
        shared = bytes.fromhex("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742")
        assert x25519_base(alice_sk) == alice_pk
        assert x25519_base(bob_sk) == bob_pk
        assert x25519(alice_sk, bob_pk) == shared
        assert x25519(bob_sk, alice_pk) == shared

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32))
    def test_dh_agreement_property(self, a, b):
        pa, pb = x25519_base(a), x25519_base(b)
        assert x25519(a, pb) == x25519(b, pa)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            x25519(b"\x00" * 31, b"\x00" * 32)
        with pytest.raises(ValueError):
            x25519(b"\x00" * 32, b"\x00" * 33)
