"""The ``python -m repro redteam`` subcommand."""

import json

from repro.__main__ import main
from repro.lint.sarif import validate_sarif_dict
from repro.redteam import validate_redteam_dict


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRedteamCli:
    def test_requires_scenario(self, capsys):
        code, _, err = run_cli(capsys, "redteam")
        assert code == 2
        assert "available" in err

    def test_unknown_scenario_exits_two(self, capsys):
        code, _, err = run_cli(capsys, "redteam", "nope")
        assert code == 2
        assert "unknown scenario" in err

    def test_summary_table_gates_on_findings(self, capsys):
        code, out, _ = run_cli(capsys, "redteam", "pkes-legacy")
        assert code == 1  # RT001 critical >= default 'low' gate
        assert "red-team plan for 'pkes-legacy'" in out
        assert "cheapest: keyfob => immobilizer" in out

    def test_hardened_is_defeated_and_exits_zero(self, capsys):
        code, out, _ = run_cli(capsys, "redteam", "onboard-hardened")
        assert code == 0
        assert "DEFEATED" in out

    def test_campaigns_flag_prints_hops(self, capsys):
        code, out, _ = run_cli(capsys, "redteam", "pkes-legacy",
                               "--campaigns", "--gate", "none")
        assert code == 0
        assert "#1 keyfob => immobilizer" in out
        assert "defeated by:" in out

    def test_top_limits_output(self, capsys):
        _, full, _ = run_cli(capsys, "redteam", "onboard-insecure",
                             "--campaigns", "--gate", "none")
        _, top, _ = run_cli(capsys, "redteam", "onboard-insecure",
                            "--campaigns", "--top", "1", "--gate", "none")
        assert full.count("=> ") > top.count("=> ")

    def test_json_document_validates(self, capsys):
        code, out, _ = run_cli(capsys, "redteam", "all", "--json",
                               "--gate", "none", "--base-seed", "3")
        assert code == 0
        document = json.loads(out)
        validate_redteam_dict(document)
        assert document["baseSeed"] == 3
        assert document["summary"]["defeatedScenarios"] == ["onboard-hardened"]

    def test_json_still_gates(self, capsys):
        code, out, _ = run_cli(capsys, "redteam", "pkes-legacy", "--json",
                               "--gate", "critical")
        assert code == 1
        validate_redteam_dict(json.loads(out))

    def test_sarif_log_validates(self, capsys):
        code, out, _ = run_cli(capsys, "redteam", "cariad-breach", "--sarif",
                               "--gate", "none")
        assert code == 0
        document = json.loads(out)
        validate_sarif_dict(document)
        rule_ids = {r["id"] for r in
                    document["runs"][0]["tool"]["driver"]["rules"]}
        assert rule_ids == {"RT001", "RT002", "RT003", "RT004"}

    def test_differential_gate_passes_on_shipped_scenarios(self, capsys):
        code, out, _ = run_cli(capsys, "redteam", "all", "--differential")
        assert code == 0
        assert out.count("analyzers agree") == 5

    def test_json_output_is_byte_identical(self, capsys):
        _, first, _ = run_cli(capsys, "redteam", "all", "--json",
                              "--gate", "none")
        _, second, _ = run_cli(capsys, "redteam", "all", "--json",
                               "--gate", "none")
        assert first == second
