"""The sweep runner's content-addressed result cache."""

from repro.runner import (CACHE_VERSION, ResultCache, experiment_key,
                          tree_digest)


class TestTreeDigest:
    def test_stable_for_identical_trees(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n")
        assert tree_digest([tmp_path]) == tree_digest([tmp_path])

    def test_changes_when_content_changes(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = tree_digest([tmp_path])
        (tmp_path / "a.py").write_text("x = 2\n")
        assert tree_digest([tmp_path]) != before

    def test_changes_when_file_added_or_renamed(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = tree_digest([tmp_path])
        (tmp_path / "b.py").write_text("y = 1\n")
        added = tree_digest([tmp_path])
        assert added != before
        (tmp_path / "b.py").rename(tmp_path / "c.py")
        assert tree_digest([tmp_path]) != added

    def test_ignores_non_python_files(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = tree_digest([tmp_path])
        (tmp_path / "notes.txt").write_text("irrelevant\n")
        assert tree_digest([tmp_path]) == before

    def test_missing_path_is_a_marker_not_an_error(self, tmp_path):
        present = tree_digest([tmp_path / "gone.py"])
        assert isinstance(present, str) and present

    def test_single_files_accepted(self, tmp_path):
        file = tmp_path / "conftest.py"
        file.write_text("pass\n")
        assert tree_digest([file]) != tree_digest([])


class TestExperimentKey:
    def test_depends_on_every_ingredient(self, tmp_path):
        bench = tmp_path / "bench_x.py"
        bench.write_text("pass\n")
        base = experiment_key("FIG1", bench, tree="t", base_seed=0,
                              command_template=("py", "{bench}"))
        assert experiment_key("FIG2", bench, tree="t", base_seed=0,
                              command_template=("py", "{bench}")) != base
        assert experiment_key("FIG1", bench, tree="u", base_seed=0,
                              command_template=("py", "{bench}")) != base
        assert experiment_key("FIG1", bench, tree="t", base_seed=7,
                              command_template=("py", "{bench}")) != base
        assert experiment_key("FIG1", bench, tree="t", base_seed=0,
                              command_template=("py", "-x", "{bench}")) != base
        bench.write_text("changed\n")
        assert experiment_key("FIG1", bench, tree="t", base_seed=0,
                              command_template=("py", "{bench}")) != base

    def test_missing_bench_file_still_keys(self, tmp_path):
        key = experiment_key("FIG1", tmp_path / "gone.py", tree="t")
        assert len(key) == 64

    def test_cache_version_is_part_of_the_key(self):
        assert CACHE_VERSION >= 1


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("k" * 64) is None
        document = {"id": "FIG1", "status": "passed", "durationS": 1.5}
        cache.put("k" * 64, document)
        assert cache.get("k" * 64) == document
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, {"id": "X"})
        cache.path_for("a" * 64).write_text("{not json")
        assert cache.get("a" * 64) is None

    def test_non_object_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for("b" * 64).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for("b" * 64).write_text("[1, 2]")
        assert cache.get("b" * 64) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, {"id": "X"})
        cache.put("b" * 64, {"id": "Y"})
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_empty_directory_len_zero(self, tmp_path):
        assert len(ResultCache(tmp_path / "never-created")) == 0
