"""Tests for lifecycle desynchronization analysis (paper §VI-B)."""

import pytest

from repro.sos.lifecycle import ExposureWindow, LifecycleAnalyzer, LifecyclePlan, Phase


def retrofit_program() -> LifecycleAnalyzer:
    """The Waymo/Chrysler-style retrofit: the base vehicle is long in
    operation while the self-driving stack is still being developed."""
    analyzer = LifecycleAnalyzer()
    analyzer.add_plan(LifecyclePlan("base-vehicle", (0, 6, 10, 14, 80)))
    analyzer.add_plan(LifecyclePlan("self-driving-stack", (20, 30, 36, 40, 100)))
    analyzer.add_plan(LifecyclePlan("passenger-os", (24, 32, 38, 40, 100)))
    # The retrofitted platform starts operating at t=40, but it runs on
    # the base vehicle, whose support ends at t=80.
    analyzer.depends_on("self-driving-stack", "base-vehicle")
    analyzer.depends_on("passenger-os", "base-vehicle")
    analyzer.depends_on("passenger-os", "self-driving-stack")
    return analyzer


class TestLifecyclePlan:
    def test_phase_at(self):
        plan = LifecyclePlan("x", (0, 10, 20, 30, 40))
        assert plan.phase_at(5) == Phase.DEVELOPMENT
        assert plan.phase_at(15) == Phase.INTEGRATION
        assert plan.phase_at(25) == Phase.VALIDATION
        assert plan.phase_at(35) == Phase.OPERATION
        assert plan.phase_at(45) == Phase.END_OF_SERVICE

    def test_boundaries_must_be_ordered(self):
        with pytest.raises(ValueError):
            LifecyclePlan("x", (0, 10, 5, 30, 40))

    def test_interval(self):
        plan = LifecyclePlan("x", (0, 10, 20, 30, 40))
        assert plan.interval(Phase.OPERATION) == (30, 40)
        assert plan.interval(Phase.END_OF_SERVICE)[1] == float("inf")


class TestExposureWindows:
    def test_retrofit_has_end_of_service_exposure(self):
        analyzer = retrofit_program()
        windows = analyzer.exposure_windows()
        eos = [w for w in windows
               if w.reason.startswith("dependency past end-of-service")]
        assert eos
        # The stack operates 40..100 but the base vehicle dies at 80.
        window = next(w for w in eos if w.dependency == "base-vehicle"
                      and w.operating_system == "self-driving-stack")
        assert window.start == 80
        assert window.end == 100
        assert window.duration == 20

    def test_premature_operation_exposure(self):
        analyzer = LifecycleAnalyzer()
        analyzer.add_plan(LifecyclePlan("platform", (0, 2, 4, 6, 60)))
        analyzer.add_plan(LifecyclePlan("late-module", (10, 20, 30, 40, 90)))
        analyzer.depends_on("platform", "late-module")
        windows = analyzer.exposure_windows()
        early = next(w for w in windows if "development" in w.reason)
        # The platform operates from 6 but the module validates only at 30.
        assert early.start == 6
        assert early.end == 30

    def test_synchronized_program_has_no_exposure(self):
        analyzer = LifecycleAnalyzer()
        for name in ("a", "b"):
            analyzer.add_plan(LifecyclePlan(name, (0, 10, 20, 30, 90)))
        analyzer.depends_on("a", "b")
        assert analyzer.exposure_windows() == []
        assert analyzer.total_exposure() == 0.0

    def test_total_exposure_positive_for_retrofit(self):
        assert retrofit_program().total_exposure() > 0


class TestCoValidation:
    def test_synchronized_full_overlap(self):
        analyzer = LifecycleAnalyzer()
        for name in ("a", "b"):
            analyzer.add_plan(LifecyclePlan(name, (0, 10, 20, 30, 90)))
        analyzer.depends_on("a", "b")
        assert analyzer.co_validation_overlap("a") == 1.0

    def test_retrofit_partial_overlap(self):
        analyzer = retrofit_program()
        overlap = analyzer.co_validation_overlap("self-driving-stack")
        # Operating 40..100, safe only 40..80 -> 2/3.
        assert overlap == pytest.approx(2 / 3, abs=0.01)

    def test_no_dependencies_full_overlap(self):
        analyzer = LifecycleAnalyzer()
        analyzer.add_plan(LifecyclePlan("solo", (0, 1, 2, 3, 10)))
        assert analyzer.co_validation_overlap("solo") == 1.0


class TestValidation:
    def test_duplicate_plan_rejected(self):
        analyzer = LifecycleAnalyzer()
        analyzer.add_plan(LifecyclePlan("x", (0, 1, 2, 3, 4)))
        with pytest.raises(ValueError):
            analyzer.add_plan(LifecyclePlan("x", (0, 1, 2, 3, 4)))

    def test_dependency_requires_plans(self):
        analyzer = LifecycleAnalyzer()
        analyzer.add_plan(LifecyclePlan("x", (0, 1, 2, 3, 4)))
        with pytest.raises(KeyError):
            analyzer.depends_on("x", "ghost")
